#include "sim/closed_loop.hh"

#include <string>

#include "util/logging.hh"

namespace capmaestro::sim {

ClosedLoopSim::ClosedLoopSim(std::unique_ptr<topo::PowerSystem> system,
                             std::vector<ServerSetup> servers,
                             core::ServiceConfig config, std::uint64_t seed,
                             dev::SensorConfig sensor_config)
    : system_(std::move(system))
{
    if (!system_)
        util::fatal("ClosedLoopSim: null power system");

    service_ = std::make_unique<core::CapMaestroService>(*system_, config);

    util::Rng rng(seed);
    plants_.reserve(servers.size());
    for (auto &setup : servers) {
        Plant plant;
        plant.server =
            std::make_unique<dev::ServerModel>(std::move(setup.spec));
        plant.nm = std::make_unique<dev::NodeManager>(*plant.server);
        plant.sensors = std::make_unique<dev::SensorEmulator>(
            *plant.server, *plant.nm, rng.fork(), sensor_config);
        plant.workload = std::move(setup.workload);
        if (!plant.workload)
            util::fatal("ClosedLoopSim: server without workload");
        service_->attachServer(*plant.server, *plant.nm, *plant.sensors);
        plants_.push_back(std::move(plant));
    }

    // Arm a trip integrator on every rated non-leaf node.
    for (std::size_t t = 0; t < system_->trees().size(); ++t) {
        system_->tree(t).forEach([&](const topo::TopoNode &n) {
            if (n.kind != topo::NodeKind::SupplyPort
                && n.rating != topo::kUnlimited) {
                breakers_.push_back(
                    {t, n.id, topo::TripIntegrator(n.rating)});
            }
        });
    }

    // Initialize workloads at t=0.
    for (auto &plant : plants_)
        plant.server->setUtilization(plant.workload->utilizationAt(0));
}

void
ClosedLoopSim::setManualBudgets(std::size_t server_id,
                                std::vector<Watts> budgets)
{
    if (server_id >= plants_.size())
        util::panic("ClosedLoopSim: bad server id %zu", server_id);
    manualBudgets_[server_id] = std::move(budgets);
}

void
ClosedLoopSim::setRootBudgets(std::vector<Watts> budgets)
{
    service_->setRootBudgets(std::move(budgets));
}

void
ClosedLoopSim::at(Seconds t, std::function<void()> event)
{
    if (t < now_)
        util::fatal("ClosedLoopSim: event scheduled in the past");
    events_.emplace(t, std::move(event));
}

void
ClosedLoopSim::failFeedAt(Seconds t, int feed, Watts total_per_phase)
{
    at(t, [this, feed, total_per_phase] {
        events_log_.record(now_, core::EventKind::FeedFailed,
                           "feed" + std::to_string(feed));
        system_->failFeed(feed);
        for (auto &plant : plants_) {
            // Feed failure kills the corresponding supply on every
            // dual-corded server (supply index == feed by convention).
            if (static_cast<std::size_t>(feed)
                    < plant.server->supplyCount()
                && plant.server->supplyState(
                       static_cast<std::size_t>(feed))
                       == dev::SupplyState::Ok) {
                plant.server->setSupplyState(
                    static_cast<std::size_t>(feed),
                    dev::SupplyState::Failed);
            }
        }
        service_->refreshRootBudgets(total_per_phase);
    });
}

void
ClosedLoopSim::failSupplyAt(Seconds t, std::size_t server_id,
                            std::size_t supply)
{
    if (server_id >= plants_.size())
        util::panic("ClosedLoopSim: bad server id %zu", server_id);
    at(t, [this, server_id, supply] {
        events_log_.record(now_, core::EventKind::SupplyFailed,
                           plants_[server_id].server->spec().name + ".ps"
                               + std::to_string(supply));
        plants_[server_id].server->setSupplyState(
            supply, dev::SupplyState::Failed);
    });
}

void
ClosedLoopSim::setPriorityAt(Seconds t, std::size_t server_id,
                             Priority priority)
{
    if (server_id >= plants_.size())
        util::panic("ClosedLoopSim: bad server id %zu", server_id);
    at(t, [this, server_id, priority] {
        plants_[server_id].server->setPriority(priority);
    });
}

void
ClosedLoopSim::utilityBlipAt(Seconds t, int feed, Seconds duration,
                             Seconds ups_holdup, Watts total_per_phase)
{
    at(t, [this, feed, duration, ups_holdup] {
        events_log_.record(now_, core::EventKind::UtilityDisturbance,
                           "feed" + std::to_string(feed),
                           static_cast<double>(duration));
        if (duration <= ups_holdup) {
            events_log_.record(now_, core::EventKind::UpsBridged,
                               "feed" + std::to_string(feed),
                               static_cast<double>(ups_holdup));
        }
    });
    if (duration <= ups_holdup)
        return; // fully bridged: servers never notice

    // The UPS carries the first ups_holdup seconds; then the feed is
    // genuinely down until the disturbance ends.
    failFeedAt(t + ups_holdup, feed, total_per_phase);
    at(t + duration, [this, feed, total_per_phase] {
        events_log_.record(now_, core::EventKind::FeedRestored,
                           "feed" + std::to_string(feed));
        system_->restoreFeed(feed);
        for (auto &plant : plants_) {
            if (static_cast<std::size_t>(feed)
                    < plant.server->supplyCount()
                && plant.server->supplyState(
                       static_cast<std::size_t>(feed))
                       == dev::SupplyState::Failed) {
                plant.server->setSupplyState(
                    static_cast<std::size_t>(feed), dev::SupplyState::Ok);
            }
        }
        service_->refreshRootBudgets(total_per_phase);
    });
}

void
ClosedLoopSim::attachTraffic(std::unique_ptr<TrafficDriver> driver)
{
    traffic_ = std::move(driver);
}

dev::ServerModel &
ClosedLoopSim::server(std::size_t id)
{
    if (id >= plants_.size())
        util::panic("ClosedLoopSim: bad server id %zu", id);
    return *plants_[id].server;
}

std::string
ClosedLoopSim::serverSeries(std::size_t id, const char *what)
{
    return "S" + std::to_string(id) + "." + what;
}

std::string
ClosedLoopSim::supplySeries(std::size_t id, std::size_t supply,
                            const char *what)
{
    return "S" + std::to_string(id) + ".ps" + std::to_string(supply) + "."
           + what;
}

Watts
ClosedLoopSim::nodeLoad(std::size_t tree, topo::NodeId node) const
{
    Watts load = 0.0;
    if (system_->feedFailed(system_->tree(tree).feed()))
        return 0.0;
    for (const auto &ref : system_->tree(tree).suppliesUnder(node)) {
        const auto &plant = plants_[static_cast<std::size_t>(ref.server)];
        if (static_cast<std::size_t>(ref.supply)
            < plant.server->supplyCount()) {
            load += plant.server->supplyAc(
                static_cast<std::size_t>(ref.supply));
        }
    }
    return load;
}

void
ClosedLoopSim::recordState()
{
    for (std::size_t i = 0; i < plants_.size(); ++i) {
        const auto &plant = plants_[i];
        recorder_.record(serverSeries(i, "power"), now_,
                         plant.server->actualAc());
        recorder_.record(serverSeries(i, "throughput"), now_,
                         plant.server->normalizedThroughput());
        recorder_.record(serverSeries(i, "dcCap"), now_,
                         plant.nm->appliedDcCap());
        recorder_.record(serverSeries(i, "throttle"), now_,
                         plant.server->throttleLevel());
        for (std::size_t s = 0; s < plant.server->supplyCount(); ++s) {
            recorder_.record(supplySeries(i, s, "power"), now_,
                             plant.server->supplyAc(s));
        }
    }
    for (auto &bw : breakers_) {
        const auto &tree = system_->tree(bw.tree);
        recorder_.record(tree.name() + "." + tree.node(bw.node).name
                             + ".power",
                         now_, nodeLoad(bw.tree, bw.node));
    }
}

void
ClosedLoopSim::enableTelemetry(telemetry::Registry *registry,
                               telemetry::PeriodTracer *tracer)
{
    tracer_ = tracer;
    service_->enableTelemetry(registry, tracer);
}

void
ClosedLoopSim::controlPeriodTick()
{
    if (tracer_)
        tracer_->noteSimTime(static_cast<double>(now_));
    // Job-derived priorities must land before the allocator reads them.
    if (traffic_)
        traffic_->controlPeriodBoundary(*this, now_);
    if (manualMode_) {
        for (std::size_t i = 0; i < plants_.size(); ++i) {
            auto &controller = service_->controller(i);
            controller.closePeriod();
            auto it = manualBudgets_.find(i);
            if (it != manualBudgets_.end())
                controller.applyBudgets(it->second);
        }
    } else {
        service_->runControlPeriod();
        const auto &alloc = service_->lastStats().allocation;
        if (!alloc.feasible) {
            events_log_.record(now_, core::EventKind::BudgetInfeasible,
                               "fleet");
        }
        if (alloc.strandedReclaimed > 1.0) {
            events_log_.record(now_, core::EventKind::SpoReclaimed,
                               "fleet", alloc.strandedReclaimed);
        }
        // Message-plane degraded-mode decisions (§4.5) become events so
        // operators can audit every fallback the protocol took.
        for (const auto &d : service_->lastStats().messages.degraded) {
            core::EventKind kind = core::EventKind::WorkerFailover;
            std::string subject;
            switch (d.kind) {
              case core::DegradedKind::StaleMetricsReused:
                kind = core::EventKind::StaleMetricsReused;
                break;
              case core::DegradedKind::MetricsLost:
                kind = core::EventKind::MetricsLost;
                break;
              case core::DegradedKind::DefaultBudgetApplied:
                kind = core::EventKind::DefaultBudgetApplied;
                break;
              case core::DegradedKind::WorkerFailover:
                kind = core::EventKind::WorkerFailover;
                break;
              case core::DegradedKind::SpoFallback:
                kind = core::EventKind::SpoFallback;
                break;
            }
            if (d.kind == core::DegradedKind::WorkerFailover) {
                subject = "worker" + std::to_string(d.rack);
            } else if (d.kind == core::DegradedKind::SpoFallback) {
                // Tree-wide decision: no single edge node to name.
                subject = system_->tree(d.tree).name();
            } else {
                subject = system_->tree(d.tree).name() + "."
                          + system_->tree(d.tree).node(d.node).name;
            }
            events_log_.record(now_, kind, std::move(subject), d.value);
        }
        for (std::size_t i = 0; i < plants_.size(); ++i) {
            for (std::size_t s = 0;
                 s < alloc.servers[i].supplyBudget.size(); ++s) {
                recorder_.record(supplySeries(i, s, "budget"), now_,
                                 alloc.servers[i].supplyBudget[s]);
            }
        }
    }
    if (manualMode_) {
        for (const auto &[id, budgets] : manualBudgets_) {
            for (std::size_t s = 0; s < budgets.size(); ++s) {
                recorder_.record(supplySeries(id, s, "budget"), now_,
                                 budgets[s]);
            }
        }
    }
}

void
ClosedLoopSim::tick()
{
    // Fire due events.
    while (!events_.empty() && events_.begin()->first <= now_) {
        auto it = events_.begin();
        auto fn = std::move(it->second);
        events_.erase(it);
        fn();
    }

    // Workloads drive demand. With a traffic layer attached, the
    // per-server trace becomes the background level the driver may
    // overwrite with job-derived demand.
    if (traffic_) {
        trafficUtil_.resize(plants_.size());
        for (std::size_t i = 0; i < plants_.size(); ++i)
            trafficUtil_[i] = plants_[i].workload->utilizationAt(now_);
        traffic_->beginTick(*this, now_, trafficUtil_);
        for (std::size_t i = 0; i < plants_.size(); ++i)
            plants_[i].server->setUtilization(trafficUtil_[i]);
    } else {
        for (auto &plant : plants_)
            plant.server->setUtilization(plant.workload->utilizationAt(now_));
    }

    // 1 Hz sensing.
    service_->senseTick();

    // Control period boundary.
    const Seconds period = service_->config().controlPeriod;
    if (now_ > 0 && now_ % period == 0) {
        controlPeriodTick();
        lastControlPeriod_ = now_;
    } else if (service_->config().emergencyFastPath && !manualMode_
               && now_ - lastControlPeriod_
                      >= service_->config().emergencyMinSpacing) {
        // Emergency fast path: any rated node above its continuous
        // limit triggers an immediate out-of-cycle period.
        bool over_limit = false;
        for (const auto &bw : breakers_) {
            const auto &n = system_->tree(bw.tree).node(bw.node);
            if (nodeLoad(bw.tree, bw.node) > n.limit())
                over_limit = true;
        }
        if (over_limit) {
            events_log_.record(now_, core::EventKind::EmergencyPeriod,
                               "fleet");
            controlPeriodTick();
            lastControlPeriod_ = now_;
        }
    }

    // Actuation dynamics.
    for (auto &plant : plants_)
        plant.nm->step(1.0);

    // Jobs accrue progress at the post-actuation speed.
    if (traffic_)
        traffic_->endTick(*this, now_);

    // Breaker protection with overload-window event tracking.
    for (auto &bw : breakers_) {
        const Watts load = nodeLoad(bw.tree, bw.node);
        const std::string name =
            system_->tree(bw.tree).name() + "."
            + system_->tree(bw.tree).node(bw.node).name;
        const bool over = load > bw.integrator.rating();
        if (over && !bw.overloaded) {
            events_log_.record(now_, core::EventKind::BreakerOverloadBegan,
                               name, load);
        } else if (!over && bw.overloaded) {
            events_log_.record(now_,
                               core::EventKind::BreakerOverloadCleared,
                               name, load);
        }
        bw.overloaded = over;
        const bool was_tripped = bw.integrator.tripped();
        if (bw.integrator.advance(load, 1.0) && !was_tripped) {
            events_log_.record(now_, core::EventKind::BreakerTripped,
                               name, load);
            if (!anyTrip_) {
                anyTrip_ = true;
                util::warn("breaker %s tripped at t=%lld", name.c_str(),
                           static_cast<long long>(now_));
            }
        }
    }

    recordState();
    ++now_;
}

void
ClosedLoopSim::run(Seconds duration)
{
    for (Seconds i = 0; i < duration; ++i)
        tick();
}

} // namespace capmaestro::sim
