/**
 * @file
 * Pluggable job-placement policies.
 *
 * Placement decides which server hosts an arriving job, subject to CPU
 * capacity (resident job demand per server may not exceed 1). The four
 * policies trade simplicity against power-awareness:
 *
 *   - firstFit:      lowest-index server with room (the naive baseline)
 *   - loadBalanced:  least resident job demand
 *   - phaseAware:    the balancePhases advisor's LPT rule applied
 *                    online — lightest phase first (via
 *                    sim::phaseLoads), then least-loaded server on it —
 *                    so job traffic never skews one phase's tree into
 *                    capping while the others idle
 *   - powerHeadroom: most unthrottled AC headroom (capMax - actual,
 *                    discounted by the current throttle level), steering
 *                    jobs away from servers the capping plane is already
 *                    squeezing
 */

#ifndef CAPMAESTRO_WORKLOAD_PLACEMENT_HH
#define CAPMAESTRO_WORKLOAD_PLACEMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "util/units.hh"

namespace capmaestro::workload {

enum class PlacementPolicy {
    FirstFit,
    LoadBalanced,
    PhaseAware,
    PowerHeadroom,
};

/** Config-schema name of a policy ("firstFit", "loadBalanced", ...). */
const char *placementPolicyName(PlacementPolicy policy);

/** Parse a config-schema policy name; fatal() on an unknown one. */
PlacementPolicy placementPolicyFromString(const std::string &name);

/** All policies, in a stable order (bench sweeps iterate this). */
const std::vector<PlacementPolicy> &allPlacementPolicies();

/** What placement sees of one server. */
struct ServerLoadView
{
    /** Total CPU demand of the jobs resident on the server, [0, 1]. */
    Fraction jobLoad = 0.0;
    /** Measured AC power draw, watts. */
    Watts actualAc = 0.0;
    /** Maximum AC power, watts. */
    Watts capMax = 0.0;
    /** Node-manager throttle level, [0, 1). */
    Fraction throttle = 0.0;
    /** Electrical phase the server is plugged into. */
    int phase = 0;
};

/**
 * Choose a server for a job demanding @p cpu_demand of one server.
 * Returns std::nullopt when no server has capacity (the job stays
 * queued). Ties break toward the lowest server index, keeping every
 * policy deterministic.
 */
std::optional<std::size_t> chooseServer(Fraction cpu_demand,
                                        const std::vector<ServerLoadView>
                                            &servers,
                                        PlacementPolicy policy,
                                        int phase_count);

} // namespace capmaestro::workload

#endif // CAPMAESTRO_WORKLOAD_PLACEMENT_HH
