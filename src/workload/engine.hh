/**
 * @file
 * The workload engine: job/tenant traffic driving a ClosedLoopSim.
 *
 * WorkloadEngine implements sim::TrafficDriver. Each simulated second it
 * draws arrivals from the seeded diurnal/flash-crowd process, places
 * queued jobs with the configured policy, and rewrites per-server
 * utilization as background level plus resident job demand. At every
 * control-period boundary it recomputes server priorities from the
 * resident jobs (so per-job priority flows into the capping plane as
 * jobs churn) and samples priority-inversion state; after actuation it
 * accrues job progress at each server's capped speed and retires
 * finished jobs into the trace.
 *
 * Determinism: one util::Rng seeded from Params::seed drives every draw
 * in a fixed per-tick order, so the job trace and the SLO report are
 * bit-identical across runs with the same seed and config — and across
 * transport backends, because the engine only reads server state that
 * the lossless bit-equivalence suites already pin down.
 */

#ifndef CAPMAESTRO_WORKLOAD_ENGINE_HH
#define CAPMAESTRO_WORKLOAD_ENGINE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/closed_loop.hh"
#include "telemetry/registry.hh"
#include "util/random.hh"
#include "workload/job.hh"
#include "workload/placement.hh"
#include "workload/slo.hh"
#include "workload/traffic.hh"

namespace capmaestro::workload {

/** How job priorities reach the capping plane. */
enum class PriorityMode {
    /** Leave static spec priorities alone (jobs are invisible to it). */
    Off,
    /** Server priority = max priority among resident jobs. */
    Max,
    /** Server priority = CPU-demand-weighted mean, rounded to nearest. */
    Weighted,
};

/** Config-schema name of a priority mode ("off", "max", "weighted"). */
const char *priorityModeName(PriorityMode mode);

/** Parse a config-schema priority-mode name; fatal() on unknown. */
PriorityMode priorityModeFromString(const std::string &name);

/** Full workload-layer configuration (the `workload` config block). */
struct Params
{
    /** Master seed for arrivals, tenants, durations, and background. */
    std::uint64_t seed = 42;
    /** Fleet-wide base arrival rate, jobs/s. */
    double arrivalRate = 0.5;
    /** Diurnal modulation of the arrival rate. */
    Seconds diurnalPeriod = 86400;
    double diurnalAmplitude = 0.3;
    /** Flash-crowd bursts (startChance 0 disables). */
    FlashCrowdParams flash;
    /** Tenant mix; a single default tenant when empty. */
    std::vector<TenantSpec> tenants;
    PlacementPolicy policy = PlacementPolicy::LoadBalanced;
    PriorityMode priorityMode = PriorityMode::Max;
    /** Drop a job still unplaced this many seconds after arrival. */
    Seconds queueTimeout = 120;
    /**
     * Fleet-average background utilization under the jobs. Negative
     * (the default) samples the Barroso profile
     * (sim::GoogleUtilizationProfile) once per run.
     */
    double backgroundUtilization = -1.0;
    /** Per-server normal jitter around the background average. */
    double backgroundJitter = 0.05;
    /**
     * Electrical phase count for the phaseAware policy; 0 (default)
     * uses the power system's tree count.
     */
    int phaseCount = 0;
};

/** Job traffic layer; attach to a ClosedLoopSim via attachTraffic(). */
class WorkloadEngine : public sim::TrafficDriver
{
  public:
    explicit WorkloadEngine(Params params);

    /** Mirror SLO accounting into @p registry (call before run()). */
    void bindTelemetry(telemetry::Registry *registry);

    // sim::TrafficDriver
    void beginTick(sim::ClosedLoopSim &sim, Seconds t,
                   std::vector<Fraction> &utilization) override;
    void controlPeriodBoundary(sim::ClosedLoopSim &sim, Seconds t) override;
    void endTick(sim::ClosedLoopSim &sim, Seconds t) override;

    /** Finished jobs in retirement order (the deterministic trace). */
    const std::vector<JobRecord> &trace() const { return trace_; }

    /** Aggregate SLO statistics after @p elapsed simulated seconds. */
    SloReport report(Seconds elapsed) const { return slo_.report(elapsed); }

    const Params &params() const { return params_; }

    /** Jobs waiting for placement right now. */
    std::size_t queuedJobs() const { return queue_.size(); }

    /** Jobs resident on servers right now. */
    std::size_t runningJobs() const { return running_.size(); }

    /** Background utilization average actually in force. */
    Fraction backgroundAverage() const { return backgroundAverage_; }

  private:
    /** Late init on first tick (needs the sim's server count). */
    void ensureInit(sim::ClosedLoopSim &sim);
    /** Weighted tenant draw. */
    int pickTenant();
    /** Place queued jobs (FIFO), dropping ones past the timeout. */
    void placeQueued(sim::ClosedLoopSim &sim, Seconds t);
    /** Resident-job view of every server for the placement policy. */
    std::vector<ServerLoadView> serverViews(sim::ClosedLoopSim &sim) const;
    /** Push job-derived priorities into the server models. */
    void refreshPriorities(sim::ClosedLoopSim &sim);
    /** True when some lower class out-runs a higher one right now. */
    bool detectInversion(sim::ClosedLoopSim &sim) const;
    void retire(Job &&job, Seconds completion, bool dropped);

    Params params_;
    util::Rng rng_;
    ArrivalProcess arrivals_;
    SloAccounting slo_;
    bool initialized_ = false;
    std::uint64_t nextJobId_ = 0;
    std::deque<Job> queue_;
    std::vector<Job> running_;
    /** Resident job CPU demand per server. */
    std::vector<Fraction> jobLoad_;
    /** Static background utilization per server. */
    std::vector<Fraction> background_;
    /** Spec priorities captured at init (restored when no jobs). */
    std::vector<Priority> basePriority_;
    /** Electrical phase per server (tree of its first live port). */
    std::vector<int> phase_;
    int phaseCount_ = 1;
    Fraction backgroundAverage_ = 0.0;
    std::vector<JobRecord> trace_;
    telemetry::Registry *registry_ = nullptr;
    telemetry::Gauge queueGauge_;
    telemetry::Gauge runningGauge_;
    telemetry::Gauge rateGauge_;
};

} // namespace capmaestro::workload

#endif // CAPMAESTRO_WORKLOAD_ENGINE_HH
