/**
 * @file
 * Deterministic arrival process for the workload layer: a diurnal rate
 * curve plus seeded flash-crowd bursts, layered over the Barroso
 * utilization profile (sim/utilization.hh) that supplies the fleet's
 * background load level.
 *
 * Everything is driven by an explicit util::Rng, so the same seed and
 * tick sequence reproduce the same arrival schedule bit-for-bit — the
 * property the closed-loop determinism suites assert.
 */

#ifndef CAPMAESTRO_WORKLOAD_TRAFFIC_HH
#define CAPMAESTRO_WORKLOAD_TRAFFIC_HH

#include <cstddef>

#include "util/random.hh"
#include "util/units.hh"

namespace capmaestro::workload {

/**
 * Multiplicative diurnal rate curve: factor(t) = 1 + A sin(2*pi*t/T),
 * clamped at 0. A = 0 flattens the curve; T defaults to a day.
 */
class DiurnalCurve
{
  public:
    DiurnalCurve(Seconds period, double amplitude);

    /** Rate multiplier at simulated second @p t (>= 0). */
    double factor(Seconds t) const;

    Seconds period() const { return period_; }
    double amplitude() const { return amplitude_; }

  private:
    Seconds period_;
    double amplitude_;
};

/** Flash-crowd burst model tunables. */
struct FlashCrowdParams
{
    /** Per-second chance a crowd starts while none is active (0 = off). */
    double startChance = 0.0;
    /** Burst length, seconds. */
    Seconds duration = 30;
    /** Rate multiplier while a crowd is active. */
    double multiplier = 4.0;
};

/**
 * Poisson arrival process with the diurnal curve and flash crowds
 * modulating the base rate. Call arrivalsAt() exactly once per
 * simulated second, in time order: it advances the RNG and the flash
 * state deterministically.
 */
class ArrivalProcess
{
  public:
    ArrivalProcess(double base_rate, DiurnalCurve diurnal,
                   FlashCrowdParams flash, util::Rng rng);

    /** Number of arrivals in second @p t; advances RNG and flash state. */
    std::size_t arrivalsAt(Seconds t);

    /** Instantaneous rate (jobs/s) the last arrivalsAt() call used. */
    double currentRate() const { return currentRate_; }

    /** True while a flash crowd is active. */
    bool inFlashCrowd() const { return crowdUntil_ >= 0; }

  private:
    double baseRate_;
    DiurnalCurve diurnal_;
    FlashCrowdParams flash_;
    util::Rng rng_;
    /** Last second (exclusive) of the active crowd; -1 when none. */
    Seconds crowdUntil_ = -1;
    double currentRate_ = 0.0;

    std::size_t poisson(double lambda);
};

} // namespace capmaestro::workload

#endif // CAPMAESTRO_WORKLOAD_TRAFFIC_HH
