/**
 * @file
 * The job/tenant model of the workload layer.
 *
 * The paper evaluates priority-aware capping over a static fleet; its
 * priority machinery only becomes interesting when priorities belong to
 * workloads that arrive, run, and finish (CloudPowerCap co-manages power
 * budgets with the job scheduler; nvPAX studies hierarchical multi-tenant
 * budget contention). A Job is one unit of tenant traffic: it lands on a
 * server, contributes CPU demand while resident, progresses at the
 * server's capped speed, and reports a slowdown against its SLO when it
 * completes.
 */

#ifndef CAPMAESTRO_WORKLOAD_JOB_HH
#define CAPMAESTRO_WORKLOAD_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace capmaestro::workload {

/** One priority class of traffic (the "tenant" of the job model). */
struct TenantSpec
{
    std::string name = "default";
    /** Priority inherited by every job of this tenant. */
    Priority priority = 0;
    /** Relative arrival-mix weight across tenants. */
    double weight = 1.0;
    /** CPU demand one resident job adds to its server, in [0, 1]. */
    Fraction cpuDemand = 0.25;
    /** Service requirement at full speed, seconds (0 = instant job). */
    Seconds meanDuration = 60;
    /**
     * Half-width of the uniform duration spread around meanDuration,
     * as a fraction of it (0 = every job takes exactly meanDuration).
     */
    double durationSpread = 0.5;
    /** SLO target: the job meets its SLO when slowdown <= this. */
    double sloSlowdown = 2.0;
};

/** A job in flight (queued or running). */
struct Job
{
    std::uint64_t id = 0;
    /** Index into the tenant table. */
    int tenant = 0;
    Priority priority = 0;
    Fraction cpuDemand = 0.0;
    /** Service requirement at full speed (ideal runtime), seconds. */
    Seconds ideal = 0;
    double sloSlowdown = 2.0;
    Seconds arrival = 0;
    /** Placement time; -1 while queued. */
    Seconds start = -1;
    /** Hosting server; -1 while queued. */
    std::int32_t server = -1;
    /** Accumulated service seconds (progresses at the capped speed). */
    double progress = 0.0;
};

/**
 * Immutable record of a finished (completed or dropped) job — the job
 * trace. Every field is deterministic given the seed and the scenario,
 * and the determinism tests compare traces bit-for-bit across runs and
 * across transport backends.
 */
struct JobRecord
{
    std::uint64_t id = 0;
    int tenant = 0;
    Priority priority = 0;
    /** Hosting server, -1 when the job was dropped unplaced. */
    std::int32_t server = -1;
    Seconds arrival = 0;
    /** Placement time, -1 when dropped. */
    Seconds start = -1;
    /** Completion (or drop) time. */
    Seconds completion = 0;
    /** Ideal runtime at full speed. */
    Seconds ideal = 0;
    /** Response / ideal (see SloAccounting::slowdownOf); 0 if dropped. */
    double slowdown = 0.0;
    bool dropped = false;

    bool operator==(const JobRecord &) const = default;
};

} // namespace capmaestro::workload

#endif // CAPMAESTRO_WORKLOAD_JOB_HH
