#include "workload/placement.hh"

#include <algorithm>
#include <limits>

#include "sim/placement.hh"
#include "util/logging.hh"

namespace capmaestro::workload {

namespace {

constexpr double kCapacityTol = 1e-9;

bool
fits(Fraction cpu_demand, const ServerLoadView &s)
{
    return s.jobLoad + cpu_demand <= 1.0 + kCapacityTol;
}

std::optional<std::size_t>
firstFit(Fraction cpu_demand, const std::vector<ServerLoadView> &servers)
{
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (fits(cpu_demand, servers[i]))
            return i;
    }
    return std::nullopt;
}

std::optional<std::size_t>
loadBalanced(Fraction cpu_demand,
             const std::vector<ServerLoadView> &servers)
{
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (!fits(cpu_demand, servers[i]))
            continue;
        if (!best || servers[i].jobLoad < servers[*best].jobLoad)
            best = i;
    }
    return best;
}

std::optional<std::size_t>
phaseAware(Fraction cpu_demand,
           const std::vector<ServerLoadView> &servers, int phase_count)
{
    // The balancePhases advisor's LPT greedy assigns each arriving
    // demand to the currently lightest phase; apply the same rule
    // online using the advisor's phase-load accounting over resident
    // job demand.
    std::vector<Watts> demands(servers.size());
    std::vector<int> assignment(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i) {
        demands[i] = servers[i].jobLoad;
        assignment[i] = servers[i].phase;
    }
    const auto loads = sim::phaseLoads(demands, assignment, phase_count);

    // Phases ordered lightest first; within the chosen phase, the
    // least-loaded fitting server. Falls through to heavier phases
    // when the lightest has no capacity.
    std::vector<int> order(loads.size());
    for (std::size_t p = 0; p < order.size(); ++p)
        order[p] = static_cast<int>(p);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return loads[static_cast<std::size_t>(a)]
               < loads[static_cast<std::size_t>(b)];
    });
    for (const int phase : order) {
        std::optional<std::size_t> best;
        for (std::size_t i = 0; i < servers.size(); ++i) {
            if (servers[i].phase != phase || !fits(cpu_demand, servers[i]))
                continue;
            if (!best || servers[i].jobLoad < servers[*best].jobLoad)
                best = i;
        }
        if (best)
            return best;
    }
    return std::nullopt;
}

std::optional<std::size_t>
powerHeadroom(Fraction cpu_demand,
              const std::vector<ServerLoadView> &servers)
{
    std::optional<std::size_t> best;
    double best_headroom = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < servers.size(); ++i) {
        if (!fits(cpu_demand, servers[i]))
            continue;
        // Unthrottled watts to the server's ceiling; a throttled
        // server's headroom is discounted because the capping plane is
        // already clawing power back from it.
        const double headroom = (1.0 - servers[i].throttle)
                                * (servers[i].capMax
                                   - servers[i].actualAc);
        if (!best || headroom > best_headroom + kCapacityTol) {
            best = i;
            best_headroom = headroom;
        }
    }
    return best;
}

} // namespace

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::FirstFit: return "firstFit";
      case PlacementPolicy::LoadBalanced: return "loadBalanced";
      case PlacementPolicy::PhaseAware: return "phaseAware";
      case PlacementPolicy::PowerHeadroom: return "powerHeadroom";
    }
    return "?";
}

PlacementPolicy
placementPolicyFromString(const std::string &name)
{
    for (const auto policy : allPlacementPolicies()) {
        if (name == placementPolicyName(policy))
            return policy;
    }
    util::fatal("workload: unknown placement policy \"%s\" (use "
                "firstFit/loadBalanced/phaseAware/powerHeadroom)",
                name.c_str());
}

const std::vector<PlacementPolicy> &
allPlacementPolicies()
{
    static const std::vector<PlacementPolicy> kAll{
        PlacementPolicy::FirstFit,
        PlacementPolicy::LoadBalanced,
        PlacementPolicy::PhaseAware,
        PlacementPolicy::PowerHeadroom,
    };
    return kAll;
}

std::optional<std::size_t>
chooseServer(Fraction cpu_demand,
             const std::vector<ServerLoadView> &servers,
             PlacementPolicy policy, int phase_count)
{
    switch (policy) {
      case PlacementPolicy::FirstFit:
        return firstFit(cpu_demand, servers);
      case PlacementPolicy::LoadBalanced:
        return loadBalanced(cpu_demand, servers);
      case PlacementPolicy::PhaseAware:
        return phaseAware(cpu_demand, servers,
                          phase_count > 0 ? phase_count : 1);
      case PlacementPolicy::PowerHeadroom:
        return powerHeadroom(cpu_demand, servers);
    }
    return std::nullopt;
}

} // namespace capmaestro::workload
