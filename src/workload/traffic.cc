#include "workload/traffic.hh"

#include <cmath>

#include "util/logging.hh"

namespace capmaestro::workload {

DiurnalCurve::DiurnalCurve(Seconds period, double amplitude)
    : period_(period), amplitude_(amplitude)
{
    if (period_ <= 0)
        util::fatal("DiurnalCurve: period must be positive");
    if (amplitude_ < 0.0)
        util::fatal("DiurnalCurve: amplitude must be >= 0");
}

double
DiurnalCurve::factor(Seconds t) const
{
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    const double phase = kTwoPi * static_cast<double>(t)
                         / static_cast<double>(period_);
    const double f = 1.0 + amplitude_ * std::sin(phase);
    return f > 0.0 ? f : 0.0;
}

ArrivalProcess::ArrivalProcess(double base_rate, DiurnalCurve diurnal,
                               FlashCrowdParams flash, util::Rng rng)
    : baseRate_(base_rate), diurnal_(diurnal), flash_(flash),
      rng_(std::move(rng))
{
    if (baseRate_ < 0.0)
        util::fatal("ArrivalProcess: base rate must be >= 0");
    if (flash_.startChance < 0.0 || flash_.startChance >= 1.0)
        util::fatal("ArrivalProcess: flash startChance outside [0, 1)");
    if (flash_.multiplier < 0.0)
        util::fatal("ArrivalProcess: flash multiplier must be >= 0");
}

std::size_t
ArrivalProcess::arrivalsAt(Seconds t)
{
    // Flash-crowd state machine first, so the burst applies to this
    // very second. One Bernoulli draw per idle second keeps the RNG
    // consumption schedule deterministic.
    if (crowdUntil_ >= 0 && t >= crowdUntil_)
        crowdUntil_ = -1;
    if (crowdUntil_ < 0 && flash_.startChance > 0.0
        && rng_.chance(flash_.startChance)) {
        crowdUntil_ = t + flash_.duration;
    }

    double rate = baseRate_ * diurnal_.factor(t);
    if (crowdUntil_ >= 0)
        rate *= flash_.multiplier;
    currentRate_ = rate;
    return poisson(rate);
}

std::size_t
ArrivalProcess::poisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    // Knuth's multiplication method: exact for the modest rates a
    // control-period-scale simulation uses. The cap bounds the loop
    // (and the arrivals burst) even under an extreme configuration.
    constexpr double kMaxLambda = 64.0;
    if (lambda > kMaxLambda)
        lambda = kMaxLambda;
    const double limit = std::exp(-lambda);
    std::size_t k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= rng_.uniform();
    } while (p > limit);
    return k - 1;
}

} // namespace capmaestro::workload
