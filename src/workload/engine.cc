#include "workload/engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "sim/utilization.hh"
#include "util/logging.hh"

namespace capmaestro::workload {

namespace {

/** Throughput slack before a cross-class gap counts as an inversion. */
constexpr double kInversionEps = 1e-6;

void
validateTenant(const TenantSpec &tenant)
{
    if (tenant.cpuDemand <= 0.0 || tenant.cpuDemand > 1.0)
        util::fatal("workload: tenant \"%s\" cpuDemand outside (0, 1]",
                    tenant.name.c_str());
    if (tenant.weight <= 0.0)
        util::fatal("workload: tenant \"%s\" weight must be positive",
                    tenant.name.c_str());
    if (tenant.meanDuration < 0)
        util::fatal("workload: tenant \"%s\" meanDuration must be >= 0",
                    tenant.name.c_str());
    if (tenant.durationSpread < 0.0 || tenant.durationSpread > 1.0)
        util::fatal("workload: tenant \"%s\" durationSpread outside [0, 1]",
                    tenant.name.c_str());
    if (tenant.sloSlowdown < 1.0)
        util::fatal("workload: tenant \"%s\" sloSlowdown must be >= 1",
                    tenant.name.c_str());
}

} // namespace

const char *
priorityModeName(PriorityMode mode)
{
    switch (mode) {
      case PriorityMode::Off: return "off";
      case PriorityMode::Max: return "max";
      case PriorityMode::Weighted: return "weighted";
    }
    return "?";
}

PriorityMode
priorityModeFromString(const std::string &name)
{
    if (name == "off")
        return PriorityMode::Off;
    if (name == "max")
        return PriorityMode::Max;
    if (name == "weighted")
        return PriorityMode::Weighted;
    util::fatal("workload: unknown priority mode \"%s\" "
                "(use off/max/weighted)",
                name.c_str());
}

WorkloadEngine::WorkloadEngine(Params params)
    : params_(std::move(params)), rng_(params_.seed),
      arrivals_(params_.arrivalRate,
                DiurnalCurve(params_.diurnalPeriod,
                             params_.diurnalAmplitude),
                params_.flash, rng_.fork())
{
    if (params_.tenants.empty())
        params_.tenants.push_back(TenantSpec{});
    for (const auto &tenant : params_.tenants)
        validateTenant(tenant);
    if (params_.queueTimeout < 0)
        util::fatal("workload: queueTimeout must be >= 0");
    if (params_.backgroundUtilization > 1.0)
        util::fatal("workload: backgroundUtilization must be <= 1");
    if (params_.backgroundJitter < 0.0)
        util::fatal("workload: backgroundJitter must be >= 0");
}

void
WorkloadEngine::bindTelemetry(telemetry::Registry *registry)
{
    registry_ = registry;
    slo_.bindTelemetry(registry);
    if (!registry_)
        return;
    queueGauge_ = registry_->gauge("workload_queued_jobs", {},
                                   "Jobs waiting for placement");
    runningGauge_ = registry_->gauge("workload_running_jobs", {},
                                     "Jobs resident on servers");
    rateGauge_ = registry_->gauge("workload_arrival_rate", {},
                                  "Instantaneous arrival rate, jobs/s");
}

void
WorkloadEngine::ensureInit(sim::ClosedLoopSim &sim)
{
    if (initialized_)
        return;
    initialized_ = true;

    const std::size_t n = sim.serverCount();
    jobLoad_.assign(n, 0.0);
    background_.resize(n);
    basePriority_.resize(n);
    phase_.resize(n);

    // One fork for the background level keeps the main stream's draw
    // schedule independent of the server count.
    util::Rng bg = rng_.fork();
    backgroundAverage_ =
        params_.backgroundUtilization >= 0.0
            ? params_.backgroundUtilization
            : sim::GoogleUtilizationProfile::sample(bg);

    const auto trees = sim.system().trees().size();
    phaseCount_ = params_.phaseCount > 0
                      ? params_.phaseCount
                      : static_cast<int>(std::max<std::size_t>(trees, 1));
    for (std::size_t i = 0; i < n; ++i) {
        background_[i] = sim::GoogleUtilizationProfile::perServer(
            bg, backgroundAverage_, params_.backgroundJitter);
        basePriority_[i] = sim.server(i).spec().priority;
        const auto ports =
            sim.system().livePortsOf(static_cast<std::int32_t>(i));
        const std::size_t tree =
            ports.empty() ? 0 : ports.begin()->second.tree;
        phase_[i] = static_cast<int>(tree % static_cast<std::size_t>(
                                         phaseCount_));
    }
}

int
WorkloadEngine::pickTenant()
{
    double total = 0.0;
    for (const auto &tenant : params_.tenants)
        total += tenant.weight;
    const double x = rng_.uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < params_.tenants.size(); ++i) {
        acc += params_.tenants[i].weight;
        if (x < acc)
            return static_cast<int>(i);
    }
    return static_cast<int>(params_.tenants.size()) - 1;
}

std::vector<ServerLoadView>
WorkloadEngine::serverViews(sim::ClosedLoopSim &sim) const
{
    std::vector<ServerLoadView> views(jobLoad_.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
        auto &server = sim.server(i);
        views[i].jobLoad = jobLoad_[i];
        views[i].actualAc = server.actualAc();
        views[i].capMax = server.spec().capMax;
        views[i].throttle = server.throttleLevel();
        views[i].phase = phase_[i];
    }
    return views;
}

void
WorkloadEngine::retire(Job &&job, Seconds completion, bool dropped)
{
    JobRecord record;
    record.id = job.id;
    record.tenant = job.tenant;
    record.priority = job.priority;
    record.server = job.server;
    record.arrival = job.arrival;
    record.start = job.start;
    record.completion = completion;
    record.ideal = job.ideal;
    record.dropped = dropped;
    if (dropped) {
        slo_.noteDrop(record);
    } else {
        record.slowdown =
            SloAccounting::slowdownOf(job.arrival, completion, job.ideal);
        slo_.noteCompletion(record, job.sloSlowdown);
    }
    trace_.push_back(record);
}

void
WorkloadEngine::placeQueued(sim::ClosedLoopSim &sim, Seconds t)
{
    // Expire first so a timed-out job never grabs a slot.
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (t - it->arrival > params_.queueTimeout) {
            retire(std::move(*it), t, /*dropped=*/true);
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }

    auto views = serverViews(sim);
    for (auto it = queue_.begin(); it != queue_.end();) {
        const auto chosen = chooseServer(it->cpuDemand, views,
                                         params_.policy, phaseCount_);
        if (!chosen) {
            // No room for this job; smaller ones behind it may still fit.
            ++it;
            continue;
        }
        it->start = t;
        it->server = static_cast<std::int32_t>(*chosen);
        jobLoad_[*chosen] += it->cpuDemand;
        views[*chosen].jobLoad = jobLoad_[*chosen];
        running_.push_back(std::move(*it));
        it = queue_.erase(it);
    }
}

void
WorkloadEngine::beginTick(sim::ClosedLoopSim &sim, Seconds t,
                          std::vector<Fraction> &utilization)
{
    ensureInit(sim);

    const std::size_t arrivals = arrivals_.arrivalsAt(t);
    for (std::size_t a = 0; a < arrivals; ++a) {
        const int tenant = pickTenant();
        const auto &spec =
            params_.tenants[static_cast<std::size_t>(tenant)];
        // Draw unconditionally so the RNG schedule does not depend on
        // the spread setting.
        const double stretch = rng_.uniform(1.0 - spec.durationSpread,
                                            1.0 + spec.durationSpread);
        Job job;
        job.id = nextJobId_++;
        job.tenant = tenant;
        job.priority = spec.priority;
        job.cpuDemand = spec.cpuDemand;
        job.ideal = std::max<Seconds>(
            0, std::llround(static_cast<double>(spec.meanDuration)
                            * stretch));
        job.sloSlowdown = spec.sloSlowdown;
        job.arrival = t;
        slo_.noteArrival(job.priority);
        queue_.push_back(std::move(job));
    }

    placeQueued(sim, t);

    for (std::size_t i = 0; i < utilization.size(); ++i) {
        utilization[i] =
            std::clamp(background_[i] + jobLoad_[i], 0.0, 1.0);
    }

    queueGauge_.set(static_cast<double>(queue_.size()));
    runningGauge_.set(static_cast<double>(running_.size()));
    rateGauge_.set(arrivals_.currentRate());
}

void
WorkloadEngine::refreshPriorities(sim::ClosedLoopSim &sim)
{
    const std::size_t n = jobLoad_.size();
    std::vector<Priority> top(n, std::numeric_limits<Priority>::min());
    std::vector<double> weighted(n, 0.0);
    std::vector<double> demand(n, 0.0);
    std::vector<bool> occupied(n, false);
    for (const auto &job : running_) {
        const auto s = static_cast<std::size_t>(job.server);
        occupied[s] = true;
        top[s] = std::max(top[s], job.priority);
        weighted[s] += static_cast<double>(job.priority) * job.cpuDemand;
        demand[s] += job.cpuDemand;
    }
    for (std::size_t i = 0; i < n; ++i) {
        Priority p = basePriority_[i];
        if (occupied[i]) {
            p = params_.priorityMode == PriorityMode::Max
                    ? top[i]
                    : static_cast<Priority>(
                          std::llround(weighted[i] / demand[i]));
        }
        sim.server(i).setPriority(p);
    }
}

bool
WorkloadEngine::detectInversion(sim::ClosedLoopSim &sim) const
{
    // Per-class throughput envelope over the servers hosting that class.
    std::map<Priority, std::pair<double, double>> envelope; // {min, max}
    for (const auto &job : running_) {
        const double tp =
            sim.server(static_cast<std::size_t>(job.server))
                .normalizedThroughput();
        auto [it, inserted] =
            envelope.try_emplace(job.priority, std::make_pair(tp, tp));
        if (!inserted) {
            it->second.first = std::min(it->second.first, tp);
            it->second.second = std::max(it->second.second, tp);
        }
    }
    // Inverted when some higher class's slowest server trails a lower
    // class's fastest by more than the slack.
    for (auto hi = envelope.begin(); hi != envelope.end(); ++hi) {
        for (auto lo = envelope.begin(); lo != hi; ++lo) {
            if (hi->second.first < lo->second.second - kInversionEps)
                return true;
        }
    }
    return false;
}

void
WorkloadEngine::controlPeriodBoundary(sim::ClosedLoopSim &sim, Seconds t)
{
    (void)t;
    ensureInit(sim);
    // Sample inversion from the throughputs the *previous* allocation
    // produced, then push fresh priorities for the one about to run.
    slo_.notePeriod(detectInversion(sim));
    if (params_.priorityMode != PriorityMode::Off)
        refreshPriorities(sim);
}

void
WorkloadEngine::endTick(sim::ClosedLoopSim &sim, Seconds t)
{
    ensureInit(sim);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < running_.size(); ++i) {
        auto &job = running_[i];
        job.progress +=
            sim.server(static_cast<std::size_t>(job.server))
                .normalizedThroughput();
        if (job.progress + 1e-9 >= static_cast<double>(job.ideal)) {
            const auto s = static_cast<std::size_t>(job.server);
            jobLoad_[s] = std::max(0.0, jobLoad_[s] - job.cpuDemand);
            retire(std::move(job), t, /*dropped=*/false);
        } else {
            if (kept != i)
                running_[kept] = std::move(job);
            ++kept;
        }
    }
    running_.resize(kept);
}

} // namespace capmaestro::workload
