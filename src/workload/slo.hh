/**
 * @file
 * Job-level SLO accounting for the workload layer.
 *
 * SloAccounting aggregates finished jobs into per-priority-class
 * statistics: completion/drop counts, SLO attainment, and the slowdown
 * distribution (streaming P-squared p50/p99). It also counts
 * priority-inversion control periods — periods where some lower-priority
 * class out-ran a higher-priority one under capping — which is the
 * signal the closed-loop priority tests assert on.
 *
 * All state is deterministic given the job stream, and Report compares
 * with operator== so determinism suites can require bit-identical
 * metrics across runs and transport backends. When a telemetry registry
 * is bound, every event is mirrored into labeled series
 * (workload_jobs_*_total, workload_job_slowdown, ...) per
 * docs/observability.md conventions.
 */

#ifndef CAPMAESTRO_WORKLOAD_SLO_HH
#define CAPMAESTRO_WORKLOAD_SLO_HH

#include <cstdint>
#include <map>
#include <vector>

#include "stats/quantile.hh"
#include "telemetry/registry.hh"
#include "workload/job.hh"

namespace capmaestro::workload {

/** Aggregated statistics for one priority class. */
struct ClassReport
{
    Priority priority = 0;
    std::uint64_t arrived = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    /** Completed jobs whose slowdown met the tenant SLO. */
    std::uint64_t sloMet = 0;
    double meanSlowdown = 0.0;
    double p50Slowdown = 0.0;
    double p99Slowdown = 0.0;
    /** Completed jobs per simulated second. */
    double throughput = 0.0;

    bool operator==(const ClassReport &) const = default;
};

/** Fleet-wide SLO summary (classes sorted by ascending priority). */
struct SloReport
{
    std::uint64_t arrived = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    /** Control periods where priority ordering was inverted. */
    std::uint64_t inversionPeriods = 0;
    /** Control periods observed. */
    std::uint64_t periods = 0;
    std::vector<ClassReport> classes;

    bool operator==(const SloReport &) const = default;

    /** Stats of class @p priority; nullptr when it saw no jobs. */
    const ClassReport *byPriority(Priority priority) const;
};

/** Accumulates job outcomes into per-class SLO statistics. */
class SloAccounting
{
  public:
    /**
     * Slowdown of a job: response time over ideal runtime, where both
     * are measured in whole simulated seconds and a job landing and
     * finishing within one tick has response 1. Instant jobs (ideal
     * 0) divide by 1 instead, so the metric is defined for them and a
     * fully unthrottled instant job scores exactly 1.0.
     */
    static double slowdownOf(Seconds arrival, Seconds completion,
                             Seconds ideal);

    /**
     * Mirror events into @p registry (nullptr disables, the default).
     * Bind before the first event; series are registered lazily per
     * priority class.
     */
    void bindTelemetry(telemetry::Registry *registry);

    void noteArrival(Priority priority);
    void noteCompletion(const JobRecord &record, double slo_slowdown);
    void noteDrop(const JobRecord &record);

    /** Count one control period, flagged when inverted. */
    void notePeriod(bool inversion);

    /** Snapshot the aggregate statistics after @p elapsed sim seconds. */
    SloReport report(Seconds elapsed) const;

  private:
    struct ClassState
    {
        std::uint64_t arrived = 0;
        std::uint64_t completed = 0;
        std::uint64_t dropped = 0;
        std::uint64_t sloMet = 0;
        double slowdownSum = 0.0;
        stats::P2Quantile p50{0.50};
        stats::P2Quantile p99{0.99};
        telemetry::Counter completedMetric;
        telemetry::Counter droppedMetric;
        telemetry::Counter sloMetMetric;
        telemetry::HistogramMetric slowdownMetric;
    };

    ClassState &classState(Priority priority);

    std::map<Priority, ClassState> classes_;
    std::uint64_t arrived_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t inversionPeriods_ = 0;
    std::uint64_t periods_ = 0;
    telemetry::Registry *registry_ = nullptr;
    telemetry::Counter arrivedMetric_;
    telemetry::Counter inversionMetric_;
    telemetry::Counter periodsMetric_;
};

} // namespace capmaestro::workload

#endif // CAPMAESTRO_WORKLOAD_SLO_HH
