#include "device/workload.hh"

#include <cmath>
#include <fstream>
#include <numbers>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace capmaestro::dev {

StepWorkload::StepWorkload(std::vector<std::pair<Seconds, Fraction>> steps)
    : steps_(std::move(steps))
{
    if (steps_.empty())
        util::fatal("StepWorkload needs at least one step");
    for (std::size_t i = 1; i < steps_.size(); ++i) {
        if (steps_[i].first < steps_[i - 1].first)
            util::fatal("StepWorkload steps must be time-ordered");
    }
}

Fraction
StepWorkload::utilizationAt(Seconds t)
{
    Fraction u = steps_.front().second;
    for (const auto &[start, value] : steps_) {
        if (t >= start)
            u = value;
        else
            break;
    }
    return u;
}

SineWorkload::SineWorkload(Fraction mean, Fraction amplitude, Seconds period)
    : mean_(mean), amplitude_(amplitude), period_(period)
{
    if (period_ <= 0)
        util::fatal("SineWorkload period must be positive");
}

Fraction
SineWorkload::utilizationAt(Seconds t)
{
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(t)
                         / static_cast<double>(period_);
    return util::clamp(mean_ + amplitude_ * std::sin(phase), 0.0, 1.0);
}

RandomWalkWorkload::RandomWalkWorkload(Fraction start, Fraction step,
                                       util::Rng rng)
    : u_(util::clamp(start, 0.0, 1.0)), step_(step), rng_(rng)
{
}

Fraction
RandomWalkWorkload::utilizationAt(Seconds t)
{
    // Advance once per new second; repeated queries at the same time are
    // stable so multiple observers see a consistent workload.
    while (lastT_ < t) {
        u_ = util::clamp(u_ + rng_.uniform(-step_, step_), 0.0, 1.0);
        ++lastT_;
    }
    return u_;
}

TraceWorkload::TraceWorkload(std::vector<Fraction> samples,
                             Seconds sample_period)
    : samples_(std::move(samples)), samplePeriod_(sample_period)
{
    if (samples_.empty())
        util::fatal("TraceWorkload needs at least one sample");
    if (samplePeriod_ < 1)
        util::fatal("TraceWorkload sample period must be >= 1 s");
    for (auto &s : samples_)
        s = util::clamp(s, 0.0, 1.0);
}

Fraction
TraceWorkload::utilizationAt(Seconds t)
{
    const auto n = static_cast<Seconds>(samples_.size());
    const Seconds span = n * samplePeriod_;
    const Seconds wrapped = ((t % span) + span) % span;
    const Seconds index = wrapped / samplePeriod_;
    const double frac =
        static_cast<double>(wrapped % samplePeriod_) / samplePeriod_;
    const Fraction a = samples_[static_cast<std::size_t>(index)];
    const Fraction b =
        samples_[static_cast<std::size_t>((index + 1) % n)];
    return a + (b - a) * frac;
}

std::vector<Fraction>
TraceWorkload::loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("TraceWorkload: cannot open trace %s", path.c_str());
    std::vector<Fraction> samples;
    std::string line;
    while (std::getline(in, line)) {
        const auto start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        samples.push_back(std::stod(line.substr(start)));
    }
    if (samples.empty())
        util::fatal("TraceWorkload: trace %s has no samples",
                    path.c_str());
    return samples;
}

NoisyWorkload::NoisyWorkload(std::unique_ptr<Workload> inner, double stddev,
                             util::Rng rng)
    : inner_(std::move(inner)), stddev_(stddev), rng_(rng)
{
    if (!inner_)
        util::fatal("NoisyWorkload needs an inner workload");
}

Fraction
NoisyWorkload::utilizationAt(Seconds t)
{
    const double u = inner_->utilizationAt(t) + rng_.normal(0.0, stddev_);
    return util::clamp(u, 0.0, 1.0);
}

} // namespace capmaestro::dev
