#include "device/vm.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace capmaestro::dev {

VmPartitioner::VmPartitioner(std::vector<VmSpec> vms)
    : vms_(std::move(vms))
{
    double total = 0.0;
    for (const auto &vm : vms_) {
        if (vm.cpuShare < 0.0 || vm.cpuShare > 1.0)
            util::fatal("vm %s: cpuShare outside [0,1]",
                        vm.name.c_str());
        total += vm.cpuShare;
    }
    if (total > 1.0 + 1e-9)
        util::fatal("VmPartitioner: shares sum to %.3f > 1", total);
}

Fraction
VmPartitioner::totalShare() const
{
    double total = 0.0;
    for (const auto &vm : vms_)
        total += vm.cpuShare;
    return total;
}

std::vector<VmAllocation>
VmPartitioner::allocate(Fraction server_performance) const
{
    std::vector<VmAllocation> out(vms_.size());
    double remaining = util::clamp(server_performance, 0.0, 1.0);

    // Group VM indices by priority, descending.
    std::map<Priority, std::vector<std::size_t>, std::greater<>> levels;
    for (std::size_t i = 0; i < vms_.size(); ++i)
        levels[vms_[i].priority].push_back(i);

    for (const auto &[priority, members] : levels) {
        double level_demand = 0.0;
        for (const auto i : members)
            level_demand += vms_[i].cpuShare;
        if (level_demand <= 0.0) {
            // Zero demand is trivially satisfied.
            for (const auto i : members)
                out[i].normalizedThroughput = 1.0;
            continue;
        }
        // Pro-rata within the level when the remainder is short.
        const double scale =
            std::min(1.0, remaining / level_demand);
        for (const auto i : members) {
            out[i].granted = vms_[i].cpuShare * scale;
            out[i].normalizedThroughput =
                vms_[i].cpuShare > 0.0 ? scale : 1.0;
        }
        remaining = std::max(0.0, remaining - level_demand * scale);
    }
    return out;
}

Priority
VmPartitioner::derivedServerPriority(Fraction protect_share) const
{
    if (vms_.empty())
        return 0;

    std::map<Priority, double, std::greater<>> share_by_priority;
    for (const auto &vm : vms_)
        share_by_priority[vm.priority] += vm.cpuShare;

    const double total = totalShare();
    if (total <= 0.0)
        return 0;

    double cumulative = 0.0;
    for (const auto &[priority, share] : share_by_priority) {
        cumulative += share;
        if (cumulative >= protect_share * total)
            return priority;
    }
    return share_by_priority.rbegin()->first; // lowest present level
}

} // namespace capmaestro::dev
