#include "device/node_manager.hh"

#include <cmath>

namespace capmaestro::dev {

NodeManager::NodeManager(ServerModel &server, NodeManagerConfig config)
    : server_(server), config_(config)
{
}

void
NodeManager::setDcCap(Watts cap_dc)
{
    targetDc_ = cap_dc;
    if (appliedDc_ == kNoCap) {
        // First cap after running uncapped: start from current draw so the
        // approach is continuous rather than jumping from "infinity".
        appliedDc_ = server_.actualDc();
    }
}

void
NodeManager::clearCap()
{
    targetDc_ = kNoCap;
}

void
NodeManager::step(double dt)
{
    if (targetDc_ == kNoCap) {
        appliedDc_ = kNoCap;
        pushToServer();
        return;
    }
    if (appliedDc_ == kNoCap)
        appliedDc_ = server_.actualDc();

    const double alpha = 1.0 - std::exp(-config_.approachRate * dt);
    appliedDc_ += (targetDc_ - appliedDc_) * alpha;
    if (std::fabs(targetDc_ - appliedDc_) <= config_.deadband)
        appliedDc_ = targetDc_;
    pushToServer();
}

void
NodeManager::pushToServer()
{
    if (appliedDc_ == kNoCap) {
        server_.setEnforcedCapAc(ServerModel::kNoCap);
        return;
    }
    const double k = server_.blendedEfficiency();
    server_.setEnforcedCapAc(appliedDc_ / k);
}

} // namespace capmaestro::dev
