/**
 * @file
 * Emulation of a server's built-in power controller (Intel Node Manager
 * style): accepts a DC power cap and drives the server's throttle so the
 * DC draw settles under the cap within a few seconds (paper §5: within 6 s).
 *
 * The node manager is the *actuator* between CapMaestro's capping
 * controller (which computes a DC cap from per-supply AC budgets) and the
 * physical ServerModel.
 */

#ifndef CAPMAESTRO_DEVICE_NODE_MANAGER_HH
#define CAPMAESTRO_DEVICE_NODE_MANAGER_HH

#include "device/server.hh"
#include "util/units.hh"

namespace capmaestro::dev {

/** Tunable actuation dynamics for the node-manager emulation. */
struct NodeManagerConfig
{
    /**
     * First-order approach rate per second toward the target cap.
     * 0.55/s settles a step to <1 % residual within ~6 s.
     */
    double approachRate = 0.55;
    /** Deadband (W, DC): applied cap snaps when this close to target. */
    Watts deadband = 1.0;
};

/** DC power-cap actuator with first-order settling dynamics. */
class NodeManager
{
  public:
    /**
     * @param server the server this node manager controls (not owned;
     *               must outlive the node manager)
     */
    NodeManager(ServerModel &server, NodeManagerConfig config = {});

    /** Request a new DC cap; takes effect gradually via step(). */
    void setDcCap(Watts cap_dc);

    /** Remove the cap (server runs uncapped after settling). */
    void clearCap();

    /** Currently requested (target) DC cap; kNoCap when uncapped. */
    Watts targetDcCap() const { return targetDc_; }

    /** Currently applied (settled-so-far) DC cap; kNoCap when uncapped. */
    Watts appliedDcCap() const { return appliedDc_; }

    /** Sentinel for "no cap". */
    static constexpr Watts kNoCap = ServerModel::kNoCap;

    /**
     * Advance actuation by @p dt seconds: move the applied cap toward the
     * target and push the corresponding AC cap into the server model.
     */
    void step(double dt);

    /** Measured DC power (what the node manager itself reports). */
    Watts measuredDc() const { return server_.actualDc(); }

    /** Reported throttle level in [0, 1). */
    Fraction throttleLevel() const { return server_.throttleLevel(); }

  private:
    ServerModel &server_;
    NodeManagerConfig config_;
    Watts targetDc_ = kNoCap;
    Watts appliedDc_ = kNoCap;

    void pushToServer();
};

} // namespace capmaestro::dev

#endif // CAPMAESTRO_DEVICE_NODE_MANAGER_HH
