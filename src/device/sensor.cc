#include "device/sensor.hh"

#include <cmath>

#include "util/numeric.hh"

namespace capmaestro::dev {

SensorEmulator::SensorEmulator(const ServerModel &server,
                               const NodeManager &nm, util::Rng rng,
                               SensorConfig config)
    : server_(server), nm_(nm), rng_(rng), config_(config)
{
}

Watts
SensorEmulator::quantize(Watts v) const
{
    if (config_.powerQuantum <= 0.0)
        return v;
    return std::round(v / config_.powerQuantum) * config_.powerQuantum;
}

SensorReading
SensorEmulator::read()
{
    SensorReading r;
    r.supplyAc.reserve(server_.supplyCount());
    for (std::size_t s = 0; s < server_.supplyCount(); ++s) {
        Watts v = server_.supplyAc(s);
        if (config_.powerNoiseStddev > 0.0)
            v += rng_.normal(0.0, config_.powerNoiseStddev);
        v = quantize(std::max(0.0, v));
        r.supplyAc.push_back(v);
        r.totalAc += v;
    }
    double t = nm_.throttleLevel();
    if (config_.throttleNoiseStddev > 0.0)
        t += rng_.normal(0.0, config_.throttleNoiseStddev);
    r.throttleLevel = util::clamp(t, 0.0, 1.0);
    return r;
}

SensorReading
SensorEmulator::readTrue() const
{
    SensorReading r;
    r.supplyAc.reserve(server_.supplyCount());
    for (std::size_t s = 0; s < server_.supplyCount(); ++s) {
        const Watts v = server_.supplyAc(s);
        r.supplyAc.push_back(v);
        r.totalAc += v;
    }
    r.throttleLevel = nm_.throttleLevel();
    return r;
}

} // namespace capmaestro::dev
