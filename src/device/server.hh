/**
 * @file
 * Physical server model: utilization -> power, capping -> performance,
 * and load distribution across redundant power supplies.
 *
 * Power domains. Per-supply budgets and measurements are *AC* (what the
 * feed-side breakers see); the node-manager cap is *DC* (what the server's
 * internal power controller enforces). DC = efficiency x AC.
 *
 * Power curve. Uncapped ("demand") power follows the calibrated model of
 * Fan et al. (ISCA'07): P(u) = P_idle + (P_max - P_idle)(2u - u^1.4).
 *
 * Throughput under a cap. The paper observes power is linear-or-superlinear
 * in performance (§6.4); we use P = P_idle + (P_demand - P_idle) phi^gamma
 * with gamma ~ 2.7, which reproduces the paper's measured throughput ratios
 * (e.g., 314 W budget / 420 W demand -> 0.82 normalized throughput).
 */

#ifndef CAPMAESTRO_DEVICE_SERVER_HH
#define CAPMAESTRO_DEVICE_SERVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hh"

namespace capmaestro::dev {

/** Fan et al. (ISCA'07) calibrated activity factor: 2u - u^1.4. */
double fanActivity(Fraction utilization);

/** Server power at @p utilization under the Fan et al. curve. */
Watts fanPower(Watts idle, Watts max, Fraction utilization);

/** Health state of one server power supply. */
enum class SupplyState {
    Ok,      ///< sharing load normally
    Failed,  ///< draws nothing; its share shifts to the survivors
    Standby, ///< hot-spare mode: intentionally idle at light load
};

/** Static configuration of one power supply. */
struct SupplySpec
{
    /**
     * Fraction of total server AC load this supply carries when all
     * supplies are working. Fractions across supplies must sum to ~1.
     * The paper (§3.1) observes intrinsic mismatches up to 65/35.
     */
    Fraction loadShare = 0.5;
    /** AC -> DC conversion efficiency in (0, 1] (flat default). */
    Fraction efficiency = 0.94;
    /**
     * Optional 80 Plus-style load-dependent efficiency: rated output
     * power plus efficiencies at 20 %, 50 %, and 100 % of rating
     * (linearly interpolated, flat outside). Enabled when
     * ratedPower > 0; the flat `efficiency` is used otherwise.
     * Real PSUs peak near half load and sag at the extremes; the PI
     * loop must absorb the resulting AC/DC conversion error.
     */
    Watts ratedPower = 0.0;
    Fraction efficiencyAt20 = 0.90;
    Fraction efficiencyAt50 = 0.94;
    Fraction efficiencyAt100 = 0.91;

    /** Efficiency at @p load_watts of output on this supply. */
    Fraction efficiencyAtLoad(Watts load_watts) const;
};

/** Static configuration of a server. */
struct ServerSpec
{
    std::string name;
    /** AC power at idle (0 % utilization), watts. */
    Watts idle = 160.0;
    /** Minimum enforceable AC cap (full throttle, max workload). */
    Watts capMin = 270.0;
    /** Maximum AC power (no throttle, max workload, max ambient). */
    Watts capMax = 490.0;
    /** Workload priority; higher is more important. */
    Priority priority = 0;
    /** Exponent of the power-vs-performance curve. */
    double gamma = 2.7;
    /** Per-supply configuration (one entry per supply). */
    std::vector<SupplySpec> supplies{{0.5, 0.94}, {0.5, 0.94}};
    /**
     * When true, a redundant supply drops to standby (draws nothing)
     * while total server AC load is below standbyThreshold (§3.1).
     */
    bool hotSpareEnabled = false;
    Watts standbyThreshold = 0.0;
};

/**
 * Dynamic server model.
 *
 * The model is advanced by the simulator: set the workload utilization and
 * the enforced AC cap, then read power, per-supply power, throughput, and
 * the throttle level. All "enforced cap" handling is instantaneous here;
 * actuation latency lives in NodeManager.
 */
class ServerModel
{
  public:
    explicit ServerModel(ServerSpec spec);

    /** Static configuration. */
    const ServerSpec &spec() const { return spec_; }

    /** Set CPU utilization in [0, 1]. */
    void setUtilization(Fraction u);

    /**
     * Change the server's workload priority at runtime (§7: job
     * schedulers communicate dynamic priorities to the power manager;
     * the next control period budgets accordingly).
     */
    void setPriority(Priority priority) { spec_.priority = priority; }

    /** Current utilization. */
    Fraction utilization() const { return utilization_; }

    /**
     * Set the enforced total AC cap. Pass kNoCap for uncapped.
     * Caps below the enforceable floor are clamped to the floor.
     */
    void setEnforcedCapAc(Watts cap);

    /** Sentinel meaning "no cap in force". */
    static constexpr Watts kNoCap = -1.0;

    /** Uncapped AC power demand at the current utilization. */
    Watts demandAc() const { return demandAcAt(utilization_); }

    /** Uncapped AC power demand at utilization @p u (Fan et al. curve). */
    Watts demandAcAt(Fraction u) const;

    /**
     * Lowest AC power reachable by throttling at the current utilization
     * (full throttle applied to the present workload).
     */
    Watts floorAc() const;

    /** Actual total AC power drawn right now (demand clipped by the cap). */
    Watts actualAc() const;

    /** Actual DC power drawn (actualAc x blended efficiency). */
    Watts actualDc() const;

    /** AC power drawn by supply @p s given states and load shares. */
    Watts supplyAc(std::size_t s) const;

    /**
     * Performance fraction phi in (0, 1]: 1 when uncapped; under a cap,
     * phi = ((P - idle) / (demand - idle))^(1/gamma).
     */
    Fraction performance() const;

    /** Node-manager style throttle level: 1 - performance, in [0, 1). */
    Fraction throttleLevel() const { return 1.0 - performance(); }

    /**
     * Normalized throughput: performance relative to the uncapped run of
     * the same workload. Equals performance() (phi is that ratio).
     */
    Fraction normalizedThroughput() const { return performance(); }

    /** Number of supplies. */
    std::size_t supplyCount() const { return spec_.supplies.size(); }

    /** Health state of supply @p s. */
    SupplyState supplyState(std::size_t s) const;

    /** Fail / restore a supply. */
    void setSupplyState(std::size_t s, SupplyState state);

    /** Number of supplies currently in the Ok state (sharing load). */
    std::size_t workingSupplies() const;

    /**
     * Effective share of total AC load on supply @p s right now,
     * renormalized over working supplies (0 for failed/standby).
     */
    Fraction effectiveShare(std::size_t s) const;

    /** Mean AC->DC efficiency weighted by effective shares. */
    Fraction blendedEfficiency() const;

    /** Throttle fraction floor: performance at the capMin operating point. */
    Fraction minPerformance() const;

  private:
    ServerSpec spec_;
    Fraction utilization_ = 0.0;
    Watts enforcedCapAc_ = kNoCap;
    std::vector<SupplyState> states_;

    void validateSpec() const;
    /** Re-evaluate hot-spare standby entry/exit from the current load. */
    void updateStandby();
};

} // namespace capmaestro::dev

#endif // CAPMAESTRO_DEVICE_SERVER_HH
