/**
 * @file
 * IPMI-style sensor emulation: per-supply AC power monitors and the
 * node-manager throttle-level reading, with configurable noise and
 * quantization. The capping controller (paper §5) reads these at 1 Hz and
 * averages them per 8 s control period.
 */

#ifndef CAPMAESTRO_DEVICE_SENSOR_HH
#define CAPMAESTRO_DEVICE_SENSOR_HH

#include <vector>

#include "device/node_manager.hh"
#include "device/server.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace capmaestro::dev {

/** Noise/quantization configuration for sensor readings. */
struct SensorConfig
{
    /** Std-dev of additive Gaussian noise on AC power readings (W). */
    Watts powerNoiseStddev = 1.0;
    /** Quantization step for power readings (W); 0 disables. */
    Watts powerQuantum = 1.0;
    /** Std-dev of noise on the throttle-level reading (fraction). */
    double throttleNoiseStddev = 0.002;
};

/** One snapshot of a server's sensors. */
struct SensorReading
{
    /** AC power per supply (W), indexed by supply. */
    std::vector<Watts> supplyAc;
    /** Total AC power (sum of supplies). */
    Watts totalAc = 0.0;
    /** Node-manager throttle level in [0, 1). */
    double throttleLevel = 0.0;
};

/** Emulated sensor stack for one server. */
class SensorEmulator
{
  public:
    /**
     * @param server   server under observation (not owned)
     * @param nm       node manager for throttle readings (not owned)
     * @param rng      noise stream (forked per server for determinism)
     * @param config   noise parameters
     */
    SensorEmulator(const ServerModel &server, const NodeManager &nm,
                   util::Rng rng, SensorConfig config = {});

    /** Take one noisy snapshot of all sensors. */
    SensorReading read();

    /** Noise-free snapshot (for oracle tests). */
    SensorReading readTrue() const;

  private:
    const ServerModel &server_;
    const NodeManager &nm_;
    util::Rng rng_;
    SensorConfig config_;

    Watts quantize(Watts v) const;
};

} // namespace capmaestro::dev

#endif // CAPMAESTRO_DEVICE_SENSOR_HH
