/**
 * @file
 * Virtual power partitions (paper §7, "Coordination of Job Scheduling
 * with Power Management").
 *
 * Server-level capping throttles every tenant of a shared server
 * equally. The paper's discussion calls for either (1) schedulers that
 * co-locate jobs of equal priority, or (2) per-"virtual partition" caps
 * so each VM can be budgeted individually. This module implements the
 * second idea on top of the ServerModel: the server's enforced
 * performance fraction is treated as a compute capacity and divided
 * among its VMs priority-first, so a capped server sheds low-priority
 * VM throughput before touching high-priority VMs.
 *
 * It also provides the priority-derivation helper the paper sketches
 * for mixed-tenancy servers ("set server priority based on the
 * priorities of the set of VMs assigned to it").
 */

#ifndef CAPMAESTRO_DEVICE_VM_HH
#define CAPMAESTRO_DEVICE_VM_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace capmaestro::dev {

/** One virtual machine (or container) hosted on a server. */
struct VmSpec
{
    std::string name;
    Priority priority = 0;
    /**
     * Fraction of the server's compute capacity this VM subscribes to
     * (e.g., vCPUs / total cores). Shares across a server's VMs must
     * sum to at most 1.
     */
    Fraction cpuShare = 0.0;
};

/** Throughput granted to one VM under a partitioned cap. */
struct VmAllocation
{
    /** Compute capacity granted (same units as cpuShare). */
    Fraction granted = 0.0;
    /** granted / cpuShare in [0, 1]; 1 when unthrottled. */
    Fraction normalizedThroughput = 0.0;
};

/** Priority-first division of a server's capacity among its VMs. */
class VmPartitioner
{
  public:
    /**
     * @param vms the hosted VMs; shares must sum to <= 1 (+epsilon)
     */
    explicit VmPartitioner(std::vector<VmSpec> vms);

    /** The hosted VMs. */
    const std::vector<VmSpec> &vms() const { return vms_; }

    /**
     * Divide @p server_performance (the ServerModel's performance
     * fraction, i.e., available compute capacity in [0, 1]) among the
     * VMs: strictly priority-ordered, pro-rata within a priority level.
     */
    std::vector<VmAllocation>
    allocate(Fraction server_performance) const;

    /**
     * The server priority this VM mix implies for CapMaestro: the
     * highest priority whose VMs (and all higher) subscribe to at least
     * @p protect_share of the server. Rationale: budgeting the whole
     * server at its top tenant's priority is safe only if capping the
     * remainder still leaves that tenant whole; the threshold bounds
     * how much low-priority share may hide under a high-priority badge.
     */
    Priority derivedServerPriority(Fraction protect_share = 0.5) const;

    /** Total subscribed share. */
    Fraction totalShare() const;

  private:
    std::vector<VmSpec> vms_;
};

} // namespace capmaestro::dev

#endif // CAPMAESTRO_DEVICE_VM_HH
