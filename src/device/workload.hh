/**
 * @file
 * Workload utilization profiles driving server power demand over time.
 *
 * The testbed experiments (paper §6.1-6.3) run an Apache-like steady load;
 * the capacity studies (§6.4) sample utilization from a distribution. This
 * header provides composable u(t) profiles for both, plus noise.
 */

#ifndef CAPMAESTRO_DEVICE_WORKLOAD_HH
#define CAPMAESTRO_DEVICE_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/random.hh"
#include "util/units.hh"

namespace capmaestro::dev {

/** A utilization profile: maps simulated time to CPU utilization [0,1]. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Utilization at simulated second @p t. */
    virtual Fraction utilizationAt(Seconds t) = 0;
};

/** Constant utilization. */
class ConstantWorkload : public Workload
{
  public:
    explicit ConstantWorkload(Fraction u) : u_(u) {}

    Fraction utilizationAt(Seconds) override { return u_; }

  private:
    Fraction u_;
};

/** Piecewise-constant utilization: (start_time, u) steps in time order. */
class StepWorkload : public Workload
{
  public:
    /** @param steps list of (time, utilization) pairs, ascending time */
    explicit StepWorkload(std::vector<std::pair<Seconds, Fraction>> steps);

    Fraction utilizationAt(Seconds t) override;

  private:
    std::vector<std::pair<Seconds, Fraction>> steps_;
};

/** Sinusoidal utilization around a mean (diurnal-style variation). */
class SineWorkload : public Workload
{
  public:
    /**
     * @param mean       average utilization
     * @param amplitude  peak deviation from the mean
     * @param period     seconds per full cycle
     */
    SineWorkload(Fraction mean, Fraction amplitude, Seconds period);

    Fraction utilizationAt(Seconds t) override;

  private:
    Fraction mean_;
    Fraction amplitude_;
    Seconds period_;
};

/** Bounded random-walk utilization (bursty cloud tenant). */
class RandomWalkWorkload : public Workload
{
  public:
    /**
     * @param start  initial utilization
     * @param step   per-second maximum walk increment
     * @param rng    deterministic stream
     */
    RandomWalkWorkload(Fraction start, Fraction step, util::Rng rng);

    Fraction utilizationAt(Seconds t) override;

  private:
    Fraction u_;
    Fraction step_;
    util::Rng rng_;
    Seconds lastT_ = -1;
};

/**
 * Trace-driven utilization: replays a sampled utilization series.
 * Samples are spaced @p sample_period seconds apart, linearly
 * interpolated between points, and the trace loops when exhausted —
 * letting operators replay telemetry from their own fleets.
 */
class TraceWorkload : public Workload
{
  public:
    /**
     * @param samples        utilization samples in [0, 1]
     * @param sample_period  seconds between consecutive samples (>= 1)
     */
    TraceWorkload(std::vector<Fraction> samples, Seconds sample_period);

    Fraction utilizationAt(Seconds t) override;

    /** Parse a one-value-per-line trace file (# comments allowed). */
    static std::vector<Fraction> loadTraceFile(const std::string &path);

  private:
    std::vector<Fraction> samples_;
    Seconds samplePeriod_;
};

/** Wrap another workload with additive Gaussian noise. */
class NoisyWorkload : public Workload
{
  public:
    NoisyWorkload(std::unique_ptr<Workload> inner, double stddev,
                  util::Rng rng);

    Fraction utilizationAt(Seconds t) override;

  private:
    std::unique_ptr<Workload> inner_;
    double stddev_;
    util::Rng rng_;
};

} // namespace capmaestro::dev

#endif // CAPMAESTRO_DEVICE_WORKLOAD_HH
