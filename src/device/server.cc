#include "device/server.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace capmaestro::dev {

double
fanActivity(Fraction utilization)
{
    const double u = util::clamp(utilization, 0.0, 1.0);
    return 2.0 * u - std::pow(u, 1.4);
}

Watts
fanPower(Watts idle, Watts max, Fraction utilization)
{
    return idle + (max - idle) * fanActivity(utilization);
}

Fraction
SupplySpec::efficiencyAtLoad(Watts load_watts) const
{
    if (ratedPower <= 0.0)
        return efficiency;
    const double f = util::clamp(load_watts / ratedPower, 0.0, 1.2);
    if (f <= 0.2)
        return efficiencyAt20;
    if (f <= 0.5) {
        const double t = (f - 0.2) / 0.3;
        return efficiencyAt20 + t * (efficiencyAt50 - efficiencyAt20);
    }
    if (f <= 1.0) {
        const double t = (f - 0.5) / 0.5;
        return efficiencyAt50 + t * (efficiencyAt100 - efficiencyAt50);
    }
    return efficiencyAt100;
}

ServerModel::ServerModel(ServerSpec spec)
    : spec_(std::move(spec)),
      states_(spec_.supplies.size(), SupplyState::Ok)
{
    validateSpec();
}

void
ServerModel::validateSpec() const
{
    if (spec_.supplies.empty())
        util::fatal("server %s: needs at least one supply",
                    spec_.name.c_str());
    if (!(spec_.idle >= 0.0) || !(spec_.capMin > spec_.idle)
        || !(spec_.capMax > spec_.capMin)) {
        util::fatal("server %s: need 0 <= idle < capMin < capMax "
                    "(got %.1f/%.1f/%.1f)", spec_.name.c_str(), spec_.idle,
                    spec_.capMin, spec_.capMax);
    }
    if (spec_.gamma < 1.0)
        util::fatal("server %s: gamma must be >= 1", spec_.name.c_str());
    double share_sum = 0.0;
    for (const auto &s : spec_.supplies) {
        if (s.loadShare <= 0.0 || s.loadShare > 1.0)
            util::fatal("server %s: supply share outside (0,1]",
                        spec_.name.c_str());
        if (s.efficiency <= 0.0 || s.efficiency > 1.0)
            util::fatal("server %s: supply efficiency outside (0,1]",
                        spec_.name.c_str());
        if (s.ratedPower > 0.0) {
            for (const double e :
                 {s.efficiencyAt20, s.efficiencyAt50, s.efficiencyAt100}) {
                if (e <= 0.0 || e > 1.0) {
                    util::fatal("server %s: efficiency-curve point "
                                "outside (0,1]", spec_.name.c_str());
                }
            }
        }
        share_sum += s.loadShare;
    }
    if (!util::approxEqual(share_sum, 1.0, 1e-6))
        util::fatal("server %s: supply shares sum to %f, expected 1",
                    spec_.name.c_str(), share_sum);
}

void
ServerModel::setUtilization(Fraction u)
{
    utilization_ = util::clamp(u, 0.0, 1.0);
    updateStandby();
}

void
ServerModel::setEnforcedCapAc(Watts cap)
{
    enforcedCapAc_ = cap;
    updateStandby();
}

Watts
ServerModel::demandAcAt(Fraction u) const
{
    return fanPower(spec_.idle, spec_.capMax, u);
}

Fraction
ServerModel::minPerformance() const
{
    const double ratio =
        (spec_.capMin - spec_.idle) / (spec_.capMax - spec_.idle);
    return std::pow(ratio, 1.0 / spec_.gamma);
}

Watts
ServerModel::floorAc() const
{
    const Watts demand = demandAc();
    const double phi_min = minPerformance();
    return spec_.idle + (demand - spec_.idle) * std::pow(phi_min,
                                                         spec_.gamma);
}

Watts
ServerModel::actualAc() const
{
    if (workingSupplies() == 0)
        return 0.0; // dark: no supply can deliver power
    const Watts demand = demandAc();
    if (enforcedCapAc_ == kNoCap || enforcedCapAc_ >= demand)
        return demand;
    return util::clamp(enforcedCapAc_, floorAc(), demand);
}

Watts
ServerModel::actualDc() const
{
    return actualAc() * blendedEfficiency();
}

Fraction
ServerModel::performance() const
{
    if (workingSupplies() == 0)
        return 0.0; // dark server does no work
    const Watts demand = demandAc();
    const Watts actual = actualAc();
    if (actual >= demand - 1e-9)
        return 1.0;
    const double span = demand - spec_.idle;
    if (span <= 1e-9)
        return 1.0; // idle workload: capping costs nothing
    const double ratio = util::clamp((actual - spec_.idle) / span, 0.0, 1.0);
    return std::pow(ratio, 1.0 / spec_.gamma);
}

SupplyState
ServerModel::supplyState(std::size_t s) const
{
    if (s >= states_.size())
        util::panic("server %s: bad supply index %zu", spec_.name.c_str(),
                    s);
    return states_[s];
}

void
ServerModel::setSupplyState(std::size_t s, SupplyState state)
{
    if (s >= states_.size())
        util::panic("server %s: bad supply index %zu", spec_.name.c_str(),
                    s);
    states_[s] = state;
    std::size_t ok = 0;
    for (auto st : states_)
        ok += (st == SupplyState::Ok) ? 1 : 0;
    if (ok == 0)
        util::warn("server %s: no working supply; server is dark",
                   spec_.name.c_str());
}

std::size_t
ServerModel::workingSupplies() const
{
    std::size_t ok = 0;
    for (auto st : states_)
        ok += (st == SupplyState::Ok) ? 1 : 0;
    return ok;
}

Fraction
ServerModel::effectiveShare(std::size_t s) const
{
    if (s >= states_.size())
        util::panic("server %s: bad supply index %zu", spec_.name.c_str(),
                    s);
    if (states_[s] != SupplyState::Ok)
        return 0.0;
    double ok_sum = 0.0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i] == SupplyState::Ok)
            ok_sum += spec_.supplies[i].loadShare;
    }
    if (ok_sum <= 0.0)
        return 0.0;
    return spec_.supplies[s].loadShare / ok_sum;
}

Watts
ServerModel::supplyAc(std::size_t s) const
{
    return actualAc() * effectiveShare(s);
}

Fraction
ServerModel::blendedEfficiency() const
{
    // Load-weighted mean over working supplies, each evaluated at the
    // load it currently carries (flat-efficiency supplies ignore load).
    double eff = 0.0, total = 0.0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const double share = effectiveShare(i);
        if (share <= 0.0)
            continue;
        eff += share * spec_.supplies[i].efficiencyAtLoad(supplyAc(i));
        total += share;
    }
    if (total <= 0.0)
        return spec_.supplies.front().efficiency;
    return eff / total;
}

void
ServerModel::updateStandby()
{
    if (!spec_.hotSpareEnabled || states_.size() < 2)
        return;

    // Compute load ignoring standby effects (total draw is share-invariant).
    const Watts load = actualAc();

    if (load < spec_.standbyThreshold) {
        // Park the smallest-share Ok supply if at least two are Ok.
        if (workingSupplies() >= 2) {
            std::size_t victim = states_.size();
            double min_share = 2.0;
            for (std::size_t i = 0; i < states_.size(); ++i) {
                if (states_[i] == SupplyState::Ok
                    && spec_.supplies[i].loadShare < min_share) {
                    min_share = spec_.supplies[i].loadShare;
                    victim = i;
                }
            }
            if (victim < states_.size())
                states_[victim] = SupplyState::Standby;
        }
    } else {
        // Wake any standby supplies.
        for (auto &st : states_) {
            if (st == SupplyState::Standby)
                st = SupplyState::Ok;
        }
    }
}

} // namespace capmaestro::dev
