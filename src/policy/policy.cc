#include "policy/policy.hh"

#include "util/numeric.hh"

namespace capmaestro::policy {

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::NoPriority:     return "No Priority";
      case PolicyKind::LocalPriority:  return "Local Priority";
      case PolicyKind::GlobalPriority: return "Global Priority";
    }
    return "unknown";
}

ctrl::TreePolicy
treePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::NoPriority:
        return ctrl::TreePolicy::noPriority();
      case PolicyKind::LocalPriority:
        return ctrl::TreePolicy::localPriority();
      case PolicyKind::GlobalPriority:
        return ctrl::TreePolicy::globalPriority();
    }
    return ctrl::TreePolicy::globalPriority();
}

double
capRatio(Watts demand, Watts budgeted, Watts idle)
{
    const double dynamic = demand - idle;
    if (dynamic <= 1e-9)
        return 0.0;
    return util::clamp((demand - budgeted) / dynamic, 0.0, 1.0);
}

} // namespace capmaestro::policy
