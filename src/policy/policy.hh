/**
 * @file
 * The three power-capping policies evaluated in the paper (§6.2, §6.4).
 *
 *   No Priority     — after guaranteeing every server Pcap_min, remaining
 *                     power is split proportionally to (Pdemand - Pcap_min)
 *                     at every level; priorities are ignored.
 *   Local Priority  — Facebook Dynamo [5] extended to redundant feeds:
 *                     priorities are honored only at leaf controllers
 *                     (single breaker groups); upper levels are
 *                     priority-oblivious.
 *   Global Priority — CapMaestro: per-priority metrics flow to every level
 *                     of the control hierarchy, so high-priority servers
 *                     can borrow power from low-priority servers anywhere
 *                     in the data center.
 */

#ifndef CAPMAESTRO_POLICY_POLICY_HH
#define CAPMAESTRO_POLICY_POLICY_HH

#include <array>
#include <string>

#include "control/control_tree.hh"
#include "util/units.hh"

namespace capmaestro::policy {

/** The evaluated power-capping policies. */
enum class PolicyKind {
    NoPriority,
    LocalPriority,
    GlobalPriority,
};

/** All policies, in the paper's presentation order. */
constexpr std::array<PolicyKind, 3> kAllPolicies{
    PolicyKind::NoPriority,
    PolicyKind::LocalPriority,
    PolicyKind::GlobalPriority,
};

/** Human-readable policy name as used in the paper's tables. */
const char *policyName(PolicyKind kind);

/** Control-tree priority flags implementing @p kind. */
ctrl::TreePolicy treePolicy(PolicyKind kind);

/**
 * The paper's application-neutral performance metric (§6.4):
 *
 *   cap ratio = (demand - budgeted) / (demand - idle)
 *
 * clamped to [0, 1]; 0 when the budget covers the demand. Lower is better.
 */
double capRatio(Watts demand, Watts budgeted, Watts idle);

} // namespace capmaestro::policy

#endif // CAPMAESTRO_POLICY_POLICY_HH
