/**
 * @file
 * Fixed-bin histogram for distribution reporting (e.g., paper Figure 8).
 */

#ifndef CAPMAESTRO_STATS_HISTOGRAM_HH
#define CAPMAESTRO_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace capmaestro::stats {

/**
 * Equal-width histogram over [lo, hi); out-of-range samples clamp.
 *
 * Clamp semantics (part of the API contract, verified by test):
 * samples below lo count into the first bin; samples at or above hi
 * count into the last bin. The upper bound is *exclusive*: a sample
 * exactly at hi does not open a new bin but clamps down into the top
 * bin [hi - width, hi). Non-finite samples clamp too (NaN and -inf
 * into the first bin, +inf into the last), so no input can corrupt
 * the bin index.
 *
 * Degenerate range: hi == lo is legal and yields zero-width bins.
 * Callers deriving the range from observed data (e.g., an SLO slowdown
 * distribution where every job completed instantly, so min == max)
 * would otherwise have to special-case the single-point distribution.
 * Samples at or below lo land in the first bin, samples above in the
 * last; every bin edge equals lo and no division ever happens, so the
 * clamp contract holds unchanged. Only hi < lo is rejected.
 */
class Histogram
{
  public:
    /**
     * @param lo    inclusive lower bound of the histogram range
     * @param hi    exclusive upper bound (hi == lo is the degenerate
     *              single-point range; see class comment)
     * @param bins  number of equal-width bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add one sample (clamped into range; see class comment). */
    void add(double x);

    /** Total number of samples. */
    std::size_t count() const { return total_; }

    /** Number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** Raw count in bin @p i. */
    std::size_t binCount(std::size_t i) const { return counts_.at(i); }

    /** Fraction of samples in bin @p i (0 when empty). */
    double binFraction(std::size_t i) const;

    /** Center x-value of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Lower edge of bin @p i. */
    double binLow(std::size_t i) const;

    /** Upper (exclusive) edge of bin @p i. */
    double binHigh(std::size_t i) const;

    /** Inclusive lower bound of the range. */
    double lo() const { return lo_; }

    /** Exclusive upper bound of the range. */
    double hi() const { return hi_; }

    /** Render an ASCII bar chart (one line per bin). */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace capmaestro::stats

#endif // CAPMAESTRO_STATS_HISTOGRAM_HH
