#include "stats/quantile.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace capmaestro::stats {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile)
{
    if (quantile_ <= 0.0 || quantile_ >= 1.0)
        util::fatal("P2Quantile: quantile must be in (0,1)");
    desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_,
                3.0 + 2.0 * quantile_, 5.0};
    increments_ = {0.0, quantile_ / 2.0, quantile_,
                   (1.0 + quantile_) / 2.0, 1.0};
    positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

double
P2Quantile::parabolic(int i, double d) const
{
    const double qi = heights_[static_cast<std::size_t>(i)];
    const double qm = heights_[static_cast<std::size_t>(i - 1)];
    const double qp = heights_[static_cast<std::size_t>(i + 1)];
    const double ni = positions_[static_cast<std::size_t>(i)];
    const double nm = positions_[static_cast<std::size_t>(i - 1)];
    const double np = positions_[static_cast<std::size_t>(i + 1)];
    return qi
           + d / (np - nm)
                 * ((ni - nm + d) * (qp - qi) / (np - ni)
                    + (np - ni - d) * (qi - qm) / (ni - nm));
}

double
P2Quantile::linear(int i, double d) const
{
    const auto j = static_cast<std::size_t>(i + static_cast<int>(d));
    const auto k = static_cast<std::size_t>(i);
    return heights_[k]
           + d * (heights_[j] - heights_[k])
                 / (positions_[j] - positions_[k]);
}

void
P2Quantile::add(double x)
{
    if (count_ < 5) {
        heights_[count_] = x;
        ++count_;
        if (count_ == 5)
            std::sort(heights_.begin(), heights_.end());
        return;
    }

    // Locate the cell containing x and update extreme heights.
    std::size_t k;
    if (x < heights_[0]) {
        heights_[0] = x;
        k = 0;
    } else if (x >= heights_[4]) {
        heights_[4] = std::max(heights_[4], x);
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights_[k + 1])
            ++k;
    }

    for (std::size_t i = k + 1; i < 5; ++i)
        positions_[i] += 1.0;
    for (std::size_t i = 0; i < 5; ++i)
        desired_[i] += increments_[i];
    ++count_;

    // Adjust interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const double diff = desired_[idx] - positions_[idx];
        const bool can_up =
            positions_[idx + 1] - positions_[idx] > 1.0;
        const bool can_down =
            positions_[idx - 1] - positions_[idx] < -1.0;
        if ((diff >= 1.0 && can_up) || (diff <= -1.0 && can_down)) {
            const double d = diff >= 1.0 ? 1.0 : -1.0;
            double candidate = parabolic(i, d);
            if (candidate <= heights_[idx - 1]
                || candidate >= heights_[idx + 1]) {
                candidate = linear(i, d);
            }
            heights_[idx] = candidate;
            positions_[idx] += d;
        }
    }
}

double
P2Quantile::value() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ < 5) {
        // Exact on the few samples seen so far.
        std::array<double, 5> sorted = heights_;
        std::sort(sorted.begin(), sorted.begin()
                                      + static_cast<long>(count_));
        const auto rank = static_cast<std::size_t>(std::ceil(
                              quantile_ * static_cast<double>(count_)))
                          - 1;
        return sorted[std::min(rank, count_ - 1)];
    }
    return heights_[2];
}

} // namespace capmaestro::stats
