#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace capmaestro::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0)
        util::fatal("Histogram needs at least one bin");
    if (!(hi >= lo))
        util::fatal("Histogram range must satisfy hi >= lo");
}

void
Histogram::add(double x)
{
    // Resolve the clamps before converting to an index: casting the
    // quotient directly would be undefined for samples far outside the
    // range (or NaN). !(x > lo_) also routes NaN into the first bin.
    std::size_t idx;
    if (!(x > lo_)) {
        idx = 0;
    } else if (x >= hi_) {
        // Exclusive upper bound: x == hi_ clamps into [hi - width, hi).
        idx = counts_.size() - 1;
    } else {
        const double width =
            (hi_ - lo_) / static_cast<double>(counts_.size());
        idx = std::min(
            static_cast<std::size_t>(std::floor((x - lo_) / width)),
            counts_.size() - 1);
    }
    ++counts_[idx];
    ++total_;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double
Histogram::binCenter(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double
Histogram::binLow(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + static_cast<double>(i) * width;
}

double
Histogram::binHigh(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + static_cast<double>(i + 1) * width;
}

std::string
Histogram::render(std::size_t width) const
{
    double max_frac = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        max_frac = std::max(max_frac, binFraction(i));

    std::string out;
    char buf[96];
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double frac = binFraction(i);
        const auto bar_len = static_cast<std::size_t>(
            max_frac > 0 ? std::lround(frac / max_frac
                                       * static_cast<double>(width))
                         : 0);
        std::snprintf(buf, sizeof(buf), "%6.2f  %5.1f%%  ", binCenter(i),
                      100.0 * frac);
        out += buf;
        out.append(bar_len, '#');
        out += '\n';
    }
    return out;
}

} // namespace capmaestro::stats
