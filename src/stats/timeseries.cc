#include "stats/timeseries.hh"

#include <algorithm>
#include <cmath>
#include <set>

namespace capmaestro::stats {

namespace {
const std::vector<SeriesPoint> kEmptySeries;
} // namespace

void
TimeSeriesRecorder::record(const std::string &name, Seconds time,
                           double value)
{
    series_[name].push_back({time, value});
}

const std::vector<SeriesPoint> &
TimeSeriesRecorder::series(const std::string &name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? kEmptySeries : it->second;
}

std::vector<std::string>
TimeSeriesRecorder::names() const
{
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto &[name, pts] : series_)
        out.push_back(name);
    return out;
}

double
TimeSeriesRecorder::last(const std::string &name, double fallback) const
{
    const auto &pts = series(name);
    return pts.empty() ? fallback : pts.back().value;
}

double
TimeSeriesRecorder::mean(const std::string &name, Seconds from,
                         Seconds to) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &p : series(name)) {
        if (p.time >= from && p.time <= to) {
            sum += p.value;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
TimeSeriesRecorder::max(const std::string &name, Seconds from,
                        Seconds to) const
{
    double best = 0.0;
    bool any = false;
    for (const auto &p : series(name)) {
        if (p.time >= from && p.time <= to) {
            best = any ? std::max(best, p.value) : p.value;
            any = true;
        }
    }
    return any ? best : 0.0;
}

Seconds
TimeSeriesRecorder::settleTime(const std::string &name, Seconds from,
                               double target, double tol,
                               Seconds to) const
{
    const auto &pts = series(name);
    Seconds settled = -1;
    for (const auto &p : pts) {
        if (p.time < from || p.time > to)
            continue;
        if (std::fabs(p.value - target) <= tol) {
            if (settled < 0)
                settled = p.time;
        } else {
            settled = -1;
        }
    }
    return settled;
}

void
TimeSeriesRecorder::printCsv(std::ostream &os) const
{
    // Collect the union of all timestamps.
    std::set<Seconds> times;
    for (const auto &[name, pts] : series_)
        for (const auto &p : pts)
            times.insert(p.time);

    os << "time";
    for (const auto &[name, pts] : series_)
        os << ',' << name;
    os << '\n';

    // Per-series cursor walk keeps this O(total points).
    std::map<std::string, std::size_t> cursor;
    for (Seconds t : times) {
        os << t;
        for (const auto &[name, pts] : series_) {
            std::size_t &i = cursor[name];
            while (i < pts.size() && pts[i].time < t)
                ++i;
            os << ',';
            if (i < pts.size() && pts[i].time == t)
                os << pts[i].value;
        }
        os << '\n';
    }
    os.flush();
}

void
TimeSeriesRecorder::clear()
{
    series_.clear();
}

} // namespace capmaestro::stats
