/**
 * @file
 * Streaming statistics accumulator (count/mean/variance/min/max).
 *
 * Uses Welford's online algorithm so Monte-Carlo sweeps can aggregate
 * millions of samples without storing them.
 */

#ifndef CAPMAESTRO_STATS_ACCUMULATOR_HH
#define CAPMAESTRO_STATS_ACCUMULATOR_HH

#include <cstddef>

namespace capmaestro::stats {

/** Online mean/variance/extrema accumulator. */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const Accumulator &other);

    /** Reset to the empty state. */
    void clear();

    /** Number of samples. */
    std::size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace capmaestro::stats

#endif // CAPMAESTRO_STATS_ACCUMULATOR_HH
