/**
 * @file
 * Named time-series recorder for control-loop traces (Figures 5, 6b, 7c).
 */

#ifndef CAPMAESTRO_STATS_TIMESERIES_HH
#define CAPMAESTRO_STATS_TIMESERIES_HH

#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/units.hh"

namespace capmaestro::stats {

/** One sampled point of a series. */
struct SeriesPoint
{
    Seconds time = 0;
    double value = 0.0;
};

/**
 * A collection of named series sampled on a shared simulated clock.
 * Series lengths may differ (not every series is sampled every tick).
 */
class TimeSeriesRecorder
{
  public:
    /** Record @p value for series @p name at simulated @p time. */
    void record(const std::string &name, Seconds time, double value);

    /** All points of one series (empty when the name is unknown). */
    const std::vector<SeriesPoint> &series(const std::string &name) const;

    /** Names of all recorded series, sorted. */
    std::vector<std::string> names() const;

    /** Last recorded value of a series; @p fallback when empty. */
    double last(const std::string &name, double fallback = 0.0) const;

    /** Mean of a series over [from, to] (inclusive); 0 when no points. */
    double mean(const std::string &name, Seconds from, Seconds to) const;

    /** Max of a series over [from, to]; 0 when no points. */
    double max(const std::string &name, Seconds from, Seconds to) const;

    /**
     * First time >= @p from at which |value - target| <= tol held and
     * continued to hold for every later sample up to @p to (inclusive;
     * pass the default to consider the whole series). Returns -1 if
     * never.
     */
    Seconds settleTime(const std::string &name, Seconds from, double target,
                       double tol,
                       Seconds to = std::numeric_limits<Seconds>::max())
        const;

    /** Emit CSV: time plus one column per series (blank when missing). */
    void printCsv(std::ostream &os) const;

    /** Drop all series. */
    void clear();

  private:
    std::map<std::string, std::vector<SeriesPoint>> series_;
};

} // namespace capmaestro::stats

#endif // CAPMAESTRO_STATS_TIMESERIES_HH
