/**
 * @file
 * Streaming quantile estimation with the P-squared algorithm (Jain &
 * Chlamtac, 1985): tracks a single quantile in O(1) memory without
 * storing samples. Used to report tail cap ratios (p95/p99) in the
 * Monte-Carlo capacity studies, where the mean criterion of §6.4 can
 * hide a badly-throttled minority.
 */

#ifndef CAPMAESTRO_STATS_QUANTILE_HH
#define CAPMAESTRO_STATS_QUANTILE_HH

#include <array>
#include <cstddef>

namespace capmaestro::stats {

/** O(1)-memory estimator of one quantile of a stream. */
class P2Quantile
{
  public:
    /** @param quantile target quantile in (0, 1), e.g. 0.99 */
    explicit P2Quantile(double quantile);

    /** Add one sample. */
    void add(double x);

    /**
     * Current estimate. Exact while fewer than 5 samples have been
     * seen; P-squared approximation afterwards.
     */
    double value() const;

    /** Number of samples observed. */
    std::size_t count() const { return count_; }

    /** Target quantile. */
    double quantile() const { return quantile_; }

  private:
    double quantile_;
    std::size_t count_ = 0;
    /** Marker heights (the 5 running order statistics). */
    std::array<double, 5> heights_{};
    /** Actual marker positions (1-based sample ranks). */
    std::array<double, 5> positions_{};
    /** Desired marker positions. */
    std::array<double, 5> desired_{};
    /** Desired position increments per sample. */
    std::array<double, 5> increments_{};

    double parabolic(int i, double d) const;
    double linear(int i, double d) const;
};

} // namespace capmaestro::stats

#endif // CAPMAESTRO_STATS_QUANTILE_HH
