/**
 * @file
 * SimTransport: an unreliable datagram plane for the distributed
 * control protocol (paper §4.5).
 *
 * The transport models each (source, destination) link as a queue of
 * in-flight frames with a delivery time drawn from a configurable
 * latency distribution, and applies drop / duplication / extra-delay
 * (reordering) faults per frame. All randomness comes from one
 * deterministic util::Rng, so a given seed reproduces the exact same
 * fault pattern — simulations stay bit-reproducible.
 *
 * Time is a millisecond clock owned by the transport and advanced by
 * the protocol driver (the control plane steps it through its retry
 * and deadline schedule each control period). poll() hands a
 * destination every frame whose delivery time has been reached, in
 * delivery-time order; with zero latency and jitter the transport is
 * lossless, instantaneous, and per-link FIFO — the configuration under
 * which the distributed plane is bit-identical to the monolithic
 * ControlTree.
 */

#ifndef CAPMAESTRO_NET_TRANSPORT_HH
#define CAPMAESTRO_NET_TRANSPORT_HH

#include <cstdint>
#include <map>
#include <vector>

#include "telemetry/registry.hh"
#include "util/random.hh"

namespace capmaestro::net {

/** Fault and latency model for every link of a SimTransport. */
struct TransportConfig
{
    /** Probability a frame is silently lost. */
    double dropRate = 0.0;
    /** Probability a frame is delivered twice. */
    double dupRate = 0.0;
    /** Mean one-way latency in milliseconds. */
    double latencyMeanMs = 0.0;
    /** Uniform +/- jitter around the mean, in milliseconds. */
    double latencyJitterMs = 0.0;
    /** Probability a frame is held back (reordered past its peers). */
    double reorderRate = 0.0;
    /** Extra delay applied to held-back frames, in milliseconds. */
    double reorderExtraMs = 10.0;
    /** Seed for the transport's deterministic fault stream. */
    std::uint64_t seed = 0x5eedf00dULL;
};

/** Cumulative transport accounting. */
struct TransportStats
{
    std::size_t framesSent = 0;
    std::size_t framesDropped = 0;
    std::size_t framesDuplicated = 0;
    std::size_t framesDelivered = 0;
    std::size_t bytesSent = 0;
};

/** Deterministic unreliable message plane. */
class SimTransport
{
  public:
    /** Worker address (rack index or the room endpoint). */
    using Endpoint = std::uint32_t;

    explicit SimTransport(TransportConfig config = {});

    /**
     * Submit a frame on link @p from -> @p to. The frame is dropped,
     * delayed, and/or duplicated according to the config; surviving
     * copies become visible to poll(to) once the clock reaches their
     * delivery time.
     */
    void send(Endpoint from, Endpoint to, std::vector<std::uint8_t> frame);

    /**
     * Drain every frame addressed to @p to whose delivery time is
     * <= now, in delivery-time order (FIFO per link at equal times).
     */
    std::vector<std::vector<std::uint8_t>> poll(Endpoint to);

    /** Advance the clock to @p ms (no-op when already past). */
    void advanceTo(double ms);

    /** Advance the clock by @p ms. */
    void advanceBy(double ms);

    /** Current clock in milliseconds. */
    double nowMs() const { return nowMs_; }

    /** Frames currently queued (any destination, any delivery time). */
    std::size_t inFlight() const;

    /** Cumulative statistics. */
    const TransportStats &stats() const { return stats_; }

    /** The transport configuration. */
    const TransportConfig &config() const { return config_; }

    /**
     * Attach a metrics registry (nullptr detaches). Instrumentation is
     * pure observation of values the transport already computes — it
     * draws no randomness and allocates nothing per frame, so enabling
     * it cannot perturb the deterministic fault stream.
     */
    void setTelemetry(telemetry::Registry *registry);

  private:
    /** Delivery-ordered queue per destination: (time, tiebreak). */
    using Queue =
        std::multimap<std::pair<double, std::uint64_t>,
                      std::vector<std::uint8_t>>;

    void enqueue(Endpoint to, double deliver_at,
                 const std::vector<std::uint8_t> &frame);
    double sampleLatency();

    TransportConfig config_;
    util::Rng rng_;
    std::map<Endpoint, Queue> queues_;
    TransportStats stats_;
    double nowMs_ = 0.0;
    std::uint64_t order_ = 0;

    /** Handles resolved once in setTelemetry(); null-safe no-ops. */
    telemetry::Registry *registry_ = nullptr;
    telemetry::Counter mSent_;
    telemetry::Counter mDropped_;
    telemetry::Counter mDuplicated_;
    telemetry::Counter mDelivered_;
    telemetry::Counter mBytes_;
    telemetry::Gauge mQueueDepth_;
    telemetry::HistogramMetric mLatencyMs_;
};

} // namespace capmaestro::net

#endif // CAPMAESTRO_NET_TRANSPORT_HH
