/**
 * @file
 * The datagram plane for the distributed control protocol (paper
 * §4.5): an abstract Transport interface plus the deterministic
 * in-process SimTransport backend.
 *
 * Transport models an unreliable, unordered datagram service between
 * small integer endpoints (rack workers are 0..N-1, the room worker is
 * N). The protocol driver (core/distributed, src/rt) only ever uses
 * four capabilities — send a frame, drain a destination, read the
 * clock, advance the clock — so backends are interchangeable:
 *
 *  - SimTransport (this file): frames live in in-process queues, the
 *    clock is virtual and advanced by the caller, and drop/dup/latency
 *    faults come from one deterministic Rng. Simulations over it are
 *    bit-reproducible.
 *  - UdpTransport (net/udp_transport.hh): frames travel through real
 *    non-blocking UDP sockets, the clock is the monotonic wall clock,
 *    and advancing it sleeps. Faults come from the actual network.
 *
 * Time is a millisecond clock owned by the transport and advanced by
 * the protocol driver (the control plane steps it through its retry
 * and deadline schedule each control period). poll() hands a
 * destination every frame available to it, in delivery order; with
 * zero latency and jitter the SimTransport is lossless, instantaneous,
 * and per-link FIFO — the configuration under which the distributed
 * plane is bit-identical to the monolithic ControlTree.
 */

#ifndef CAPMAESTRO_NET_TRANSPORT_HH
#define CAPMAESTRO_NET_TRANSPORT_HH

#include <cstdint>
#include <map>
#include <vector>

#include "telemetry/registry.hh"
#include "util/random.hh"

namespace capmaestro::net {

/** Fault and latency model for every link of a SimTransport. */
struct TransportConfig
{
    /** Probability a frame is silently lost. */
    double dropRate = 0.0;
    /** Probability a frame is delivered twice. */
    double dupRate = 0.0;
    /** Mean one-way latency in milliseconds. */
    double latencyMeanMs = 0.0;
    /** Uniform +/- jitter around the mean, in milliseconds. */
    double latencyJitterMs = 0.0;
    /** Probability a frame is held back (reordered past its peers). */
    double reorderRate = 0.0;
    /** Extra delay applied to held-back frames, in milliseconds. */
    double reorderExtraMs = 10.0;
    /** Seed for the transport's deterministic fault stream. */
    std::uint64_t seed = 0x5eedf00dULL;
};

/** Cumulative transport accounting (same fields on every backend). */
struct TransportStats
{
    std::size_t framesSent = 0;
    std::size_t framesDropped = 0;
    std::size_t framesDuplicated = 0;
    std::size_t framesDelivered = 0;
    std::size_t bytesSent = 0;
    /** Payload bytes actually handed to poll() callers. */
    std::size_t bytesDelivered = 0;
};

/**
 * Abstract unreliable datagram plane. Implementations must tolerate
 * arbitrary interleavings of send/poll/advance and never throw on
 * hostile traffic; loss, duplication, and reordering are allowed at
 * any rate (the §4.5 protocol on top is built for it).
 */
class Transport
{
  public:
    /** Worker address (rack index, or rack count for the room). */
    using Endpoint = std::uint32_t;

    virtual ~Transport() = default;

    /**
     * Submit a frame on link @p from -> @p to. Surviving copies become
     * visible to poll(to) once delivered (immediately, or when the
     * clock reaches their delivery time, backend-dependent).
     */
    virtual void send(Endpoint from, Endpoint to,
                      std::vector<std::uint8_t> frame) = 0;

    /** Drain every frame currently available to destination @p to. */
    virtual std::vector<std::vector<std::uint8_t>> poll(Endpoint to) = 0;

    /** One frame delivered by drain(): destination plus payload. */
    struct Delivery
    {
        Endpoint to = 0;
        std::vector<std::uint8_t> frame;
    };

    /**
     * Drain every frame currently available to any of @p locals in one
     * pass — the event-loop primitive a host process with many
     * endpoints uses instead of polling each one. The default walks
     * poll() per endpoint; backends with kernel queues override it
     * with a single readiness pass (UdpTransport uses one epoll sweep
     * on Linux), so the cost per period scales with ready sockets, not
     * hosted endpoints.
     */
    virtual std::vector<Delivery>
    drain(const std::vector<Endpoint> &locals);

    /** Advance the clock to @p ms (no-op when already past). */
    virtual void advanceTo(double ms) = 0;

    /** Advance the clock by @p ms. */
    virtual void advanceBy(double ms) = 0;

    /** Current clock in milliseconds. */
    virtual double nowMs() const = 0;

    /**
     * Frames queued but not yet delivered, where the backend can know
     * (SimTransport); backends whose queues live in the kernel report 0.
     */
    virtual std::size_t inFlight() const = 0;

    /** Cumulative statistics. */
    virtual const TransportStats &stats() const = 0;

    /**
     * Attach a metrics registry (nullptr detaches). Instrumentation is
     * pure observation of values the transport already computes — it
     * draws no randomness and cannot perturb delivery.
     */
    virtual void setTelemetry(telemetry::Registry *registry) = 0;
};

/** Deterministic unreliable message plane (the simulator backend). */
class SimTransport : public Transport
{
  public:
    explicit SimTransport(TransportConfig config = {});

    /**
     * Submit a frame on link @p from -> @p to. The frame is dropped,
     * delayed, and/or duplicated according to the config; surviving
     * copies become visible to poll(to) once the clock reaches their
     * delivery time.
     */
    void send(Endpoint from, Endpoint to,
              std::vector<std::uint8_t> frame) override;

    /**
     * Drain every frame addressed to @p to whose delivery time is
     * <= now, in delivery-time order (FIFO per link at equal times).
     */
    std::vector<std::vector<std::uint8_t>> poll(Endpoint to) override;

    void advanceTo(double ms) override;

    void advanceBy(double ms) override;

    /** Current clock in milliseconds (virtual time). */
    double nowMs() const override { return nowMs_; }

    /** Frames currently queued (any destination, any delivery time). */
    std::size_t inFlight() const override;

    const TransportStats &stats() const override { return stats_; }

    /** The transport configuration. */
    const TransportConfig &config() const { return config_; }

    void setTelemetry(telemetry::Registry *registry) override;

  private:
    /** Delivery-ordered queue per destination: (time, tiebreak). */
    using Queue =
        std::multimap<std::pair<double, std::uint64_t>,
                      std::vector<std::uint8_t>>;

    void enqueue(Endpoint to, double deliver_at,
                 const std::vector<std::uint8_t> &frame);
    double sampleLatency();

    TransportConfig config_;
    util::Rng rng_;
    std::map<Endpoint, Queue> queues_;
    TransportStats stats_;
    double nowMs_ = 0.0;
    std::uint64_t order_ = 0;

    /** Handles resolved once in setTelemetry(); null-safe no-ops. */
    telemetry::Registry *registry_ = nullptr;
    telemetry::Counter mSent_;
    telemetry::Counter mDropped_;
    telemetry::Counter mDuplicated_;
    telemetry::Counter mDelivered_;
    telemetry::Counter mBytes_;
    telemetry::Counter mBytesDelivered_;
    telemetry::Gauge mQueueDepth_;
    telemetry::HistogramMetric mLatencyMs_;
};

} // namespace capmaestro::net

#endif // CAPMAESTRO_NET_TRANSPORT_HH
