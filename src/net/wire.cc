#include "net/wire.hh"

#include <bit>
#include <cstring>

#include "util/logging.hh"

namespace capmaestro::net {

namespace {

/** Most classes a metrics payload may carry (sanity bound, not a real
 *  limit: the paper expects ~10 priority levels per center). */
constexpr std::size_t kMaxClasses = 1024;

/** Encoded size of one ClassMetrics record (i32 + 3 x f64). */
constexpr std::size_t kClassBytes = 4 + 3 * 8;

static_assert(kMaxClasses * kClassBytes + 16 <= kMaxPayloadBytes,
              "the largest legitimate Metrics payload must fit under "
              "the frame-size cap");

/** Fixed bytes of one checkpoint server record (before supplies). */
constexpr std::size_t kCheckpointServerBytes = 4 + 1 + 3 * 8 + 2;

/** Bytes of one checkpoint supply slice (3 x f64). */
constexpr std::size_t kCheckpointSupplyBytes = 3 * 8;

/** Bytes of one membership-table row (endpoint u16 + state u8 +
 *  sinceGeneration u32). */
constexpr std::size_t kMembershipEntryBytes = 2 + 1 + 4;

static_assert(kMaxMembershipEntries * kMembershipEntryBytes + 6
                  <= kMaxPayloadBytes,
              "the largest legitimate MembershipDelta payload must fit "
              "under the frame-size cap");

// ------------------------------------------------------------- writing

class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        bytes_.push_back(static_cast<std::uint8_t>(v));
        bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    f64(double v)
    {
        const auto raw = std::bit_cast<std::uint64_t>(v);
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<std::uint8_t>(raw >> (8 * i)));
    }

    std::vector<std::uint8_t> &
    bytes()
    {
        return bytes_;
    }

  private:
    std::vector<std::uint8_t> bytes_;
};

// ------------------------------------------------------------- reading

/** Bounds-checked little-endian reader; ok() goes false on overrun. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool
    ok() const
    {
        return ok_;
    }

    std::size_t
    remaining() const
    {
        return size_ - pos_;
    }

    std::uint8_t
    u8()
    {
        if (!take(1))
            return 0;
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        if (!take(2))
            return 0;
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::int32_t
    i32()
    {
        return static_cast<std::int32_t>(u32());
    }

    double
    f64()
    {
        if (!take(8))
            return 0.0;
        std::uint64_t raw = 0;
        for (int i = 0; i < 8; ++i)
            raw |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return std::bit_cast<double>(raw);
    }

  private:
    bool
    take(std::size_t n)
    {
        if (!ok_ || size_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

std::vector<std::uint8_t>
seal(MsgType type, const FrameMeta &meta,
     const std::vector<std::uint8_t> &payload)
{
    if (meta.wireVersion != kWireVersion
        && meta.wireVersion != kWireCompatVersion) {
        util::fatal("wire: cannot encode under version %u (current %u, "
                    "compat %u)",
                    meta.wireVersion, kWireVersion, kWireCompatVersion);
    }
    if (meta.wireVersion < kWireVersion
        && (type == MsgType::MembershipDelta
            || type == MsgType::MembershipAck)) {
        util::fatal("wire: membership types do not exist before "
                    "version %u",
                    kWireVersion);
    }
    Writer w;
    w.u16(kWireMagic);
    w.u8(meta.wireVersion);
    w.u8(static_cast<std::uint8_t>(type));
    w.u16(meta.sender);
    w.u32(meta.epoch);
    w.u32(meta.seq);
    w.u16(static_cast<std::uint16_t>(payload.size()));
    if (meta.trace.has_value()) {
        w.u8(static_cast<std::uint8_t>(kTraceContextBytes));
        w.u16(meta.trace->traceId);
        w.u8(meta.trace->originTier);
        w.f64(meta.trace->sendMs);
    } else {
        w.u8(0);
    }
    auto &bytes = w.bytes();
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    const std::uint32_t crc = crc32(bytes.data(), bytes.size());
    Writer tail;
    tail.u32(crc);
    bytes.insert(bytes.end(), tail.bytes().begin(), tail.bytes().end());
    return std::move(bytes);
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    // Reflected IEEE 802.3 polynomial, bitwise (table-free) form.
    std::uint32_t crc = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        crc ^= data[i];
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

namespace {

std::vector<std::uint8_t>
sealMetricsPayload(MsgType type, const FrameMeta &meta,
                   const MetricsMsg &msg)
{
    Writer p;
    p.u16(msg.tree);
    p.u32(msg.edgeNode);
    p.f64(msg.metrics.constraint());
    p.u16(static_cast<std::uint16_t>(msg.metrics.classes().size()));
    for (const auto &c : msg.metrics.classes()) {
        p.i32(c.priority);
        p.f64(c.capMin);
        p.f64(c.demand);
        p.f64(c.request);
    }
    return seal(type, meta, p.bytes());
}

std::vector<std::uint8_t>
sealBudgetPayload(MsgType type, const FrameMeta &meta,
                  const BudgetMsg &msg)
{
    Writer p;
    p.u16(msg.tree);
    p.u32(msg.edgeNode);
    p.f64(msg.budget);
    return seal(type, meta, p.bytes());
}

std::vector<std::uint8_t>
sealCheckpointPayload(MsgType type, const FrameMeta &meta,
                      const CheckpointMsg &msg)
{
    if (msg.servers.size() > kMaxCheckpointServers) {
        util::fatal("wire: checkpoint with %zu servers exceeds the "
                    "%zu-server bound",
                    msg.servers.size(), kMaxCheckpointServers);
    }
    Writer p;
    p.f64(msg.simNow);
    p.u32(msg.rehomeAckEpoch);
    p.u16(static_cast<std::uint16_t>(msg.servers.size()));
    for (const auto &srv : msg.servers) {
        if (srv.supplies.size() > kMaxCheckpointSupplies) {
            util::fatal("wire: checkpoint server %u with %zu supplies "
                        "exceeds the %zu-supply bound",
                        srv.serverId, srv.supplies.size(),
                        kMaxCheckpointSupplies);
        }
        p.u32(srv.serverId);
        p.u8(static_cast<std::uint8_t>(
            (srv.integratorPrimed ? 0x01 : 0x00)
            | (srv.spoPinned ? 0x02 : 0x00)));
        p.f64(srv.integratorDc);
        p.f64(srv.demandEstimate);
        p.f64(srv.avgThrottle);
        p.u16(static_cast<std::uint16_t>(srv.supplies.size()));
        for (const auto &sup : srv.supplies) {
            p.f64(sup.lastBudget);
            p.f64(sup.share);
            p.f64(sup.avgAc);
        }
    }
    if (p.bytes().size() > kMaxPayloadBytes) {
        util::fatal("wire: checkpoint payload of %zu bytes exceeds the "
                    "%zu-byte frame cap; partition the topology into "
                    "smaller racks",
                    p.bytes().size(), kMaxPayloadBytes);
    }
    return seal(type, meta, p.bytes());
}

std::vector<std::uint8_t>
sealMembershipDeltaPayload(const FrameMeta &meta,
                           const MembershipDeltaMsg &msg)
{
    if (msg.entries.size() > kMaxMembershipEntries) {
        util::fatal("wire: membership delta with %zu entries exceeds "
                    "the %zu-entry bound",
                    msg.entries.size(), kMaxMembershipEntries);
    }
    Writer p;
    p.u32(msg.generation);
    p.u16(static_cast<std::uint16_t>(msg.entries.size()));
    for (const MembershipEntry &entry : msg.entries) {
        p.u16(entry.endpoint);
        p.u8(static_cast<std::uint8_t>(entry.state));
        p.u32(entry.sinceGeneration);
    }
    return seal(MsgType::MembershipDelta, meta, p.bytes());
}

/** Parse a MembershipDelta payload; false on malformation. The count
 *  is validated against the remaining payload before the reserve, so
 *  hostile lengths cannot drive allocation. */
bool
readMembershipDeltaPayload(Reader &p, MembershipDeltaMsg &out)
{
    out.generation = p.u32();
    const std::size_t count = p.u16();
    if (!p.ok() || count > kMaxMembershipEntries)
        return false;
    if (count * kMembershipEntryBytes > p.remaining())
        return false;
    out.entries.reserve(count);
    bool first = true;
    std::uint16_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
        MembershipEntry entry;
        entry.endpoint = p.u16();
        const std::uint8_t state = p.u8();
        entry.sinceGeneration = p.u32();
        if (!p.ok() || state > static_cast<std::uint8_t>(
                           WireUnitState::Left))
            return false;
        // Table invariant: strictly ascending endpoints — one row per
        // unit, and a hostile duplicate cannot shadow an earlier row.
        if (!first && entry.endpoint <= prev)
            return false;
        first = false;
        prev = entry.endpoint;
        entry.state = static_cast<WireUnitState>(state);
        out.entries.push_back(entry);
    }
    return true;
}

bool
readMembershipAckPayload(Reader &p, MembershipAckMsg &out)
{
    out.generation = p.u32();
    out.endpoint = p.u16();
    const std::uint8_t state = p.u8();
    if (!p.ok()
        || state > static_cast<std::uint8_t>(WireUnitState::Left))
        return false;
    out.state = static_cast<WireUnitState>(state);
    return true;
}

/** Parse a Metrics-layout payload into @p out; false on malformation. */
bool
readMetricsPayload(Reader &p, MetricsMsg &out)
{
    out.tree = p.u16();
    out.edgeNode = p.u32();
    const double constraint = p.f64();
    const std::size_t count = p.u16();
    if (count > kMaxClasses)
        return false;
    // A hostile count field must not drive the reserve below: the
    // declared records must actually fit in the remaining payload.
    if (count * kClassBytes > p.remaining())
        return false;
    auto &classes = out.metrics.classes();
    classes.reserve(count);
    bool first = true;
    Priority prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
        ctrl::ClassMetrics c;
        c.priority = p.i32();
        c.capMin = p.f64();
        c.demand = p.f64();
        c.request = p.f64();
        if (!p.ok())
            return false;
        // NodeMetrics invariant: strictly descending priorities.
        if (!first && c.priority >= prev)
            return false;
        first = false;
        prev = c.priority;
        classes.push_back(c);
    }
    out.metrics.setConstraint(constraint);
    return true;
}

/** Parse a Checkpoint-layout payload; false on malformation. Every
 *  count field is validated against the remaining payload before any
 *  reserve, so hostile lengths cannot drive allocation. */
bool
readCheckpointPayload(Reader &p, CheckpointMsg &out)
{
    out.simNow = p.f64();
    out.rehomeAckEpoch = p.u32();
    const std::size_t count = p.u16();
    if (count > kMaxCheckpointServers)
        return false;
    if (count * kCheckpointServerBytes > p.remaining())
        return false;
    out.servers.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        CheckpointServer srv;
        srv.serverId = p.u32();
        const std::uint8_t flags = p.u8();
        if ((flags & ~0x03u) != 0)
            return false;
        srv.integratorPrimed = (flags & 0x01u) != 0;
        srv.spoPinned = (flags & 0x02u) != 0;
        srv.integratorDc = p.f64();
        srv.demandEstimate = p.f64();
        srv.avgThrottle = p.f64();
        const std::size_t supplies = p.u16();
        if (!p.ok() || supplies > kMaxCheckpointSupplies)
            return false;
        if (supplies * kCheckpointSupplyBytes > p.remaining())
            return false;
        srv.supplies.reserve(supplies);
        for (std::size_t s = 0; s < supplies; ++s) {
            CheckpointSupply sup;
            sup.lastBudget = p.f64();
            sup.share = p.f64();
            sup.avgAc = p.f64();
            srv.supplies.push_back(sup);
        }
        if (!p.ok())
            return false;
        out.servers.push_back(std::move(srv));
    }
    return true;
}

} // namespace

std::vector<std::uint8_t>
encodeMetrics(const FrameMeta &meta, const MetricsMsg &msg)
{
    return sealMetricsPayload(MsgType::Metrics, meta, msg);
}

std::vector<std::uint8_t>
encodePinnedSummary(const FrameMeta &meta, const MetricsMsg &msg)
{
    return sealMetricsPayload(MsgType::PinnedSummary, meta, msg);
}

std::vector<std::uint8_t>
encodeSummary(const FrameMeta &meta, const MetricsMsg &msg)
{
    return sealMetricsPayload(MsgType::Summary, meta, msg);
}

std::vector<std::uint8_t>
encodeBudget(const FrameMeta &meta, const BudgetMsg &msg)
{
    return sealBudgetPayload(MsgType::Budget, meta, msg);
}

std::vector<std::uint8_t>
encodeSpoBudget(const FrameMeta &meta, const BudgetMsg &msg)
{
    return sealBudgetPayload(MsgType::SpoBudget, meta, msg);
}

std::vector<std::uint8_t>
encodeSubBudget(const FrameMeta &meta, const BudgetMsg &msg)
{
    return sealBudgetPayload(MsgType::SubBudget, meta, msg);
}

std::vector<std::uint8_t>
encodeCheckpoint(const FrameMeta &meta, const CheckpointMsg &msg)
{
    return sealCheckpointPayload(MsgType::Checkpoint, meta, msg);
}

std::vector<std::uint8_t>
encodeRehome(const FrameMeta &meta, const CheckpointMsg &msg)
{
    return sealCheckpointPayload(MsgType::Rehome, meta, msg);
}

std::vector<std::uint8_t>
encodeHeartbeat(const FrameMeta &meta)
{
    return seal(MsgType::Heartbeat, meta, {});
}

std::vector<std::uint8_t>
encodeMembershipDelta(const FrameMeta &meta,
                      const MembershipDeltaMsg &msg)
{
    return sealMembershipDeltaPayload(meta, msg);
}

std::vector<std::uint8_t>
encodeMembershipAck(const FrameMeta &meta, const MembershipAckMsg &msg)
{
    Writer p;
    p.u32(msg.generation);
    p.u16(msg.endpoint);
    p.u8(static_cast<std::uint8_t>(msg.state));
    return seal(MsgType::MembershipAck, meta, p.bytes());
}

std::optional<Frame>
decodeFrame(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < kHeaderSize + kCrcSize)
        return std::nullopt;
    if (bytes.size() > kMaxFrameBytes)
        return std::nullopt;

    Reader header(bytes.data(), kHeaderSize);
    if (header.u16() != kWireMagic)
        return std::nullopt;
    const std::uint8_t version = header.u8();
    if (version != kWireVersion && version != kWireCompatVersion)
        return std::nullopt;
    const std::uint8_t raw_type = header.u8();

    Frame frame;
    frame.wireVersion = version;
    frame.sender = header.u16();
    frame.epoch = header.u32();
    frame.seq = header.u32();
    // Hostile length fields are rejected here, before the CRC pass and
    // before any payload parsing allocates from them. The trace
    // context is all-or-nothing: any length other than absent (0) or
    // complete (kTraceContextBytes) is malformed.
    const std::size_t payload_size = header.u16();
    const std::size_t ctx_size = header.u8();
    if (payload_size > kMaxPayloadBytes)
        return std::nullopt;
    if (ctx_size != 0 && ctx_size != kTraceContextBytes)
        return std::nullopt;
    if (bytes.size() != kHeaderSize + ctx_size + payload_size + kCrcSize)
        return std::nullopt;

    const std::size_t covered = kHeaderSize + ctx_size + payload_size;
    Reader crc_reader(bytes.data() + covered, kCrcSize);
    if (crc32(bytes.data(), covered) != crc_reader.u32())
        return std::nullopt;

    if (ctx_size == kTraceContextBytes) {
        Reader ctx(bytes.data() + kHeaderSize, ctx_size);
        TraceContext trace;
        trace.traceId = ctx.u16();
        trace.originTier = ctx.u8();
        trace.sendMs = ctx.f64();
        frame.trace = trace;
    }

    Reader p(bytes.data() + kHeaderSize + ctx_size, payload_size);
    switch (raw_type) {
      case static_cast<std::uint8_t>(MsgType::Metrics):
      case static_cast<std::uint8_t>(MsgType::PinnedSummary):
      case static_cast<std::uint8_t>(MsgType::Summary):
        frame.type = static_cast<MsgType>(raw_type);
        if (!readMetricsPayload(p, frame.metrics))
            return std::nullopt;
        break;
      case static_cast<std::uint8_t>(MsgType::Budget):
      case static_cast<std::uint8_t>(MsgType::SpoBudget):
      case static_cast<std::uint8_t>(MsgType::SubBudget):
        frame.type = static_cast<MsgType>(raw_type);
        frame.budget.tree = p.u16();
        frame.budget.edgeNode = p.u32();
        frame.budget.budget = p.f64();
        break;
      case static_cast<std::uint8_t>(MsgType::Checkpoint):
      case static_cast<std::uint8_t>(MsgType::Rehome):
        frame.type = static_cast<MsgType>(raw_type);
        if (!readCheckpointPayload(p, frame.checkpoint))
            return std::nullopt;
        break;
      case static_cast<std::uint8_t>(MsgType::Heartbeat):
        frame.type = MsgType::Heartbeat;
        break;
      case static_cast<std::uint8_t>(MsgType::MembershipDelta):
        // Membership types were introduced with v6: a v5 header
        // carrying one is a forgery or corruption, not legitimate skew.
        if (version < kWireVersion)
            return std::nullopt;
        frame.type = MsgType::MembershipDelta;
        if (!readMembershipDeltaPayload(p, frame.membershipDelta))
            return std::nullopt;
        break;
      case static_cast<std::uint8_t>(MsgType::MembershipAck):
        if (version < kWireVersion)
            return std::nullopt;
        frame.type = MsgType::MembershipAck;
        if (!readMembershipAckPayload(p, frame.membershipAck))
            return std::nullopt;
        break;
      default:
        return std::nullopt;
    }
    if (!p.ok() || p.remaining() != 0)
        return std::nullopt;
    return frame;
}

} // namespace capmaestro::net
