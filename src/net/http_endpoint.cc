#include "net/http_endpoint.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace capmaestro::net {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;
constexpr std::size_t kMaxConnections = 32;

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char *
statusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    default:
        return "Error";
    }
}

} // namespace

HttpEndpoint::~HttpEndpoint() { close(); }

bool
HttpEndpoint::listen(std::uint16_t port)
{
    close();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr))
            != 0
        || ::listen(fd, 16) != 0 || !setNonBlocking(fd)) {
        ::close(fd);
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len)
        != 0) {
        ::close(fd);
        return false;
    }
    listenFd_ = fd;
    port_ = ntohs(bound.sin_port);
    return true;
}

void
HttpEndpoint::handle(std::string path, Handler handler)
{
    for (auto &[p, h] : handlers_) {
        if (p == path) {
            h = std::move(handler);
            return;
        }
    }
    handlers_.emplace_back(std::move(path), std::move(handler));
}

void
HttpEndpoint::close()
{
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    for (Connection &conn : conns_) {
        if (conn.fd >= 0)
            ::close(conn.fd);
    }
    conns_.clear();
    port_ = 0;
}

std::string
HttpEndpoint::renderResponse(const HttpResponse &resp)
{
    std::string out;
    out.reserve(resp.body.size() + 128);
    out += "HTTP/1.0 ";
    out += std::to_string(resp.status);
    out += ' ';
    out += statusText(resp.status);
    out += "\r\nContent-Type: ";
    out += resp.contentType;
    out += "\r\nContent-Length: ";
    out += std::to_string(resp.body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += resp.body;
    return out;
}

HttpResponse
HttpEndpoint::dispatch(const std::string &request_line)
{
    // "GET <path> HTTP/1.x" — anything else is a 400.
    if (request_line.rfind("GET ", 0) != 0)
        return {400, "text/plain; charset=utf-8", "bad request\n"};
    const std::size_t path_end = request_line.find(' ', 4);
    if (path_end == std::string::npos)
        return {400, "text/plain; charset=utf-8", "bad request\n"};
    std::string path = request_line.substr(4, path_end - 4);
    // Scrapers sometimes append a query string; dispatch on the path.
    const std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);
    for (const auto &[p, h] : handlers_) {
        if (p == path)
            return h();
    }
    return {404, "text/plain; charset=utf-8", "not found\n"};
}

void
HttpEndpoint::serviceConnection(Connection &conn)
{
    if (!conn.responding) {
        char buf[2048];
        while (true) {
            const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                conn.in.append(buf, static_cast<std::size_t>(n));
                if (conn.in.size() > kMaxRequestBytes) {
                    ::close(conn.fd);
                    conn.fd = -1;
                    return;
                }
                continue;
            }
            const bool would_block =
                n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
            if (!would_block
                && conn.in.find('\n') == std::string::npos) {
                // Peer closed (or errored) before a full request.
                ::close(conn.fd);
                conn.fd = -1;
                return;
            }
            break;
        }
        const std::size_t eol = conn.in.find("\r\n");
        const std::size_t eol_lf =
            eol == std::string::npos ? conn.in.find('\n') : eol;
        if (eol_lf == std::string::npos)
            return; // request line still incomplete
        std::string line = conn.in.substr(0, eol_lf);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        conn.out = renderResponse(dispatch(line));
        conn.responding = true;
        ++served_;
    }
    while (conn.sent < conn.out.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.out.data() + conn.sent,
                   conn.out.size() - conn.sent, MSG_NOSIGNAL);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // flush resumes on the next poll
        if (n <= 0)
            break; // peer went away; fall through to close
        conn.sent += static_cast<std::size_t>(n);
    }
    ::close(conn.fd);
    conn.fd = -1;
}

std::size_t
HttpEndpoint::poll()
{
    if (listenFd_ < 0)
        return 0;
    const std::uint64_t before = served_;
    while (conns_.size() < kMaxConnections) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            break;
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        Connection conn;
        conn.fd = fd;
        conns_.push_back(std::move(conn));
    }
    for (Connection &conn : conns_)
        serviceConnection(conn);
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Connection &c) {
                                    return c.fd < 0;
                                }),
                 conns_.end());
    return static_cast<std::size_t>(served_ - before);
}

} // namespace capmaestro::net
