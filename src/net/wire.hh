/**
 * @file
 * Binary wire codec for the distributed control protocol (paper §5,
 * §4.5).
 *
 * The workers of the control tree exchange eleven message types:
 * per-priority metric summaries flowing upstream, budgets flowing
 * downstream, heartbeats for worker-failure detection, a second
 * round-trip of pinned-consumption summaries (upstream) and SPO
 * budgets (downstream) when the stranded-power optimization (§4.4)
 * fires, the failover pair — plant-state Checkpoints streamed upstream
 * alongside the heartbeat every period, and a Rehome frame (the
 * parent's stored checkpoint) sent downstream to replay state into a
 * restarted rack worker — and the aggregator pair: a Summary (the
 * merged per-class metrics of an aggregator's whole subtree, Metrics
 * layout) flowing from a mid-tier aggregator to its parent, answered
 * by a SubBudget (Budget layout) splitting the parent's grant back
 * down. The SPO, failover, and aggregator pairs reuse payload layouts
 * under distinct type codes so a retransmitted leaf-hop frame can
 * never masquerade as an aggregator-hop one (or vice versa).
 * Every message travels in one self-contained frame:
 *
 *   offset  size  field
 *   ------  ----  --------------------------------------------------
 *        0     2  magic (0xCA9E, little-endian)
 *        2     1  version (kWireVersion)
 *        3     1  message type (MsgType)
 *        4     2  sender id (rack index, or kRoomSender for the room)
 *        6     4  epoch: control-period counter, detects orphans
 *       10     4  sequence number (per sender, monotonically rising)
 *       14     2  payload length in bytes
 *       16     1  trace-context length: 0 or kTraceContextBytes (v5)
 *       17     C  trace context (absent, or traceId u16 | origin
 *                 tier u8 | send timestamp f64 ms)
 *     17+C     N  payload (type-specific, see below)
 *   17+C+N     4  CRC-32 (IEEE) over bytes [0, 17+C+N)
 *
 * All integers are little-endian; watt values are IEEE-754 doubles
 * carried as their 64-bit patterns, so encode/decode round-trips are
 * bit-exact. The CRC detects every single-bit flip and all bursts
 * shorter than 32 bits; decodeFrame() rejects (returns nullopt for)
 * any frame that is truncated, oversized, version-skewed, corrupt, or
 * structurally invalid — it never crashes on hostile input.
 *
 * Payloads:
 *   Metrics  : tree u16 | edge node u32 | constraint f64 | count u16 |
 *              count x (priority i32, capMin f64, demand f64,
 *              request f64), priorities strictly descending
 *   Budget   : tree u16 | edge node u32 | budget f64
 *   Heartbeat: empty (the header carries everything)
 *   PinnedSummary: same layout as Metrics (edge metrics recomputed
 *              with §4.4 pinned leaves)
 *   SpoBudget: same layout as Budget (second-pass edge budget)
 *   Checkpoint: simNow f64 | rehomeAckEpoch u32 | count u16 |
 *              count x (serverId u32, flags u8 [bit0 integrator
 *              primed, bit1 SPO-pinned], integratorDc f64,
 *              demand f64, avgThrottle f64, supplyCount u16,
 *              supplyCount x (lastBudget f64, share f64, avgAc f64))
 *   Rehome   : same layout as Checkpoint (the room replays its stored
 *              copy into a restarted rack)
 *   MembershipDelta: generation u32 | count u16 | count x (endpoint
 *              u16, state u8 [0 joining, 1 live, 2 draining, 3 left],
 *              sinceGeneration u32) — the root's full membership-table
 *              snapshot (v6; rejected under a v5 header)
 *   MembershipAck: generation u32 | endpoint u16 | state u8 — a unit's
 *              adoption receipt (v6; rejected under a v5 header)
 */

#ifndef CAPMAESTRO_NET_WIRE_HH
#define CAPMAESTRO_NET_WIRE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "control/metrics.hh"
#include "util/units.hh"

namespace capmaestro::net {

/** Frame magic value. */
constexpr std::uint16_t kWireMagic = 0xCA9E;

/** Current wire-format version (2 added the §4.4 SPO message pair;
 *  3 added the Checkpoint/Rehome failover pair; 4 added the
 *  Summary/SubBudget aggregator pair for deep control trees; 5 added
 *  the optional per-hop trace context to the header; 6 added the
 *  MembershipDelta/MembershipAck elasticity pair).
 *  decodeFrame() accepts the current version and the one before it
 *  (kWireCompatVersion), so a rolling upgrade with v5/v6 frame skew is
 *  a supported steady state — v5 frames carry no membership types, and
 *  a membership type under a v5 header is rejected as malformed. Any
 *  other version degrades to the §4.5 conservative floors rather than
 *  misinterpreting frames. */
constexpr std::uint8_t kWireVersion = 6;

/** Oldest wire version decodeFrame() still accepts (rolling-upgrade
 *  skew window: exactly one version back). */
constexpr std::uint8_t kWireCompatVersion = kWireVersion - 1;

/** Sender id the room worker uses (racks use their rack index). */
constexpr std::uint16_t kRoomSender = 0xFFFF;

/** Fixed frame header size in bytes (before the optional trace
 *  context, payload, and CRC). */
constexpr std::size_t kHeaderSize = 17;

/** Encoded size of a present trace context (traceId u16 + origin
 *  tier u8 + send timestamp f64). The header's trace-context length
 *  byte may only ever hold 0 or this value; decodeFrame() rejects
 *  every other length. */
constexpr std::size_t kTraceContextBytes = 2 + 1 + 8;

/** Trailing checksum size in bytes. */
constexpr std::size_t kCrcSize = 4;

/**
 * Hard cap on a full encoded frame (header + payload + CRC). Every
 * legitimate message fits with room to spare (the largest — a Metrics
 * payload at the 1024-class sanity bound — is under 29 KiB), and the
 * cap keeps one frame inside a single unfragmented-on-loopback UDP
 * datagram. decodeFrame() rejects larger buffers, and rejects any
 * declared payload length over kMaxPayloadBytes before allocating;
 * UdpTransport refuses to send or deliver frames over the cap.
 */
constexpr std::size_t kMaxFrameBytes = 32768;

/** Largest payload length a frame may declare. */
constexpr std::size_t kMaxPayloadBytes =
    kMaxFrameBytes - kHeaderSize - kCrcSize;

/** Message types carried on the wire. */
enum class MsgType : std::uint8_t {
    Metrics = 1,
    Budget = 2,
    Heartbeat = 3,
    /** §4.4 second-round pinned-consumption summary (rack -> room). */
    PinnedSummary = 4,
    /** §4.4 second-round budget (room -> rack). */
    SpoBudget = 5,
    /** Plant-state checkpoint (rack -> room, piggybacked upstream). */
    Checkpoint = 6,
    /** Checkpoint replay into a restarted rack (room -> rack). */
    Rehome = 7,
    /** Merged subtree metrics (aggregator -> parent, Metrics layout).
     *  tree/edgeNode name the aggregator's top station. */
    Summary = 8,
    /** Budget for an aggregator's top station (parent -> aggregator,
     *  Budget layout). */
    SubBudget = 9,
    /** Versioned membership-table snapshot (root -> every unit, v6).
     *  Full-table semantics: applying any delta with a generation at
     *  or ahead of the receiver's yields a consistent view, so a unit
     *  that missed one broadcast converges on the next. */
    MembershipDelta = 10,
    /** Membership acknowledgement (unit -> root, v6): the highest
     *  generation the unit has adopted plus its own view of its
     *  state — the root's commit gate for the two-phase adopt. */
    MembershipAck = 11,
};

/** Per-priority metric summary for one edge controller (upstream). */
struct MetricsMsg
{
    std::uint16_t tree = 0;
    std::uint32_t edgeNode = 0;
    ctrl::NodeMetrics metrics;
};

/** Budget for one edge controller (downstream). */
struct BudgetMsg
{
    std::uint16_t tree = 0;
    std::uint32_t edgeNode = 0;
    Watts budget = 0.0;
};

/** Most servers one checkpoint may carry (sanity bound; a rack hosts
 *  tens of servers, not hundreds). */
constexpr std::size_t kMaxCheckpointServers = 256;

/** Most supplies one checkpointed server may carry. */
constexpr std::size_t kMaxCheckpointSupplies = 8;

/** Per-supply slice of one server's checkpoint record. */
struct CheckpointSupply
{
    /** Last AC budget applied to this supply's PI input. */
    Watts lastBudget = 0.0;
    /** Measured load split r-hat. */
    Fraction share = 0.0;
    /** Average AC power over the last closed period. */
    Watts avgAc = 0.0;
};

/** One server's recoverable plant/controller state. */
struct CheckpointServer
{
    std::uint32_t serverId = 0;
    /** Whether the capping integrator has been primed. */
    bool integratorPrimed = false;
    /** Whether any of this server's leaves are §4.4 SPO-pinned. */
    bool spoPinned = false;
    /** Capping integrator value (the actuated DC cap when primed). */
    Watts integratorDc = 0.0;
    /** Last-period demand estimate. */
    Watts demandEstimate = 0.0;
    /** Last-period average throttle level. */
    double avgThrottle = 0.0;
    std::vector<CheckpointSupply> supplies;
};

/**
 * Plant-state checkpoint for one rack worker (upstream every period;
 * replayed downstream as a Rehome frame after a worker restart).
 */
struct CheckpointMsg
{
    /** The rack's simulated plant clock, seconds. */
    double simNow = 0.0;
    /**
     * Epoch of the last Rehome frame this rack *instance* processed
     * (replayed or declined), 0 before any. The room treats an ack at
     * or after its own rehome epoch as re-homing complete.
     */
    std::uint32_t rehomeAckEpoch = 0;
    std::vector<CheckpointServer> servers;
};

/** Most units one MembershipDelta may carry (endpoints are u16; the
 *  bound keeps the largest table under the frame cap). */
constexpr std::size_t kMaxMembershipEntries = 4096;

/** Per-unit membership state on the wire (see membership/table.hh for
 *  the state machine; the codec only validates the range). */
enum class WireUnitState : std::uint8_t {
    Joining = 0,
    Live = 1,
    Draining = 2,
    Left = 3,
};

/** One unit's row in a membership-table snapshot. */
struct MembershipEntry
{
    /** The unit's endpoint in the shared peer table. */
    std::uint16_t endpoint = 0;
    WireUnitState state = WireUnitState::Live;
    /** Generation at which the unit entered this state. */
    std::uint32_t sinceGeneration = 0;
};

/**
 * Versioned membership-table snapshot (root -> every unit). Despite
 * the name, the payload is the full table — full-snapshot semantics
 * make loss-tolerance trivial (any later delta supersedes a missed
 * one) and keep the decode path free of ordering state.
 */
struct MembershipDeltaMsg
{
    /** The table's generation (starts at 1, bumped per commit). */
    std::uint32_t generation = 0;
    std::vector<MembershipEntry> entries;
};

/** Membership acknowledgement (unit -> root). */
struct MembershipAckMsg
{
    /** Highest generation the unit has adopted. */
    std::uint32_t generation = 0;
    /** The acking unit's endpoint. */
    std::uint16_t endpoint = 0;
    /** The unit's own view of its state at that generation. */
    WireUnitState state = WireUnitState::Live;
};

/**
 * Optional per-hop trace context carried in the v5 header. Purely
 * observational: the control protocol never reads it, so a deployment
 * with tracing on stays bit-identical to one with it off.
 */
struct TraceContext
{
    /** Trace id shared by every hop of one control period (the low 16
     *  bits of the epoch, so every process derives it identically). */
    std::uint16_t traceId = 0;
    /** Tier of the sending role (0 = leaf, rising toward the root;
     *  0xFF = the 2-level room). */
    std::uint8_t originTier = 0;
    /** Sender's clock at send time, milliseconds. Wall-clock unix time
     *  on UDP deployments, the shared virtual clock on SimTransport —
     *  either way the receiver subtracts it from the same clock domain
     *  for per-hop latency. */
    double sendMs = 0.0;
};

/** A decoded frame: header fields plus exactly one payload. */
struct Frame
{
    MsgType type = MsgType::Heartbeat;
    std::uint16_t sender = 0;
    std::uint32_t epoch = 0;
    std::uint32_t seq = 0;
    /** Valid iff type == Metrics, PinnedSummary, or Summary. */
    MetricsMsg metrics;
    /** Valid iff type == Budget, SpoBudget, or SubBudget. */
    BudgetMsg budget;
    /** Valid iff type == Checkpoint or Rehome. */
    CheckpointMsg checkpoint;
    /** Valid iff type == MembershipDelta. */
    MembershipDeltaMsg membershipDelta;
    /** Valid iff type == MembershipAck. */
    MembershipAckMsg membershipAck;
    /** Trace context, when the sender stamped one. */
    std::optional<TraceContext> trace;
    /** Wire version the frame was encoded under (kWireVersion or
     *  kWireCompatVersion — anything else never decodes). */
    std::uint8_t wireVersion = kWireVersion;
};

/** Header fields common to every encode call. */
struct FrameMeta
{
    FrameMeta() = default;

    FrameMeta(std::uint16_t sender_, std::uint32_t epoch_,
              std::uint32_t seq_,
              std::optional<TraceContext> trace_ = std::nullopt)
        : sender(sender_), epoch(epoch_), seq(seq_),
          trace(std::move(trace_))
    {
    }

    std::uint16_t sender = 0;
    std::uint32_t epoch = 0;
    std::uint32_t seq = 0;
    /** Stamped into the header when present (tracing enabled). */
    std::optional<TraceContext> trace;
    /**
     * Version byte stamped into the header. Defaults to the current
     * version; a not-yet-upgraded worker in a rolling upgrade stamps
     * kWireCompatVersion instead (see WorkerRuntime::setWireVersion).
     * Membership types cannot be encoded under the compat version.
     */
    std::uint8_t wireVersion = kWireVersion;
};

/** Encode a metrics message into a framed byte vector. */
std::vector<std::uint8_t> encodeMetrics(const FrameMeta &meta,
                                        const MetricsMsg &msg);

/** Encode a budget message into a framed byte vector. */
std::vector<std::uint8_t> encodeBudget(const FrameMeta &meta,
                                       const BudgetMsg &msg);

/** Encode a heartbeat frame. */
std::vector<std::uint8_t> encodeHeartbeat(const FrameMeta &meta);

/** Encode a §4.4 pinned-consumption summary (Metrics payload layout). */
std::vector<std::uint8_t> encodePinnedSummary(const FrameMeta &meta,
                                              const MetricsMsg &msg);

/** Encode a §4.4 second-pass budget (Budget payload layout). */
std::vector<std::uint8_t> encodeSpoBudget(const FrameMeta &meta,
                                          const BudgetMsg &msg);

/**
 * Encode a plant-state checkpoint (rack -> room). fatal()s when the
 * message exceeds the kMaxCheckpointServers / kMaxCheckpointSupplies
 * sanity bounds — a legitimate rack never does.
 */
std::vector<std::uint8_t> encodeCheckpoint(const FrameMeta &meta,
                                           const CheckpointMsg &msg);

/** Encode a checkpoint replay (room -> rack, Checkpoint layout). */
std::vector<std::uint8_t> encodeRehome(const FrameMeta &meta,
                                       const CheckpointMsg &msg);

/** Encode a merged subtree summary (aggregator -> parent, Metrics
 *  payload layout; tree/edgeNode name the aggregator's top station). */
std::vector<std::uint8_t> encodeSummary(const FrameMeta &meta,
                                        const MetricsMsg &msg);

/** Encode an aggregator-station budget (parent -> aggregator, Budget
 *  payload layout). */
std::vector<std::uint8_t> encodeSubBudget(const FrameMeta &meta,
                                          const BudgetMsg &msg);

/**
 * Encode a membership-table snapshot (root -> every unit). fatal()s
 * when the table exceeds the kMaxMembershipEntries sanity bound or
 * when meta stamps a pre-v6 wire version — membership types do not
 * exist before v6.
 */
std::vector<std::uint8_t>
encodeMembershipDelta(const FrameMeta &meta,
                      const MembershipDeltaMsg &msg);

/** Encode a membership acknowledgement (unit -> root, v6 only). */
std::vector<std::uint8_t>
encodeMembershipAck(const FrameMeta &meta, const MembershipAckMsg &msg);

/**
 * Decode one frame. Returns nullopt on any malformation (short buffer,
 * bad magic/version/type, length mismatch, CRC failure, ill-formed
 * payload); never throws or crashes on arbitrary bytes.
 */
std::optional<Frame> decodeFrame(const std::vector<std::uint8_t> &bytes);

/** CRC-32 (IEEE 802.3, reflected) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

} // namespace capmaestro::net

#endif // CAPMAESTRO_NET_WIRE_HH
