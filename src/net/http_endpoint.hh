/**
 * @file
 * Minimal non-blocking HTTP scrape endpoint for worker processes.
 *
 * An HttpEndpoint is a single listening TCP socket plus a handful of
 * per-connection buffers, serviced entirely by poll() calls made from
 * an existing event loop — the WorkerHost drains it once per poll
 * slice, the wall-paced WorkerRuntime once per sleep slice. There are
 * no threads, no blocking calls, and no work at all when the endpoint
 * was never opened, so the control-plane hot path pays nothing for the
 * observability plane being compiled in.
 *
 * The protocol support is deliberately tiny: GET requests,
 * HTTP/1.0-style one-response-per-connection ("Connection: close"),
 * exact-path handler dispatch, 404 for unknown paths and 400 for
 * anything that is not a well-formed GET. That is all a Prometheus
 * scraper or capmaestro_top needs. Requests are capped at 8 KiB and
 * concurrent connections at 32; beyond either bound the connection is
 * dropped — a scrape endpoint's failure mode is a missed sample, never
 * back-pressure on the control plane.
 */

#ifndef CAPMAESTRO_NET_HTTP_ENDPOINT_HH
#define CAPMAESTRO_NET_HTTP_ENDPOINT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace capmaestro::net {

/** One HTTP response: status is implied 200 unless set. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/** Non-blocking scrape endpoint (see file comment for the contract). */
class HttpEndpoint
{
  public:
    /** Handler for one exact request path. */
    using Handler = std::function<HttpResponse()>;

    HttpEndpoint() = default;
    ~HttpEndpoint();

    HttpEndpoint(const HttpEndpoint &) = delete;
    HttpEndpoint &operator=(const HttpEndpoint &) = delete;

    /**
     * Bind and listen on 127.0.0.1:@p port (0 = ephemeral). Returns
     * false (leaving the endpoint closed) when the bind fails; the
     * caller decides whether that is fatal.
     */
    bool listen(std::uint16_t port);

    /** Bound port (0 when not listening). */
    std::uint16_t port() const { return port_; }

    /** True once listen() succeeded (until close()). */
    bool listening() const { return listenFd_ >= 0; }

    /** Register @p handler for exact path @p path (e.g. "/metrics"). */
    void handle(std::string path, Handler handler);

    /**
     * Service the socket: accept pending connections, read request
     * bytes, dispatch complete requests, flush response bytes. Every
     * operation is non-blocking; one call does a bounded amount of
     * work. Returns the number of requests answered. No-op (and
     * zero-cost) when not listening.
     */
    std::size_t poll();

    /** Close the listener and every connection. */
    void close();

    /** Requests answered since listen() (all statuses). */
    std::uint64_t requestsServed() const { return served_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::string in;
        std::string out;
        std::size_t sent = 0;
        bool responding = false;
    };

    void serviceConnection(Connection &conn);
    HttpResponse dispatch(const std::string &request_line);
    static std::string renderResponse(const HttpResponse &resp);

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::uint64_t served_ = 0;
    std::vector<std::pair<std::string, Handler>> handlers_;
    std::vector<Connection> conns_;
};

} // namespace capmaestro::net

#endif // CAPMAESTRO_NET_HTTP_ENDPOINT_HH
