#include "net/udp_transport.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/wire.hh"
#include "util/logging.hh"

namespace capmaestro::net {

namespace {

double
monotonicMs()
{
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double, std::milli>(now).count();
}

sockaddr_in
toSockaddr(const UdpPeer &peer)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(peer.port);
    if (inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
        util::fatal("udp: '%s' is not a valid IPv4 address",
                    peer.host.c_str());
    }
    return addr;
}

} // namespace

UdpConfig
UdpConfig::loopback(std::uint32_t endpoints)
{
    UdpConfig config;
    for (std::uint32_t ep = 0; ep < endpoints; ++ep) {
        config.peers[ep] = UdpPeer{"127.0.0.1", 0};
        config.local.push_back(ep);
    }
    return config;
}

UdpTransport::UdpTransport(UdpConfig config)
    : config_(std::move(config)), originMs_(monotonicMs())
{
    for (const Endpoint ep : config_.local) {
        const auto peer = config_.peers.find(ep);
        if (peer == config_.peers.end())
            util::fatal("udp: local endpoint %u missing from peer table", ep);

        const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
        if (fd < 0) {
            util::fatal("udp: socket() failed for endpoint %u: %s", ep,
                        std::strerror(errno));
        }
        const int flags = ::fcntl(fd, F_GETFL, 0);
        if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
            util::fatal("udp: cannot make endpoint %u non-blocking: %s", ep,
                        std::strerror(errno));
        }
        if (config_.bufferBytes > 0) {
            // Best effort; the kernel clamps to net.core.{r,w}mem_max
            // and the protocol treats any overflow as datagram loss.
            (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF,
                               &config_.bufferBytes,
                               sizeof(config_.bufferBytes));
            (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                               &config_.bufferBytes,
                               sizeof(config_.bufferBytes));
        }

        sockaddr_in addr = toSockaddr(peer->second);
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            util::fatal("udp: bind %s:%u failed for endpoint %u: %s",
                        peer->second.host.c_str(), peer->second.port, ep,
                        std::strerror(errno));
        }

        // Resolve an ephemeral bind so boundPort() and same-process
        // peers see the real port.
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) <
            0) {
            util::fatal("udp: getsockname failed for endpoint %u: %s", ep,
                        std::strerror(errno));
        }
        config_.peers[ep].port = ntohs(bound.sin_port);

        sockets_[ep] = fd;
    }

#ifdef __linux__
    // Readiness instance for drain(): registered once, so the per-call
    // cost is one epoll_wait plus work on ready sockets only.
    epollFd_ = ::epoll_create1(0);
    if (epollFd_ >= 0) {
        for (const auto &[ep, fd] : sockets_) {
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.u32 = ep;
            if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
                ::close(epollFd_);
                epollFd_ = -1;
                break;
            }
        }
    }
#endif
}

UdpTransport::~UdpTransport()
{
    for (const auto &[ep, fd] : sockets_)
        ::close(fd);
    if (epollFd_ >= 0)
        ::close(epollFd_);
}

void
UdpTransport::setTelemetry(telemetry::Registry *registry)
{
    registry_ = registry;
    if (registry_ == nullptr) {
        mSent_ = {};
        mDropped_ = {};
        mDelivered_ = {};
        mBytes_ = {};
        mBytesDelivered_ = {};
        return;
    }
    mSent_ = registry_->counter("capmaestro_transport_frames_sent_total",
                                {}, "Frames submitted to the transport");
    mDropped_ =
        registry_->counter("capmaestro_transport_frames_dropped_total", {},
                           "Frames refused locally (oversize, send errors)");
    mDelivered_ =
        registry_->counter("capmaestro_transport_frames_delivered_total",
                           {}, "Frames handed to poll()");
    mBytes_ = registry_->counter("capmaestro_transport_bytes_total", {},
                                 "Payload bytes submitted");
    mBytesDelivered_ =
        registry_->counter("capmaestro_transport_bytes_delivered_total",
                           {}, "Payload bytes handed to poll()");
}

int
UdpTransport::fdFor(Endpoint ep) const
{
    const auto it = sockets_.find(ep);
    if (it == sockets_.end())
        util::panic("udp: endpoint %u has no local socket", ep);
    return it->second;
}

std::uint16_t
UdpTransport::boundPort(Endpoint ep) const
{
    fdFor(ep); // asserts locality
    return config_.peers.at(ep).port;
}

void
UdpTransport::setPeer(Endpoint ep, const UdpPeer &peer)
{
    config_.peers[ep] = peer;
}

void
UdpTransport::send(Endpoint from, Endpoint to,
                   std::vector<std::uint8_t> frame)
{
    ++stats_.framesSent;
    stats_.bytesSent += frame.size();
    mSent_.inc();
    mBytes_.inc(static_cast<double>(frame.size()));

    const auto peer = config_.peers.find(to);
    if (frame.size() > kMaxFrameBytes || peer == config_.peers.end() ||
        peer->second.port == 0) {
        ++stats_.framesDropped;
        mDropped_.inc();
        return;
    }

    // Any bound local socket can carry outbound traffic; sending from
    // the frame's own endpoint keeps source addresses honest when
    // multiple endpoints live in this process.
    const int fd = sockets_.count(from) != 0 ? sockets_.at(from)
                                             : sockets_.begin()->second;
    const sockaddr_in addr = toSockaddr(peer->second);
    const ssize_t sent =
        ::sendto(fd, frame.data(), frame.size(), 0,
                 reinterpret_cast<const sockaddr *>(&addr), sizeof(addr));
    if (sent < 0 || static_cast<std::size_t>(sent) != frame.size()) {
        // EAGAIN / ENOBUFS / ECONNREFUSED and friends: plain datagram
        // loss as far as the protocol is concerned.
        ++stats_.framesDropped;
        mDropped_.inc();
    }
}

std::vector<std::vector<std::uint8_t>>
UdpTransport::poll(Endpoint to)
{
    return drainFd(to, fdFor(to));
}

std::vector<Transport::Delivery>
UdpTransport::drain(const std::vector<Endpoint> &locals)
{
#ifdef __linux__
    if (epollFd_ >= 0) {
        std::vector<Endpoint> wanted(locals);
        std::sort(wanted.begin(), wanted.end());
        std::vector<Delivery> out;
        epoll_event events[64];
        // Level-triggered and each ready socket is drained completely,
        // so one sweep over at most 64 ready fds at a time suffices.
        for (;;) {
            const int n = ::epoll_wait(epollFd_, events, 64, 0);
            if (n <= 0)
                break;
            std::size_t drained = 0;
            for (int i = 0; i < n; ++i) {
                const Endpoint ep = events[i].data.u32;
                if (!std::binary_search(wanted.begin(), wanted.end(),
                                        ep)) {
                    continue;
                }
                ++drained;
                for (auto &frame : drainFd(ep, fdFor(ep)))
                    out.push_back({ep, std::move(frame)});
            }
            // A full batch may hide more ready sockets; sweep again —
            // but only if progress was made (sockets outside @p locals
            // stay ready and must not spin the loop).
            if (n < 64 || drained == 0)
                break;
        }
        return out;
    }
#endif
    return Transport::drain(locals);
}

std::vector<std::vector<std::uint8_t>>
UdpTransport::drainFd(Endpoint to, int fd)
{
    std::vector<std::vector<std::uint8_t>> out;

    // One spare byte past the cap distinguishes an exactly-cap-sized
    // datagram from a truncated oversized one.
    std::uint8_t buf[kMaxFrameBytes + 1];
    std::size_t bytes = 0;
    for (;;) {
        const ssize_t n = ::recvfrom(fd, buf, sizeof(buf), 0, nullptr,
                                     nullptr);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                break;
            util::warn("udp: recvfrom failed on endpoint %u: %s", to,
                       std::strerror(errno));
            break;
        }
        if (static_cast<std::size_t>(n) > kMaxFrameBytes) {
            ++stats_.framesDropped;
            mDropped_.inc();
            continue;
        }
        bytes += static_cast<std::size_t>(n);
        out.emplace_back(buf, buf + n);
        ++stats_.framesDelivered;
    }
    stats_.bytesDelivered += bytes;
    if (registry_ != nullptr && !out.empty()) {
        mDelivered_.inc(static_cast<double>(out.size()));
        mBytesDelivered_.inc(static_cast<double>(bytes));
    }
    return out;
}

double
UdpTransport::nowMs() const
{
    return monotonicMs() - originMs_;
}

void
UdpTransport::advanceTo(double ms)
{
    const double delta = ms - nowMs();
    if (delta > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(delta));
}

void
UdpTransport::advanceBy(double ms)
{
    if (ms > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double,
                                                          std::milli>(ms));
}

} // namespace capmaestro::net
