/**
 * @file
 * Real-socket Transport backend: frames travel through non-blocking
 * UDP sockets and time is the monotonic wall clock.
 *
 * The endpoint abstraction is unchanged from SimTransport — small
 * integers, rack workers 0..N-1 and the room worker N — but each
 * endpoint now maps to a UDP address through a peer table supplied in
 * the config. Endpoints listed in UdpConfig::local get a socket bound
 * in this process (a single-process loopback run binds all of them; a
 * capmaestro_worker daemon binds exactly one). poll() drains the bound
 * socket completely, so a burst of retransmissions never wedges in the
 * kernel buffer, and refuses datagrams over wire::kMaxFrameBytes — a
 * hostile or corrupt oversized datagram is counted and dropped before
 * any decoding happens downstream.
 *
 * The clock is CLOCK_MONOTONIC relative to the transport's creation,
 * reported in milliseconds like the sim clock; advanceTo()/advanceBy()
 * sleep the calling thread, which is what turns the protocol driver's
 * deadline schedule into real pacing. Unlike SimTransport there is no
 * fault injection — loss, duplication, and reordering come from the
 * actual network (essentially none on loopback), and the §4.5 protocol
 * tolerates whatever occurs.
 */

#ifndef CAPMAESTRO_NET_UDP_TRANSPORT_HH
#define CAPMAESTRO_NET_UDP_TRANSPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/transport.hh"

namespace capmaestro::net {

/** One row of the endpoint -> UDP address peer table. */
struct UdpPeer
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

/** Socket layout for a UdpTransport. */
struct UdpConfig
{
    /**
     * Address of every endpoint in the deployment, local or not.
     * Port 0 on a *local* endpoint binds an ephemeral port (useful for
     * tests; read it back with boundPort() and advertise via setPeer()
     * on the other side).
     */
    std::map<Transport::Endpoint, UdpPeer> peers;

    /** Endpoints whose sockets this process binds and drains. */
    std::vector<Transport::Endpoint> local;

    /**
     * SO_RCVBUF/SO_SNDBUF request per socket, bytes (0 = kernel
     * default). Deep-tree hosts widen this so a wide fan-in socket
     * survives a whole period burst while its process is descheduled;
     * the kernel clamps the request to net.core.{r,w}mem_max.
     */
    int bufferBytes = 0;

    /**
     * All-endpoints-in-this-process layout for endpoints 0..n-1 on
     * 127.0.0.1 with ephemeral ports: the single-process loopback mode
     * of capmaestro_run --transport=udp.
     */
    static UdpConfig loopback(std::uint32_t endpoints);
};

/** Transport over non-blocking UDP sockets and the monotonic clock. */
class UdpTransport : public Transport
{
  public:
    /**
     * Opens and binds one non-blocking socket per endpoint listed in
     * @p config.local. fatal()s on socket/bind failure or on a local
     * endpoint missing from the peer table.
     */
    explicit UdpTransport(UdpConfig config);

    ~UdpTransport() override;

    UdpTransport(const UdpTransport &) = delete;
    UdpTransport &operator=(const UdpTransport &) = delete;

    /**
     * Transmit @p frame to the peer-table address of @p to. Frames over
     * wire::kMaxFrameBytes are counted as dropped, not sent. A full
     * socket buffer (EAGAIN) or any other transient send failure also
     * counts the frame dropped — UDP semantics, the protocol retries.
     */
    void send(Endpoint from, Endpoint to,
              std::vector<std::uint8_t> frame) override;

    /**
     * Drain every datagram currently readable on @p to's socket (which
     * must be local). Oversized datagrams are dropped and counted.
     */
    std::vector<std::vector<std::uint8_t>> poll(Endpoint to) override;

    /**
     * Event-loop drain: one epoll sweep over the local sockets (Linux;
     * the generic per-endpoint walk elsewhere), so a host process with
     * thousands of endpoints pays per *ready* socket, not per socket.
     * Endpoints in @p locals must all be local to this transport.
     */
    std::vector<Delivery>
    drain(const std::vector<Endpoint> &locals) override;

    /** Sleep until the monotonic clock reaches @p ms (no-op if past). */
    void advanceTo(double ms) override;

    /** Sleep for @p ms. */
    void advanceBy(double ms) override;

    /** Monotonic milliseconds since this transport was constructed. */
    double nowMs() const override;

    /** Kernel-resident queues are invisible; always 0. */
    std::size_t inFlight() const override { return 0; }

    const TransportStats &stats() const override { return stats_; }

    void setTelemetry(telemetry::Registry *registry) override;

    /** Port actually bound for local endpoint @p ep (resolves port 0). */
    std::uint16_t boundPort(Endpoint ep) const;

    /**
     * Update the peer-table address of @p ep — how tests advertise
     * ephemeral ports between transports after construction.
     */
    void setPeer(Endpoint ep, const UdpPeer &peer);

  private:
    int fdFor(Endpoint ep) const;
    /** Drain one readable socket completely (the poll() body). */
    std::vector<std::vector<std::uint8_t>> drainFd(Endpoint to, int fd);

    UdpConfig config_;
    /** Local endpoint -> bound socket fd. */
    std::map<Endpoint, int> sockets_;
    /** Readiness instance over the local sockets (-1 off Linux). */
    int epollFd_ = -1;
    TransportStats stats_;
    /** CLOCK_MONOTONIC at construction; nowMs() is measured from it. */
    double originMs_ = 0.0;

    telemetry::Registry *registry_ = nullptr;
    telemetry::Counter mSent_;
    telemetry::Counter mDropped_;
    telemetry::Counter mDelivered_;
    telemetry::Counter mBytes_;
    telemetry::Counter mBytesDelivered_;
};

} // namespace capmaestro::net

#endif // CAPMAESTRO_NET_UDP_TRANSPORT_HH
