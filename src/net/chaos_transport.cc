#include "net/chaos_transport.hh"

#include "net/wire.hh"

namespace capmaestro::net {

ChaosTransport::ChaosTransport(Transport &inner, Endpoint room_endpoint)
    : inner_(inner), roomEndpoint_(room_endpoint)
{
}

ChaosTransport::Link
ChaosTransport::normalize(Endpoint a, Endpoint b)
{
    return a < b ? Link{a, b} : Link{b, a};
}

void
ChaosTransport::setPartition(Endpoint a, Endpoint b, bool blocked)
{
    if (blocked)
        partitions_.insert(normalize(a, b));
    else
        partitions_.erase(normalize(a, b));
}

void
ChaosTransport::isolate(Endpoint e, Endpoint endpoints, bool blocked)
{
    for (Endpoint other = 0; other < endpoints; ++other) {
        if (other != e)
            setPartition(e, other, blocked);
    }
}

void
ChaosTransport::heal()
{
    partitions_.clear();
}

bool
ChaosTransport::linkBlocked(Endpoint a, Endpoint b) const
{
    return partitions_.count(normalize(a, b)) != 0;
}

std::optional<Transport::Endpoint>
ChaosTransport::senderOf(const std::vector<std::uint8_t> &frame,
                         Endpoint room_endpoint)
{
    // Header prefix: magic u16 LE | version u8 | type u8 | sender u16.
    if (frame.size() < 6)
        return std::nullopt;
    const std::uint16_t magic = static_cast<std::uint16_t>(
        frame[0] | (static_cast<std::uint16_t>(frame[1]) << 8));
    if (magic != kWireMagic)
        return std::nullopt;
    const std::uint16_t sender = static_cast<std::uint16_t>(
        frame[4] | (static_cast<std::uint16_t>(frame[5]) << 8));
    if (sender == kRoomSender)
        return room_endpoint;
    return static_cast<Endpoint>(sender);
}

void
ChaosTransport::send(Endpoint from, Endpoint to,
                     std::vector<std::uint8_t> frame)
{
    if (linkBlocked(from, to)) {
        ++blocked_;
        return;
    }
    inner_.send(from, to, std::move(frame));
}

std::vector<std::vector<std::uint8_t>>
ChaosTransport::poll(Endpoint to)
{
    auto frames = inner_.poll(to);
    if (partitions_.empty())
        return frames;
    std::vector<std::vector<std::uint8_t>> kept;
    kept.reserve(frames.size());
    for (auto &frame : frames) {
        const auto sender = senderOf(frame, roomEndpoint_);
        if (sender.has_value() && linkBlocked(*sender, to)) {
            ++blocked_;
            continue;
        }
        kept.push_back(std::move(frame));
    }
    return kept;
}

} // namespace capmaestro::net
