/**
 * @file
 * Tunables for the fault-tolerant control-period protocol (paper §4.5)
 * that DistributedControlPlane runs over a SimTransport.
 *
 * Each control period is a two-phase exchange with per-message
 * deadlines and bounded retransmission:
 *
 *   1. Upstream: every rack worker sends a heartbeat plus one metrics
 *      message per edge controller. The room retransmits nothing; the
 *      racks re-send on a timeout until the gathering deadline. Edges
 *      whose metrics still miss the deadline fall back to the last
 *      received summary, provided it is no older than the stale-age
 *      cap (in control periods); beyond that the edge is treated as
 *      contributing nothing (its servers keep their previous caps and
 *      will receive the conservative floor next period).
 *   2. Downstream: the room sends one budget message per edge and
 *      re-sends on a timeout until the budgeting deadline. A rack that
 *      misses its budget applies the conservative default — the sum of
 *      its live leaves' Pcap_min floors, clamped to the edge device
 *      limit — which can never overload the tree.
 *
 * Worker failure is detected by heartbeat: a rack that goes silent
 * (no frame at all, any type) for heartbeatFailAfter consecutive
 * periods is declared dead and its edge controllers are re-homed to
 * the live rack worker hosting the fewest edges.
 *
 * When the stranded-power optimization (§4.4) detects pinned supplies,
 * a third and fourth phase run within the same control period: racks
 * send pinned-consumption summaries for the affected edges (upstream,
 * against spoGatherDeadlineMs) and the room answers with second-pass
 * budgets (downstream, against spoBudgetDeadlineMs), both with the
 * same bounded-retransmission discipline. The SPO round is atomic per
 * tree: a tree whose round-trip misses either deadline keeps its
 * first-pass budgets wholesale — never a mix of the two passes.
 */

#ifndef CAPMAESTRO_NET_PROTOCOL_HH
#define CAPMAESTRO_NET_PROTOCOL_HH

namespace capmaestro::net {

/** §4.5 protocol tunables (milliseconds within one control period). */
struct ProtocolConfig
{
    /** Deadline for the metrics-gathering phase, from period start. */
    double gatherDeadlineMs = 100.0;
    /** Deadline for the budgeting phase, from the gather deadline. */
    double budgetDeadlineMs = 100.0;
    /** Retransmission timeout for unacknowledged messages. */
    double retryTimeoutMs = 25.0;
    /** Total send attempts per message (first send + retries). */
    int maxAttempts = 4;
    /** Deadline for the §4.4 pinned-summary gather, from SPO round start. */
    double spoGatherDeadlineMs = 100.0;
    /** Deadline for the §4.4 budget phase, from the SPO gather deadline. */
    double spoBudgetDeadlineMs = 100.0;
    /** Oldest cached metrics (in periods) usable as a stale fallback. */
    int staleAgeCapPeriods = 2;
    /** Silent periods before a worker is declared dead and re-homed. */
    int heartbeatFailAfter = 3;
};

} // namespace capmaestro::net

#endif // CAPMAESTRO_NET_PROTOCOL_HH
