#include "net/transport.hh"

#include <algorithm>

namespace capmaestro::net {

SimTransport::SimTransport(TransportConfig config)
    : config_(config), rng_(config.seed)
{
}

double
SimTransport::sampleLatency()
{
    double latency = config_.latencyMeanMs;
    if (config_.latencyJitterMs > 0.0) {
        latency += rng_.uniform(-config_.latencyJitterMs,
                                config_.latencyJitterMs);
    }
    return std::max(latency, 0.0);
}

void
SimTransport::enqueue(Endpoint to, double deliver_at,
                      const std::vector<std::uint8_t> &frame)
{
    queues_[to].emplace(std::make_pair(deliver_at, order_++), frame);
}

void
SimTransport::send(Endpoint from, Endpoint to,
                   std::vector<std::uint8_t> frame)
{
    (void)from; // links share one fault model; kept for addressing
    ++stats_.framesSent;
    stats_.bytesSent += frame.size();

    if (rng_.chance(config_.dropRate)) {
        ++stats_.framesDropped;
        return;
    }

    double deliver_at = nowMs_ + sampleLatency();
    if (rng_.chance(config_.reorderRate))
        deliver_at += config_.reorderExtraMs;

    if (rng_.chance(config_.dupRate)) {
        ++stats_.framesDuplicated;
        enqueue(to, nowMs_ + sampleLatency(), frame);
    }
    enqueue(to, deliver_at, std::move(frame));
}

std::vector<std::vector<std::uint8_t>>
SimTransport::poll(Endpoint to)
{
    std::vector<std::vector<std::uint8_t>> out;
    const auto queue = queues_.find(to);
    if (queue == queues_.end())
        return out;
    auto &q = queue->second;
    while (!q.empty() && q.begin()->first.first <= nowMs_) {
        out.push_back(std::move(q.begin()->second));
        q.erase(q.begin());
        ++stats_.framesDelivered;
    }
    return out;
}

void
SimTransport::advanceTo(double ms)
{
    nowMs_ = std::max(nowMs_, ms);
}

void
SimTransport::advanceBy(double ms)
{
    if (ms > 0.0)
        nowMs_ += ms;
}

std::size_t
SimTransport::inFlight() const
{
    std::size_t n = 0;
    for (const auto &[to, q] : queues_)
        n += q.size();
    return n;
}

} // namespace capmaestro::net
