#include "net/transport.hh"

#include <algorithm>

namespace capmaestro::net {

std::vector<Transport::Delivery>
Transport::drain(const std::vector<Endpoint> &locals)
{
    std::vector<Delivery> out;
    for (const Endpoint ep : locals) {
        for (auto &frame : poll(ep))
            out.push_back({ep, std::move(frame)});
    }
    return out;
}

SimTransport::SimTransport(TransportConfig config)
    : config_(config), rng_(config.seed)
{
}

void
SimTransport::setTelemetry(telemetry::Registry *registry)
{
    registry_ = registry;
    if (registry_ == nullptr) {
        mSent_ = {};
        mDropped_ = {};
        mDuplicated_ = {};
        mDelivered_ = {};
        mBytes_ = {};
        mBytesDelivered_ = {};
        mQueueDepth_ = {};
        mLatencyMs_ = {};
        return;
    }
    mSent_ = registry_->counter("capmaestro_transport_frames_sent_total",
                                {}, "Frames submitted to the transport");
    mDropped_ =
        registry_->counter("capmaestro_transport_frames_dropped_total", {},
                           "Frames lost by the fault model");
    mDuplicated_ =
        registry_->counter("capmaestro_transport_frames_duplicated_total",
                           {}, "Frames delivered twice");
    mDelivered_ =
        registry_->counter("capmaestro_transport_frames_delivered_total",
                           {}, "Frames handed to poll()");
    mBytes_ = registry_->counter("capmaestro_transport_bytes_total", {},
                                 "Payload bytes submitted");
    mBytesDelivered_ =
        registry_->counter("capmaestro_transport_bytes_delivered_total",
                           {}, "Payload bytes handed to poll()");
    mQueueDepth_ =
        registry_->gauge("capmaestro_transport_queue_depth", {},
                         "Frames in flight after the last send/poll");
    mLatencyMs_ = registry_->histogram(
        "capmaestro_transport_latency_ms", 0.0, 100.0, 50, {},
        "Scheduled one-way frame latency, milliseconds");
}

double
SimTransport::sampleLatency()
{
    double latency = config_.latencyMeanMs;
    if (config_.latencyJitterMs > 0.0) {
        latency += rng_.uniform(-config_.latencyJitterMs,
                                config_.latencyJitterMs);
    }
    return std::max(latency, 0.0);
}

void
SimTransport::enqueue(Endpoint to, double deliver_at,
                      const std::vector<std::uint8_t> &frame)
{
    queues_[to].emplace(std::make_pair(deliver_at, order_++), frame);
}

void
SimTransport::send(Endpoint from, Endpoint to,
                   std::vector<std::uint8_t> frame)
{
    (void)from; // links share one fault model; kept for addressing
    ++stats_.framesSent;
    stats_.bytesSent += frame.size();
    mSent_.inc();
    mBytes_.inc(static_cast<double>(frame.size()));

    if (rng_.chance(config_.dropRate)) {
        ++stats_.framesDropped;
        mDropped_.inc();
        return;
    }

    double deliver_at = nowMs_ + sampleLatency();
    if (rng_.chance(config_.reorderRate))
        deliver_at += config_.reorderExtraMs;

    if (rng_.chance(config_.dupRate)) {
        ++stats_.framesDuplicated;
        mDuplicated_.inc();
        const double dup_at = nowMs_ + sampleLatency();
        mLatencyMs_.observe(dup_at - nowMs_);
        enqueue(to, dup_at, frame);
    }
    mLatencyMs_.observe(deliver_at - nowMs_);
    enqueue(to, deliver_at, std::move(frame));
    if (registry_ != nullptr)
        mQueueDepth_.set(static_cast<double>(inFlight()));
}

std::vector<std::vector<std::uint8_t>>
SimTransport::poll(Endpoint to)
{
    std::vector<std::vector<std::uint8_t>> out;
    const auto queue = queues_.find(to);
    if (queue == queues_.end())
        return out;
    auto &q = queue->second;
    std::size_t bytes = 0;
    while (!q.empty() && q.begin()->first.first <= nowMs_) {
        bytes += q.begin()->second.size();
        out.push_back(std::move(q.begin()->second));
        q.erase(q.begin());
        ++stats_.framesDelivered;
    }
    stats_.bytesDelivered += bytes;
    if (registry_ != nullptr && !out.empty()) {
        mDelivered_.inc(static_cast<double>(out.size()));
        mBytesDelivered_.inc(static_cast<double>(bytes));
        mQueueDepth_.set(static_cast<double>(inFlight()));
    }
    return out;
}

void
SimTransport::advanceTo(double ms)
{
    nowMs_ = std::max(nowMs_, ms);
}

void
SimTransport::advanceBy(double ms)
{
    if (ms > 0.0)
        nowMs_ += ms;
}

std::size_t
SimTransport::inFlight() const
{
    std::size_t n = 0;
    for (const auto &[to, q] : queues_)
        n += q.size();
    return n;
}

} // namespace capmaestro::net
