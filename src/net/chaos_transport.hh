/**
 * @file
 * Fault-injecting Transport decorator: scripted link partitions over
 * any backend.
 *
 * SimTransport injects probabilistic frame-level faults (drop, dup,
 * latency); what it cannot express — and what UdpTransport cannot
 * express at all — is a *scripted network partition*: "rack 1 and the
 * room cannot talk between periods 4 and 8". ChaosTransport wraps any
 * Transport and enforces a symmetric block list on both directions of
 * a link:
 *
 *   - send() on a blocked link silently discards the frame (counted in
 *     framesBlocked(), not in the inner transport's stats);
 *   - poll() filters delivered frames whose *sender header field* maps
 *     to a blocked peer, so frames already in flight (or in a kernel
 *     socket buffer) when the partition began are dropped too.
 *
 * The sender filter peeks only at the fixed frame header (magic +
 * sender id); undecodable runts pass through unfiltered — hostile
 * bytes are the §4.5 protocol's problem, not the partition model's.
 * The decorator draws no randomness, so a deterministic inner backend
 * (SimTransport) stays bit-reproducible under scripted chaos.
 */

#ifndef CAPMAESTRO_NET_CHAOS_TRANSPORT_HH
#define CAPMAESTRO_NET_CHAOS_TRANSPORT_HH

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "net/transport.hh"

namespace capmaestro::net {

/** Transport decorator enforcing scripted symmetric link partitions. */
class ChaosTransport : public Transport
{
  public:
    /**
     * @param inner         backend to decorate (not owned)
     * @param room_endpoint endpoint the kRoomSender header id maps to
     *                      (rack count), for the receive-side filter
     */
    ChaosTransport(Transport &inner, Endpoint room_endpoint);

    /** Block or unblock both directions of link @p a <-> @p b. */
    void setPartition(Endpoint a, Endpoint b, bool blocked);

    /** Block or unblock every link touching @p e (up to @p endpoints). */
    void isolate(Endpoint e, Endpoint endpoints, bool blocked);

    /** Clear every partition. */
    void heal();

    /** Frames discarded by the partition filter (both directions). */
    std::size_t framesBlocked() const { return blocked_; }

    // ------------------------------------------------- Transport API
    void send(Endpoint from, Endpoint to,
              std::vector<std::uint8_t> frame) override;
    std::vector<std::vector<std::uint8_t>> poll(Endpoint to) override;
    void advanceTo(double ms) override { inner_.advanceTo(ms); }
    void advanceBy(double ms) override { inner_.advanceBy(ms); }
    double nowMs() const override { return inner_.nowMs(); }
    std::size_t inFlight() const override { return inner_.inFlight(); }
    const TransportStats &stats() const override
    {
        return inner_.stats();
    }
    void setTelemetry(telemetry::Registry *registry) override
    {
        inner_.setTelemetry(registry);
    }

  private:
    using Link = std::pair<Endpoint, Endpoint>;

    static Link normalize(Endpoint a, Endpoint b);
    bool linkBlocked(Endpoint a, Endpoint b) const;
    /** Sender endpoint from a frame's header, or nullopt for runts. */
    static std::optional<Transport::Endpoint>
    senderOf(const std::vector<std::uint8_t> &frame,
             Endpoint room_endpoint);

    Transport &inner_;
    Endpoint roomEndpoint_;
    std::set<Link> partitions_;
    std::size_t blocked_ = 0;
};

} // namespace capmaestro::net

#endif // CAPMAESTRO_NET_CHAOS_TRANSPORT_HH
