#include "core/tree_plan.hh"

#include <algorithm>

#include "core/distributed.hh"
#include "util/logging.hh"

namespace capmaestro::core {

namespace {

/**
 * Height of @p node above the edge level: 0 at an edge (leaf-parent)
 * node, 1 + the max child height above, -1 inside supply subtrees
 * (nothing to aggregate down there).
 */
int
stationHeight(const topo::PowerTree &tree, topo::NodeId node,
              std::map<topo::NodeId, int> &heights)
{
    const auto it = heights.find(node);
    if (it != heights.end())
        return it->second;
    const auto &tn = tree.node(node);
    int h = -1;
    if (tn.kind != topo::NodeKind::SupplyPort) {
        bool leaf_parent = false;
        for (const topo::NodeId c : tn.children) {
            if (tree.node(c).kind == topo::NodeKind::SupplyPort)
                leaf_parent = true;
        }
        if (leaf_parent) {
            h = 0;
        } else {
            for (const topo::NodeId c : tn.children)
                h = std::max(h, stationHeight(tree, c, heights));
            if (h >= 0)
                ++h;
        }
    }
    heights[node] = h;
    return h;
}

/** Pre-order list of the nodes at height @p level. No two stations of
 *  one level can nest (heights strictly decrease downward), so the
 *  recursion stops at a match. */
void
collectStations(const topo::PowerTree &tree, topo::NodeId node,
                const std::map<topo::NodeId, int> &heights, int level,
                std::vector<topo::NodeId> &out)
{
    const auto it = heights.find(node);
    if (it == heights.end() || it->second < level)
        return;
    if (it->second == level) {
        out.push_back(node);
        return;
    }
    for (const topo::NodeId c : tree.node(node).children)
        collectStations(tree, c, heights, level, out);
}

} // namespace

std::vector<std::uint32_t>
TreePlan::tierEndpoints(std::uint32_t tier) const
{
    std::vector<std::uint32_t> out;
    for (const Worker &w : workers) {
        if (w.tier == tier)
            out.push_back(w.endpoint);
    }
    return out;
}

std::vector<topo::NodeId>
TreePlan::topsOf(std::uint32_t endpoint) const
{
    const Worker &w = workers.at(endpoint);
    std::vector<topo::NodeId> tops(trees, topo::kNoNode);
    for (const auto &[t, node] : w.stations)
        tops[t] = node;
    return tops;
}

std::vector<std::set<topo::NodeId>>
TreePlan::boundariesOf(std::uint32_t endpoint) const
{
    const Worker &w = workers.at(endpoint);
    std::vector<std::set<topo::NodeId>> out(trees);
    for (const std::uint32_t c : w.children) {
        for (const auto &[t, node] : workers.at(c).stations)
            out[t].insert(node);
    }
    return out;
}

TreePlan
TreePlan::build(const topo::PowerSystem &system,
                const std::vector<std::uint32_t> &agg_levels)
{
    for (std::size_t i = 0; i < agg_levels.size(); ++i) {
        if (agg_levels[i] == 0) {
            util::fatal("tree plan: aggregation level 0 is the edge "
                        "level itself; levels start at 1");
        }
        if (i > 0 && agg_levels[i] <= agg_levels[i - 1]) {
            util::fatal("tree plan: aggregation levels must be strictly "
                        "ascending");
        }
    }

    TreePlan plan;
    plan.trees = system.trees().size();
    plan.aggLevels = agg_levels;

    // Leaf workers: exactly the 2-level partitioning rule, so leaf
    // endpoints (and their edge ownership) never depend on the levels.
    const auto edges = DistributedControlPlane::partitionEdges(system);
    plan.leafWorkers = edges.size();

    const std::size_t tiers = agg_levels.size() + 2;
    // stations[t][k]: pre-order station list of tree t at worker tier
    // k (aggregator tiers 1..tiers-2).
    std::vector<std::vector<std::vector<topo::NodeId>>> stations(
        plan.trees);
    std::vector<std::map<topo::NodeId, int>> heights(plan.trees);
    for (std::size_t t = 0; t < plan.trees; ++t) {
        const auto &tree = system.tree(t);
        const int root_h =
            stationHeight(tree, tree.root(), heights[t]);
        stations[t].assign(tiers, {});
        for (std::size_t k = 1; k + 1 < tiers; ++k) {
            const int level = static_cast<int>(agg_levels[k - 1]);
            if (level >= root_h) {
                util::fatal(
                    "tree plan: aggregation level %d is not strictly "
                    "below tree %zu's root (root height %d)",
                    level, t, root_h);
            }
            collectStations(tree, tree.root(), heights[t], level,
                            stations[t][k]);
        }
    }

    std::vector<std::size_t> tierCount(tiers, 0);
    tierCount[0] = plan.leafWorkers;
    tierCount[tiers - 1] = 1;
    for (std::size_t k = 1; k + 1 < tiers; ++k) {
        for (std::size_t t = 0; t < plan.trees; ++t)
            tierCount[k] = std::max(tierCount[k], stations[t][k].size());
    }

    std::vector<std::uint32_t> tierBase(tiers, 0);
    for (std::size_t k = 0; k < tiers; ++k) {
        if (k > 0) {
            tierBase[k] = tierBase[k - 1]
                          + static_cast<std::uint32_t>(tierCount[k - 1]);
        }
        for (std::size_t j = 0; j < tierCount[k]; ++j) {
            Worker w;
            w.endpoint =
                static_cast<std::uint32_t>(plan.workers.size());
            w.tier = static_cast<std::uint32_t>(k);
            plan.workers.push_back(std::move(w));
        }
    }
    // Sender ids are u16 on the wire, with 0xFFFF reserved for the
    // root worker's kRoomSender alias.
    if (plan.workers.size() >= 0xFFFF) {
        util::fatal("tree plan: %zu workers exceed the wire format's "
                    "sender-id space",
                    plan.workers.size());
    }

    // Station ownership: leaves from the partition rule, aggregator
    // tiers by pre-order index (the j-th tier-k station of every tree
    // lands on worker tierBase[k] + j), the root owns the tree roots.
    std::vector<std::map<topo::NodeId, std::uint32_t>> owner(plan.trees);
    for (std::size_t w = 0; w < edges.size(); ++w) {
        for (const auto &[t, node] : edges[w]) {
            plan.workers[w].stations[t] = node;
            owner[t][node] = static_cast<std::uint32_t>(w);
        }
    }
    for (std::size_t k = 1; k + 1 < tiers; ++k) {
        for (std::size_t t = 0; t < plan.trees; ++t) {
            for (std::size_t j = 0; j < stations[t][k].size(); ++j) {
                const std::uint32_t ep = tierBase[k]
                                         + static_cast<std::uint32_t>(j);
                plan.workers[ep].stations[t] = stations[t][k][j];
                owner[t][stations[t][k][j]] = ep;
            }
        }
    }
    const std::uint32_t root_ep = plan.rootEndpoint();
    for (std::size_t t = 0; t < plan.trees; ++t) {
        const topo::NodeId root = system.tree(t).root();
        plan.workers[root_ep].stations[t] = root;
        owner[t][root] = root_ep;
    }

    // Parents: the owner of the nearest station strictly above each of
    // the worker's own — which must be the same worker in every tree,
    // or the fragments do not form one tree of workers.
    for (Worker &w : plan.workers) {
        if (w.endpoint == root_ep)
            continue;
        std::uint32_t parent = kNoWorker;
        for (const auto &[t, node] : w.stations) {
            const auto &tree = system.tree(t);
            topo::NodeId up = tree.node(node).parent;
            while (up != topo::kNoNode && owner[t].count(up) == 0)
                up = tree.node(up).parent;
            // Climbing always reaches the tree root (owned by the
            // root worker), so running out of ancestors means this
            // station IS the root of a degenerate single-level tree:
            // its enclosing fragment is the root worker's trivial one.
            const std::uint32_t cand =
                up == topo::kNoNode ? root_ep : owner[t].at(up);
            if (parent == kNoWorker) {
                parent = cand;
            } else if (parent != cand) {
                util::fatal(
                    "tree plan: worker %u's fragments are not "
                    "structurally parallel across trees (parent "
                    "worker %u in one tree, %u in another); choose "
                    "aggregation levels that cut every tree alike",
                    w.endpoint, parent, cand);
            }
        }
        // A worker with no fragment in any tree (ragged station counts
        // across trees) parks under the root: it gathers and budgets
        // nothing but keeps the worker tree connected.
        if (parent == kNoWorker)
            parent = root_ep;
        w.parent = parent;
        plan.workers[parent].children.push_back(w.endpoint);
    }
    return plan;
}

} // namespace capmaestro::core
