/**
 * @file
 * Deep-plan iteration bodies of DistributedControlPlane: the same
 * gather/budget exchange as the 2-level plane, run hop by hop over a
 * core::TreePlan worker tree of arbitrary depth.
 *
 * Direct mode chains RoomWorker fragments in process — bit-identical
 * to the monolithic ControlTree because gatherMetrics/budgetChildren
 * are associative and every boundary summary crosses the cut verbatim.
 * Message-plane mode replicates the §4.5 per-phase discipline on every
 * worker-to-worker hop: tier k's gather closes at k x gatherDeadlineMs
 * from period start (senders retransmit into that window), budgets
 * mirror the schedule on the way down, and every hop applies the
 * stale-metric fallback upstream and the conservative-default fallback
 * downstream independently. A mid-tier worker that misses its budget
 * sends nothing further down — its whole subtree degrades to Pcap_min
 * floors, which can never overload the tree.
 *
 * Worker failover (heartbeat re-homing) and the §4.4 SPO round remain
 * 2-level-plane features; deep deployments exercise worker death at
 * the runtime level (rt::WorkerRuntime) instead.
 */

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/distributed.hh"
#include "net/wire.hh"
#include "util/logging.hh"

namespace capmaestro::core {

namespace {

/** Station of worker @p w in tree @p t, or kNoNode. */
topo::NodeId
stationIn(const TreePlan::Worker &w, std::size_t t)
{
    const auto it = w.stations.find(t);
    return it == w.stations.end() ? topo::kNoNode : it->second;
}

} // namespace

MessageStats
DistributedControlPlane::iterateDirectDeep(
    const std::vector<Watts> &root_budgets)
{
    MessageStats stats;
    const auto iterate_span = tracer_
                                  ? tracer_->begin("iterate")
                                  : telemetry::PeriodTracer::kNoSpan;
    lastTreeMetrics_.assign(system_.trees().size(), {});
    const std::uint32_t tiers = plan_.tiers();

    for (std::size_t t = 0; t < system_.trees().size(); ++t) {
        if (system_.feedFailed(system_.tree(t).feed()))
            continue;
        const auto tree_span =
            tracer_ ? tracer_->begin("tree", iterate_span)
                    : telemetry::PeriodTracer::kNoSpan;

        // Upstream: summaries per station, built tier by tier.
        std::map<topo::NodeId, ctrl::NodeMetrics> summary;
        for (const auto &[key, rack] : edgeOwner_) {
            if (key.first != t)
                continue;
            ctrl::NodeMetrics m =
                racks_[rack].computeMetrics(t, key.second);
            ++stats.metricsMessages;
            stats.metricClassesSent += m.classes().size();
            summary.emplace(key.second, std::move(m));
        }
        lastTreeMetrics_[t] = summary;

        for (std::uint32_t tier = 1; tier + 1 < tiers; ++tier) {
            for (const std::uint32_t ep : plan_.tierEndpoints(tier)) {
                const TreePlan::Worker &w = plan_.workers[ep];
                const topo::NodeId top = stationIn(w, t);
                if (top == topo::kNoNode)
                    continue;
                std::map<topo::NodeId, ctrl::NodeMetrics> boundary;
                for (const std::uint32_t c : w.children) {
                    const topo::NodeId cs =
                        stationIn(plan_.workers[c], t);
                    const auto got = summary.find(cs);
                    if (cs != topo::kNoNode && got != summary.end())
                        boundary.emplace(cs, got->second);
                }
                ctrl::NodeMetrics m =
                    aggs_[ep - plan_.leafWorkers].gatherTop(t,
                                                            boundary);
                ++stats.summaryMessages;
                stats.metricClassesSent += m.classes().size();
                summary.emplace(top, std::move(m));
            }
        }

        // Root worker: gather its boundary, split the root budget.
        std::map<topo::NodeId, ctrl::NodeMetrics> root_boundary;
        for (const std::uint32_t c : plan_.root().children) {
            const topo::NodeId cs = stationIn(plan_.workers[c], t);
            const auto got = summary.find(cs);
            if (cs != topo::kNoNode && got != summary.end())
                root_boundary.emplace(cs, got->second);
        }
        std::map<topo::NodeId, Watts> station_budget =
            room_.iterate(t, root_boundary, root_budgets[t]);

        // Downstream: aggregators split tier by tier.
        for (std::uint32_t tier = tiers - 2; tier >= 1; --tier) {
            for (const std::uint32_t ep : plan_.tierEndpoints(tier)) {
                const TreePlan::Worker &w = plan_.workers[ep];
                const topo::NodeId top = stationIn(w, t);
                if (top == topo::kNoNode)
                    continue;
                const auto got = station_budget.find(top);
                if (got == station_budget.end())
                    continue;
                ++stats.subBudgetMessages;
                const auto split =
                    aggs_[ep - plan_.leafWorkers].budgetDown(
                        t, got->second);
                for (const auto &[node, b] : split)
                    station_budget[node] = b;
            }
        }

        std::size_t edges = 0;
        for (const auto &[key, rack] : edgeOwner_) {
            if (key.first != t)
                continue;
            const auto got = station_budget.find(key.second);
            if (got == station_budget.end())
                continue;
            ++stats.budgetMessages;
            ++edges;
            racks_[rack].applyBudget(t, key.second, got->second);
        }
        if (tracer_) {
            tracer_->num(tree_span, "tree", static_cast<double>(t));
            tracer_->num(tree_span, "edges",
                         static_cast<double>(edges));
            tracer_->end(tree_span);
        }
    }
    if (tracer_) {
        tracer_->num(iterate_span, "metrics_messages",
                     static_cast<double>(stats.metricsMessages));
        tracer_->num(iterate_span, "summary_messages",
                     static_cast<double>(stats.summaryMessages));
        tracer_->num(iterate_span, "budget_messages",
                     static_cast<double>(stats.budgetMessages));
        tracer_->end(iterate_span);
    }
    return stats;
}

MessageStats
DistributedControlPlane::iterateTransportDeep(
    const std::vector<Watts> &root_budgets)
{
    MessageStats stats;
    net::Transport &tp = *transport_;
    ++epoch_;
    const std::size_t bytes_before = tp.stats().bytesSent;
    const double start = tp.nowMs();
    const std::uint32_t tiers = plan_.tiers();
    const std::uint32_t root_ep = plan_.rootEndpoint();

    const auto tree_live = [&](std::size_t t) {
        return !system_.feedFailed(system_.tree(t).feed());
    };
    // The sender-id alias a child expects on frames from its parent.
    const auto parent_sender = [&](std::uint32_t parent) {
        return parent == root_ep
                   ? net::kRoomSender
                   : static_cast<std::uint16_t>(parent);
    };
    const auto next_seq = [&](std::uint32_t ep) -> std::uint32_t {
        if (ep < racks_.size())
            return rackSeq_[ep]++;
        if (ep == root_ep)
            return roomSeq_++;
        return aggSeq_[ep - plan_.leafWorkers]++;
    };

    // ---------------- upstream: hop by hop, receiver tiers ascending.
    struct PendingUp
    {
        std::uint32_t from;
        std::uint32_t to;
        std::size_t tree;
        topo::NodeId node;
        std::vector<std::uint8_t> frame;
    };
    std::vector<PendingUp> pending_up;
    // Fresh summaries received per worker this epoch.
    std::map<std::uint32_t,
             std::map<std::pair<std::size_t, topo::NodeId>,
                      ctrl::NodeMetrics>>
        fresh_at;

    const auto send_up = [&](std::uint32_t ep, std::size_t t,
                             topo::NodeId node,
                             const ctrl::NodeMetrics &m) {
        const TreePlan::Worker &w = plan_.workers[ep];
        net::MetricsMsg msg;
        msg.tree = static_cast<std::uint16_t>(t);
        msg.edgeNode = static_cast<std::uint32_t>(node);
        msg.metrics = m;
        stats.metricClassesSent += m.classes().size();
        const net::FrameMeta meta{static_cast<std::uint16_t>(ep),
                                  epoch_, next_seq(ep)};
        std::vector<std::uint8_t> frame;
        if (w.isLeaf()) {
            ++stats.metricsMessages;
            frame = net::encodeMetrics(meta, msg);
        } else {
            ++stats.summaryMessages;
            frame = net::encodeSummary(meta, msg);
        }
        tp.send(ep, w.parent, frame);
        pending_up.push_back({ep, w.parent, t, node, std::move(frame)});
    };

    // Leaf tier sends at period start (heartbeat + per-edge metrics).
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        const TreePlan::Worker &w = plan_.workers[r];
        tp.send(static_cast<net::Transport::Endpoint>(r), w.parent,
                net::encodeHeartbeat({static_cast<std::uint16_t>(r),
                                      epoch_, next_seq(
                                          static_cast<std::uint32_t>(
                                              r))}));
        ++stats.heartbeatMessages;
        for (const RackWorker::Edge &edge : racks_[r].edges()) {
            if (!tree_live(edge.tree))
                continue;
            send_up(static_cast<std::uint32_t>(r), edge.tree,
                    edge.node,
                    racks_[r].computeMetrics(edge.tree, edge.node));
        }
    }

    // Poll every worker at @p tier, filing fresh summaries.
    const auto poll_tier_up = [&](std::uint32_t tier) {
        for (const std::uint32_t ep : plan_.tierEndpoints(tier)) {
            const TreePlan::Worker &w = plan_.workers[ep];
            std::set<std::uint32_t> children(w.children.begin(),
                                             w.children.end());
            for (const auto &bytes : tp.poll(ep)) {
                const auto frame = net::decodeFrame(bytes);
                if (!frame) {
                    ++stats.corruptFrames;
                    continue;
                }
                if (frame->epoch != epoch_
                    || children.count(frame->sender) == 0) {
                    ++stats.orphanFrames;
                    continue;
                }
                const bool from_leaf =
                    plan_.workers[frame->sender].isLeaf();
                if ((from_leaf
                     && frame->type == net::MsgType::Metrics)
                    || (!from_leaf
                        && frame->type == net::MsgType::Summary)) {
                    fresh_at[ep][{frame->metrics.tree,
                                  static_cast<topo::NodeId>(
                                      frame->metrics.edgeNode)}] =
                        frame->metrics.metrics;
                }
            }
        }
    };

    // Assemble worker @p ep's boundary view of tree @p t with the
    // §4.5 stale fallback, from what arrived by its gather deadline.
    const auto assemble = [&](std::uint32_t ep, std::size_t t) {
        const TreePlan::Worker &w = plan_.workers[ep];
        std::map<topo::NodeId, ctrl::NodeMetrics> boundary;
        const auto &fresh = fresh_at[ep];
        for (const std::uint32_t c : w.children) {
            const topo::NodeId cs = stationIn(plan_.workers[c], t);
            if (cs == topo::kNoNode)
                continue;
            const std::pair<std::size_t, topo::NodeId> key{t, cs};
            const auto got = fresh.find(key);
            if (got != fresh.end()) {
                boundary.emplace(cs, got->second);
                metricCache_[key] = {got->second, epoch_, true};
                continue;
            }
            const auto cached = metricCache_.find(key);
            const std::uint32_t age =
                cached != metricCache_.end() && cached->second.valid
                    ? epoch_ - cached->second.epoch
                    : 0;
            if (cached != metricCache_.end() && cached->second.valid
                && age <= static_cast<std::uint32_t>(
                       protocol_.staleAgeCapPeriods)) {
                boundary.emplace(cs, cached->second.metrics);
                ++stats.staleReuses;
                stats.degraded.push_back(
                    {DegradedKind::StaleMetricsReused, t, cs, c,
                     static_cast<double>(age)});
            } else {
                ++stats.metricsLost;
                stats.degraded.push_back({DegradedKind::MetricsLost, t,
                                          cs, c,
                                          static_cast<double>(age)});
            }
        }
        return boundary;
    };

    const auto gather_span = tracer_
                                 ? tracer_->begin("gather")
                                 : telemetry::PeriodTracer::kNoSpan;

    // Receiver tiers ascending: close tier k's gather at
    // start + k x gatherDeadlineMs, then its workers summarize upward.
    std::vector<std::map<topo::NodeId, ctrl::NodeMetrics>>
        root_boundary(system_.trees().size());
    for (std::uint32_t tier = 1; tier < tiers; ++tier) {
        const double phase_start =
            start + (tier - 1) * protocol_.gatherDeadlineMs;
        const double deadline =
            start + tier * protocol_.gatherDeadlineMs;
        for (int attempt = 1; attempt < protocol_.maxAttempts;
             ++attempt) {
            const double next =
                phase_start + attempt * protocol_.retryTimeoutMs;
            if (next >= deadline)
                break;
            tp.advanceTo(next);
            poll_tier_up(tier);
            bool all_in = true;
            for (const PendingUp &up : pending_up) {
                if (plan_.workers[up.to].tier != tier)
                    continue;
                if (fresh_at[up.to].count({up.tree, up.node}))
                    continue;
                all_in = false;
                ++stats.retries;
                tp.send(up.from, up.to, up.frame);
            }
            if (all_in)
                break;
        }
        tp.advanceTo(deadline);
        poll_tier_up(tier);

        for (const std::uint32_t ep : plan_.tierEndpoints(tier)) {
            const TreePlan::Worker &w = plan_.workers[ep];
            if (ep != root_ep) {
                tp.send(ep, w.parent,
                        net::encodeHeartbeat(
                            {static_cast<std::uint16_t>(ep), epoch_,
                             next_seq(ep)}));
                ++stats.heartbeatMessages;
            }
            for (std::size_t t = 0; t < system_.trees().size(); ++t) {
                const topo::NodeId top = stationIn(w, t);
                if (top == topo::kNoNode || !tree_live(t))
                    continue;
                auto boundary = assemble(ep, t);
                if (ep == root_ep) {
                    root_boundary[t] = std::move(boundary);
                } else {
                    send_up(ep, t, top,
                            aggs_[ep - plan_.leafWorkers].gatherTop(
                                t, boundary));
                }
            }
        }
    }

    if (tracer_) {
        tracer_->num(gather_span, "messages",
                     static_cast<double>(stats.metricsMessages
                                         + stats.summaryMessages));
        tracer_->num(gather_span, "retries",
                     static_cast<double>(stats.retries));
        tracer_->num(gather_span, "stale",
                     static_cast<double>(stats.staleReuses));
        tracer_->num(gather_span, "lost",
                     static_cast<double>(stats.metricsLost));
        tracer_->end(gather_span);
    }
    const std::size_t gather_retries = stats.retries;
    const auto budget_span = tracer_
                                 ? tracer_->begin("budget")
                                 : telemetry::PeriodTracer::kNoSpan;

    // ---------------- downstream: receiver tiers descending.
    struct PendingDown
    {
        std::uint32_t from;
        std::uint32_t to;
        std::size_t tree;
        topo::NodeId node;
        std::vector<std::uint8_t> frame;
    };
    std::vector<PendingDown> pending_down;
    // Budgets received per worker this epoch.
    std::map<std::uint32_t, std::map<std::pair<std::size_t,
                                               topo::NodeId>,
                                     Watts>>
        budget_at;
    std::set<std::pair<std::size_t, topo::NodeId>> applied;

    // Send worker @p ep's per-child budgets for tree @p t.
    const auto send_down = [&](std::uint32_t ep, std::size_t t,
                               const std::map<topo::NodeId, Watts>
                                   &split) {
        const TreePlan::Worker &w = plan_.workers[ep];
        for (const std::uint32_t c : w.children) {
            const topo::NodeId cs = stationIn(plan_.workers[c], t);
            const auto got = split.find(cs);
            if (cs == topo::kNoNode || got == split.end())
                continue;
            net::BudgetMsg msg;
            msg.tree = static_cast<std::uint16_t>(t);
            msg.edgeNode = static_cast<std::uint32_t>(cs);
            msg.budget = got->second;
            const net::FrameMeta meta{parent_sender(ep), epoch_,
                                      next_seq(ep)};
            std::vector<std::uint8_t> frame;
            if (plan_.workers[c].isLeaf()) {
                ++stats.budgetMessages;
                frame = net::encodeBudget(meta, msg);
            } else {
                ++stats.subBudgetMessages;
                frame = net::encodeSubBudget(meta, msg);
            }
            tp.send(ep, c, frame);
            pending_down.push_back({ep, c, t, cs, std::move(frame)});
        }
    };

    // Root computes and sends first.
    for (std::size_t t = 0; t < system_.trees().size(); ++t) {
        if (!tree_live(t))
            continue;
        send_down(root_ep, t,
                  room_.iterate(t, root_boundary[t], root_budgets[t]));
    }

    const auto poll_tier_down = [&](std::uint32_t tier) {
        for (const std::uint32_t ep : plan_.tierEndpoints(tier)) {
            const TreePlan::Worker &w = plan_.workers[ep];
            const std::uint16_t expect = parent_sender(w.parent);
            const bool is_leaf = w.isLeaf();
            for (const auto &bytes : tp.poll(ep)) {
                const auto frame = net::decodeFrame(bytes);
                if (!frame) {
                    ++stats.corruptFrames;
                    continue;
                }
                const auto want = is_leaf ? net::MsgType::Budget
                                          : net::MsgType::SubBudget;
                if (frame->epoch != epoch_ || frame->type != want
                    || frame->sender != expect) {
                    ++stats.orphanFrames;
                    continue;
                }
                const std::size_t t = frame->budget.tree;
                const auto node = static_cast<topo::NodeId>(
                    frame->budget.edgeNode);
                if (stationIn(w, t) != node) {
                    ++stats.orphanFrames;
                    continue;
                }
                budget_at[ep].insert({{t, node},
                                      frame->budget.budget});
            }
        }
    };

    const double gather_end =
        start + (tiers - 1) * protocol_.gatherDeadlineMs;
    for (std::uint32_t tier = tiers - 1; tier-- > 0;) {
        const double phase_start =
            gather_end
            + (tiers - 2 - tier) * protocol_.budgetDeadlineMs;
        const double deadline = phase_start + protocol_.budgetDeadlineMs;
        for (int attempt = 1; attempt < protocol_.maxAttempts;
             ++attempt) {
            const double next =
                phase_start + attempt * protocol_.retryTimeoutMs;
            if (next >= deadline)
                break;
            tp.advanceTo(next);
            poll_tier_down(tier);
            bool all_in = true;
            for (const PendingDown &down : pending_down) {
                if (plan_.workers[down.to].tier != tier)
                    continue;
                if (budget_at[down.to].count({down.tree, down.node}))
                    continue;
                all_in = false;
                ++stats.retries;
                tp.send(down.from, down.to, down.frame);
            }
            if (all_in)
                break;
        }
        tp.advanceTo(deadline);
        poll_tier_down(tier);

        // Aggregators at this tier split and forward what they got; a
        // missing budget means silence below (floors all the way down).
        for (const std::uint32_t ep : plan_.tierEndpoints(tier)) {
            const TreePlan::Worker &w = plan_.workers[ep];
            if (w.isLeaf())
                continue;
            for (const auto &[key, budget] : budget_at[ep]) {
                send_down(ep, key.first,
                          aggs_[ep - plan_.leafWorkers].budgetDown(
                              key.first, budget));
            }
        }
    }

    // Leaves apply received budgets, then the §4.5 defaults.
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        for (const auto &[key, budget] : budget_at[
                 static_cast<std::uint32_t>(r)]) {
            racks_[r].applyBudget(key.first, key.second, budget);
            applied.insert(key);
        }
    }
    for (const auto &[key, rack] : edgeOwner_) {
        const auto [t, node] = key;
        if (!tree_live(t) || applied.count(key))
            continue;
        const Watts fallback = racks_[rack].defaultBudget(t, node);
        racks_[rack].applyBudget(t, node, fallback);
        ++stats.defaultBudgets;
        stats.degraded.push_back({DegradedKind::DefaultBudgetApplied,
                                  t, node, rack, fallback});
    }

    stats.bytesOnWire = tp.stats().bytesSent - bytes_before;
    if (tracer_) {
        tracer_->num(budget_span, "messages",
                     static_cast<double>(stats.budgetMessages
                                         + stats.subBudgetMessages));
        tracer_->num(budget_span, "retries",
                     static_cast<double>(stats.retries
                                         - gather_retries));
        tracer_->num(budget_span, "defaults",
                     static_cast<double>(stats.defaultBudgets));
        tracer_->end(budget_span);
        for (const DegradedDecision &d : stats.degraded) {
            const auto span = tracer_->begin("degraded");
            tracer_->str(span, "kind", degradedKindName(d.kind));
            tracer_->num(span, "tree", static_cast<double>(d.tree));
            tracer_->num(span, "rack", static_cast<double>(d.rack));
            tracer_->num(span, "value", d.value);
            tracer_->end(span);
        }
    }
    return stats;
}

} // namespace capmaestro::core
