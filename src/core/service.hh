/**
 * @file
 * CapMaestroService: the control-plane facade (paper §5).
 *
 * The service owns the distributed controller state for one data center:
 * one capping controller per attached server and one FleetAllocator over
 * the power system's control trees. A deployment drives it on two cadences:
 *
 *   - senseTick()        every second: capping controllers read sensors
 *   - runControlPeriod() every control period (default 8 s): controllers
 *     close their periods, leaf metrics flow into the trees, the global
 *     priority-aware algorithm (plus optional SPO) computes budgets, and
 *     the PI loops push new DC caps to the node managers
 *
 * Root budgets per tree are owned by the caller (they encode contractual
 * terms and failover policy); refreshRootBudgets() recomputes the default
 * split, which doubles a surviving feed's share when the other fails.
 */

#ifndef CAPMAESTRO_CORE_SERVICE_HH
#define CAPMAESTRO_CORE_SERVICE_HH

#include <memory>
#include <vector>

#include "control/allocator.hh"
#include "control/capping_controller.hh"
#include "core/distributed.hh"
#include "net/protocol.hh"
#include "net/transport.hh"
#include "net/udp_transport.hh"
#include "policy/policy.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"
#include "topology/power_system.hh"

namespace capmaestro::core {

/** Service configuration. */
struct ServiceConfig
{
    /** Control period in seconds (paper: 8 s). */
    Seconds controlPeriod = 8;
    /** Power-capping policy. */
    policy::PolicyKind policy = policy::PolicyKind::GlobalPriority;
    /** Run the stranded-power optimization after each allocation. */
    bool enableSpo = true;
    /** Minimum per-supply stranded watts for SPO to act. */
    Watts spoThreshold = 1.0;
    /** Total allocation passes for SPO (2 = the paper's one re-run). */
    int spoPasses = 2;
    /** Per-server controller tunables. */
    ctrl::CappingControllerConfig capping;
    /**
     * Adaptive feed balancing: instead of splitting each phase's
     * contractual budget evenly across live feeds, re-split it every
     * control period proportionally to the demand reported on each
     * feed. This reclaims contractual headroom that a static split
     * strands when supply failures skew load toward one feed (the
     * even split is the paper's configuration; balancing is an
     * extension enabled here).
     * Requires totalPerPhaseBudget > 0.
     */
    bool adaptiveFeedBalance = false;
    /** Contractual budget per phase used by adaptive balancing. */
    Watts totalPerPhaseBudget = 0.0;
    /**
     * Emergency fast path: when a breaker is observed above its
     * continuous limit, run an immediate out-of-cycle control period
     * instead of waiting for the next scheduled one. Shortens the
     * worst-case reaction from (period + actuation) to roughly
     * (sensing + actuation); ablated in bench_ablation A3.
     */
    bool emergencyFastPath = false;
    /** Minimum spacing between emergency periods (sensor warm-up). */
    Seconds emergencyMinSpacing = 2;
    /**
     * Run the control exchange over the simulated message plane: the
     * rack/room workers of the DistributedControlPlane exchange encoded
     * frames (net/wire) through a SimTransport under the §4.5
     * fault-tolerant protocol instead of the in-process FleetAllocator
     * tree walk. The §4.4 stranded-power optimization runs as a second
     * gather/budget round-trip over the same transport. With a lossless
     * zero-latency transport the budgets — including the SPO second
     * pass — are bit-identical to the monolithic path.
     */
    bool useMessagePlane = false;
    /** Which Transport backend carries message-plane frames. */
    enum class TransportBackend {
        /** Deterministic in-process queues, virtual time. */
        Sim,
        /** Real non-blocking UDP sockets, wall-clock time. */
        Udp,
    };
    /**
     * Backend selection (message-plane mode only). Udp binds every
     * endpoint in this process (loopback mode); the protocol's deadline
     * schedule then paces each control period in real wall time.
     */
    TransportBackend transportBackend = TransportBackend::Sim;
    /** Transport fault model (Sim backend only). */
    net::TransportConfig transport;
    /**
     * Socket layout (Udp backend only). Left empty, the service builds
     * a single-process loopback layout with ephemeral ports covering
     * every rack worker plus the room.
     */
    net::UdpConfig udp;
    /** §4.5 protocol tunables (message-plane mode only). */
    net::ProtocolConfig protocol;
};

/** Aggregate per-period statistics for observability. */
struct PeriodStats
{
    /** Allocation outcome of the last control period. */
    ctrl::FleetAllocation allocation;
    /** Sum of per-supply budgets applied, by tree. */
    std::vector<Watts> budgetByTree;
    /** Total estimated demand across the fleet (AC). */
    Watts totalDemandEstimate = 0.0;
    /** Number of control periods run so far. */
    std::size_t periodsRun = 0;
    /** Message accounting + degraded decisions (message-plane mode). */
    MessageStats messages;
};

/** The CapMaestro control-plane service. */
class CapMaestroService
{
  public:
    /**
     * @param system  power system (not owned; must outlive the service)
     * @param config  service tunables
     */
    CapMaestroService(topo::PowerSystem &system, ServiceConfig config = {});

    /**
     * Attach a server's devices. Servers must be attached in id order
     * (the first call attaches server 0, the next server 1, ...), matching
     * the ServerSupplyRef ids used when building the topology.
     * All references must outlive the service.
     */
    void attachServer(dev::ServerModel &server, dev::NodeManager &nm,
                      dev::SensorEmulator &sensors);

    /** Number of attached servers. */
    std::size_t serverCount() const { return servers_.size(); }

    /**
     * Set the root budget for every tree explicitly (indexed like
     * system.trees()).
     */
    void setRootBudgets(std::vector<Watts> budgets);

    /**
     * Recompute the default root-budget split from @p total_per_phase:
     * each phase's budget is divided evenly among the *live* feeds, so a
     * feed failure automatically routes the full phase budget to the
     * survivor (the N+N sizing rule of §2.1).
     */
    void refreshRootBudgets(Watts total_per_phase);

    /** Current root budgets. */
    const std::vector<Watts> &rootBudgets() const { return rootBudgets_; }

    /** 1 Hz sensing: every capping controller samples its sensors. */
    void senseTick();

    /**
     * Run one full control period: close controller periods, gather and
     * budget across every live tree, run SPO, apply per-supply budgets
     * through the PI loops. Returns the period's stats.
     */
    const PeriodStats &runControlPeriod();

    /** Stats from the most recent control period. */
    const PeriodStats &lastStats() const { return stats_; }

    /** Access a capping controller by server id. */
    ctrl::CappingController &controller(std::size_t server_id);

    /** The allocator (e.g., for reading interior node budgets). */
    const ctrl::FleetAllocator &allocator() const { return *allocator_; }

    /** The message plane, or nullptr outside message-plane mode. */
    DistributedControlPlane *plane() { return plane_.get(); }

    /** The message-plane transport, or nullptr outside that mode. */
    net::Transport *transport() { return transport_.get(); }

    /** Service configuration. */
    const ServiceConfig &config() const { return config_; }

    /**
     * Enable (or, with nullptrs, disable) telemetry across the whole
     * control plane: the service's own period metrics plus every
     * attached capping controller, the allocator, the message plane,
     * and the transport. Servers attached after this call are wired
     * automatically. Registration happens here, once — the
     * per-period instrumentation is plain slot writes, and with
     * telemetry disabled the control path performs no telemetry work
     * at all.
     */
    void enableTelemetry(telemetry::Registry *registry,
                         telemetry::PeriodTracer *tracer);

  private:
    struct AttachedServer
    {
        dev::ServerModel *server;
        dev::NodeManager *nm;
        std::unique_ptr<ctrl::CappingController> controller;
    };

    /** Demand-proportional per-phase budget re-split (extension). */
    void rebalanceRootBudgets(
        const std::vector<ctrl::ServerAllocInput> &inputs);

    /** One allocation over the message plane (§4.5 protocol). */
    void runPlanePeriod(const std::vector<ctrl::ServerAllocInput> &inputs);

    topo::PowerSystem &system_;
    ServiceConfig config_;
    std::unique_ptr<ctrl::FleetAllocator> allocator_;
    std::unique_ptr<net::Transport> transport_;
    std::unique_ptr<DistributedControlPlane> plane_;
    std::vector<AttachedServer> servers_;
    std::vector<Watts> rootBudgets_;
    PeriodStats stats_;

    /** Telemetry (null when disabled; handles cached at enable time). */
    telemetry::Registry *registry_ = nullptr;
    telemetry::PeriodTracer *tracer_ = nullptr;
    telemetry::HistogramMetric mPeriodWallMs_;
    telemetry::Counter mPeriods_;
    telemetry::Gauge mFleetDemand_;
    std::vector<telemetry::Gauge> mTreeBudget_;
};

} // namespace capmaestro::core

#endif // CAPMAESTRO_CORE_SERVICE_HH
