/**
 * @file
 * Worker-VM layout and scalability model (paper §5).
 *
 * A deployment groups controllers into worker VMs: one rack-level worker
 * per rack (6 CDU-level shifting controllers — 2 feeds x 3 phases — plus
 * one capping controller per server) and one room-level worker for RPPs,
 * transformers, and the contractual point. This module computes the
 * layout's controller/message counts and, given measured per-operation
 * costs, the per-control-period timing estimates the paper reports
 * (rack budgeting ~10 ms; room-level worker < 300 ms at 500 racks;
 * < 0.1 % of data center cores used).
 */

#ifndef CAPMAESTRO_CORE_WORKER_HH
#define CAPMAESTRO_CORE_WORKER_HH

#include <cstddef>

namespace capmaestro::core {

/** Shape parameters of a worker deployment. */
struct DeploymentShape
{
    std::size_t racks = 162;
    std::size_t serversPerRack = 45;
    std::size_t feeds = 2;
    std::size_t phases = 3;
    /** Interior (non-CDU) shifting controllers per (feed, phase) tree. */
    std::size_t upperControllersPerTree = 12; // 9 RPP + 2 xfmr + 1 root
    std::size_t coresPerRack = 1260;          // paper: 28-core x 45
};

/** Measured per-operation costs (from microbenchmarks), in microseconds. */
struct WorkerCosts
{
    /** Cost to aggregate one child's metrics during gathering. */
    double gatherPerChildUs = 1.0;
    /** Cost to budget one child during the budgeting phase. */
    double budgetPerChildUs = 1.0;
    /** One worker-to-worker message (metrics or budgets). */
    double messageUs = 200.0;
    /** One sensor read (IPMI round trip), amortized; done in parallel. */
    double senseUs = 20000.0;
};

/** Derived layout counts and timing estimates. */
struct WorkerLayout
{
    std::size_t rackWorkers = 0;
    std::size_t roomWorkers = 1;
    /** Controllers hosted per rack worker. */
    std::size_t cduControllersPerRack = 0;
    std::size_t cappingControllersPerRack = 0;
    /** Child links the room worker budgets across all trees. */
    std::size_t roomChildLinks = 0;
    /** Upstream messages per control period (rack -> room and back). */
    std::size_t messagesPerPeriod = 0;

    /** Estimated per-period timings (milliseconds). */
    double rackSenseMs = 0.0;
    double rackComputeMs = 0.0;
    double roomComputeMs = 0.0;
    /** Fraction of all data center cores reserved for power management. */
    double coreOverheadFraction = 0.0;
};

/** Compute the worker layout and timing estimates for a deployment. */
WorkerLayout planWorkers(const DeploymentShape &shape,
                         const WorkerCosts &costs);

} // namespace capmaestro::core

#endif // CAPMAESTRO_CORE_WORKER_HH
