/**
 * @file
 * Structured event log for control-plane observability.
 *
 * A production power manager must be auditable: when a breaker was
 * overloaded, when budgets became infeasible, what the stranded-power
 * optimizer reclaimed, and when failures struck. The simulator and the
 * service both append typed events here; tools print or filter them.
 */

#ifndef CAPMAESTRO_CORE_EVENTS_HH
#define CAPMAESTRO_CORE_EVENTS_HH

#include <ostream>
#include <string>
#include <vector>

#include "util/units.hh"

namespace capmaestro::core {

/** Event categories. */
enum class EventKind {
    FeedFailed,
    FeedRestored,
    SupplyFailed,
    SupplyRestored,
    BreakerOverloadBegan,
    BreakerOverloadCleared,
    BreakerTripped,
    BudgetInfeasible,
    SpoReclaimed,
    UtilityDisturbance,
    UpsBridged,
    EmergencyPeriod,
    StaleMetricsReused,
    MetricsLost,
    DefaultBudgetApplied,
    WorkerFailover,
    SpoFallback,
};

/** Name of an EventKind. */
const char *eventKindName(EventKind kind);

/** One logged event. */
struct Event
{
    Seconds time = 0;
    EventKind kind = EventKind::FeedFailed;
    /** What the event concerns (feed, breaker, server name). */
    std::string subject;
    /** Kind-specific magnitude (watts for overloads/SPO, index, ...). */
    double value = 0.0;
};

/** Append-only event log. */
class EventLog
{
  public:
    /** Append an event. */
    void record(Seconds time, EventKind kind, std::string subject,
                double value = 0.0);

    /** All events in record order. */
    const std::vector<Event> &events() const { return events_; }

    /** Events of one kind. */
    std::vector<Event> ofKind(EventKind kind) const;

    /** Number of events of one kind. */
    std::size_t count(EventKind kind) const;

    /** Render one line per event. */
    void print(std::ostream &os) const;

    /** Drop everything. */
    void clear() { events_.clear(); }

  private:
    std::vector<Event> events_;
};

} // namespace capmaestro::core

#endif // CAPMAESTRO_CORE_EVENTS_HH
