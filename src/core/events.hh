/**
 * @file
 * Structured event log for control-plane observability.
 *
 * A production power manager must be auditable: when a breaker was
 * overloaded, when budgets became infeasible, what the stranded-power
 * optimizer reclaimed, and when failures struck. The simulator and the
 * service both append typed events here; tools print or filter them.
 */

#ifndef CAPMAESTRO_CORE_EVENTS_HH
#define CAPMAESTRO_CORE_EVENTS_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.hh"
#include "util/units.hh"

namespace capmaestro::core {

/** Event categories. */
enum class EventKind {
    FeedFailed,
    FeedRestored,
    SupplyFailed,
    SupplyRestored,
    BreakerOverloadBegan,
    BreakerOverloadCleared,
    BreakerTripped,
    BudgetInfeasible,
    SpoReclaimed,
    UtilityDisturbance,
    UpsBridged,
    EmergencyPeriod,
    StaleMetricsReused,
    MetricsLost,
    DefaultBudgetApplied,
    WorkerFailover,
    SpoFallback,
    /** Room: frames from a dead or reincarnated rack instance. */
    WorkerRestartDetected,
    /** Rack: a Rehome checkpoint was replayed into the local plant. */
    CheckpointReplayed,
    /** Room: a re-homing rack acked its checkpoint and is live again. */
    WorkerRehomed,
    /** Rack: a Rehome frame was ignored (local state already intact). */
    RehomeDeclined,
    /** Online safety audit: committed budgets plus reserved floors
     *  exceeded the fragment's grant (value = overdraw in watts). */
    SafetyViolation,
    /** Root: a unit was announced Joining (value = new generation). */
    MembershipJoinBegan,
    /** Root: a unit was announced Draining (value = new generation). */
    MembershipDrainBegan,
    /** Root: a two-phase transition was committed — Joining became
     *  Live or Draining became Left (value = new generation). */
    MembershipCommitted,
    /** Non-root: a membership snapshot was adopted (value = its
     *  generation). */
    MembershipAdopted,
};

/** Name of an EventKind. */
const char *eventKindName(EventKind kind);

/** Reverse lookup by name; nullopt when the name matches no kind. */
std::optional<EventKind> eventKindFromName(const std::string &name);

/** One logged event. */
struct Event
{
    /** Monotonic sequence number, unique across the log's lifetime. */
    std::uint64_t seq = 0;
    Seconds time = 0;
    EventKind kind = EventKind::FeedFailed;
    /** What the event concerns (feed, breaker, server name). */
    std::string subject;
    /** Kind-specific magnitude (watts for overloads/SPO, index, ...). */
    double value = 0.0;
};

/** One event as a JSON object ({seq, time, kind, subject, value}). */
util::Json eventToJson(const Event &event);

/** Append-only event log. */
class EventLog
{
  public:
    /** Append an event. */
    void record(Seconds time, EventKind kind, std::string subject,
                double value = 0.0);

    /** All events in record order. */
    const std::vector<Event> &events() const { return events_; }

    /** Events of one kind. */
    std::vector<Event> ofKind(EventKind kind) const;

    /** Number of events of one kind. */
    std::size_t count(EventKind kind) const;

    /** Render one line per event. */
    void print(std::ostream &os) const;

    /** Render one compact JSON object per event (JSONL). */
    void printJsonl(std::ostream &os) const;

    /**
     * Drop recorded events. Sequence numbering continues where it left
     * off, so events recorded after a clear() are still ordered
     * relative to everything that came before.
     */
    void clear() { events_.clear(); }

  private:
    std::vector<Event> events_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace capmaestro::core

#endif // CAPMAESTRO_CORE_EVENTS_HH
