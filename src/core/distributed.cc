#include "core/distributed.hh"

#include <algorithm>

#include "util/logging.hh"

namespace capmaestro::core {

// ---------------------------------------------------------------- RackWorker

RackWorker::RackWorker(const topo::PowerSystem &system,
                       std::vector<topo::NodeId> edge_nodes,
                       ctrl::TreePolicy policy)
    : system_(system), policy_(policy)
{
    edges_.resize(edge_nodes.size());
    for (std::size_t t = 0; t < edge_nodes.size(); ++t) {
        Edge &edge = edges_[t];
        edge.node = edge_nodes[t];
        if (edge.node == topo::kNoNode)
            continue;
        const auto &tree = system_.tree(t);
        for (const topo::NodeId c : tree.node(edge.node).children) {
            const auto &child = tree.node(c);
            if (child.kind != topo::NodeKind::SupplyPort) {
                util::fatal("RackWorker: edge node %s has a non-leaf "
                            "child; mixed fan-out is not partitionable",
                            tree.node(edge.node).name.c_str());
            }
            edge.leaves.push_back(*child.supplyRef);
            ctrl::LeafInput dead;
            dead.live = false;
            edge.inputs.push_back(dead);
        }
        edge.leafMetrics.resize(edge.leaves.size());
        edge.leafBudgets.assign(edge.leaves.size(), 0.0);
    }
}

void
RackWorker::setLeafInput(std::size_t tree,
                         const topo::ServerSupplyRef &ref,
                         const ctrl::LeafInput &input)
{
    Edge &edge = edges_.at(tree);
    for (std::size_t i = 0; i < edge.leaves.size(); ++i) {
        if (edge.leaves[i] == ref) {
            edge.inputs[i] = input;
            return;
        }
    }
    util::panic("RackWorker: supply %d.%d not under this worker",
                ref.server, ref.supply);
}

void
RackWorker::refreshLeafMetrics(Edge &edge, std::size_t tree)
{
    const auto &topo_tree = system_.tree(tree);
    for (std::size_t i = 0; i < edge.leaves.size(); ++i) {
        ctrl::NodeMetrics m;
        const ctrl::LeafInput &in = edge.inputs[i];
        if (in.live) {
            // Identical to ControlTree's leaf handling.
            const topo::NodeId leaf_node =
                topo_tree.node(edge.node).children[i];
            const Watts demand = std::max(in.demand, in.capMin);
            const Watts constraint = std::min(
                in.constraint, topo_tree.node(leaf_node).limit());
            m.accumulate(in.priority, in.capMin, demand, demand);
            m.setConstraint(constraint);
        }
        edge.leafMetrics[i] = std::move(m);
    }
}

ctrl::NodeMetrics
RackWorker::computeMetrics(std::size_t tree)
{
    Edge &edge = edges_.at(tree);
    if (edge.node == topo::kNoNode)
        return {};
    refreshLeafMetrics(edge, tree);
    const Watts limit = system_.tree(tree).node(edge.node).limit();
    return ctrl::gatherMetrics(edge.leafMetrics, limit,
                               policy_.upperPriorityAware);
}

void
RackWorker::applyBudget(std::size_t tree, Watts budget)
{
    Edge &edge = edges_.at(tree);
    if (edge.node == topo::kNoNode)
        return;
    // Mirror ControlTree: never distribute beyond the device limit.
    const Watts usable = std::min(
        budget, system_.tree(tree).node(edge.node).limit());
    const auto split = ctrl::budgetChildren(usable, edge.leafMetrics,
                                            policy_.leafPriorityAware);
    edge.leafBudgets = split.childBudgets;
}

Watts
RackWorker::leafBudget(std::size_t tree,
                       const topo::ServerSupplyRef &ref) const
{
    const Edge &edge = edges_.at(tree);
    for (std::size_t i = 0; i < edge.leaves.size(); ++i) {
        if (edge.leaves[i] == ref)
            return edge.leafBudgets[i];
    }
    util::panic("RackWorker: supply %d.%d not under this worker",
                ref.server, ref.supply);
}

topo::NodeId
RackWorker::edgeNode(std::size_t tree) const
{
    return edges_.at(tree).node;
}

// ---------------------------------------------------------------- RoomWorker

RoomWorker::RoomWorker(
    const topo::PowerSystem &system,
    std::vector<std::map<topo::NodeId, std::size_t>> edge_owner,
    ctrl::TreePolicy policy)
    : system_(system), edgeOwner_(std::move(edge_owner)), policy_(policy)
{
}

ctrl::NodeMetrics
RoomWorker::gatherAbove(std::size_t tree, topo::NodeId node,
                        const std::map<std::size_t, ctrl::NodeMetrics>
                            &racks,
                        std::map<topo::NodeId, ctrl::NodeMetrics> &cache)
{
    const auto &owners = edgeOwner_.at(tree);
    const auto owner = owners.find(node);
    if (owner != owners.end()) {
        // Edge node: the rack worker's message is this node's metrics.
        const auto it = racks.find(owner->second);
        const ctrl::NodeMetrics m =
            it != racks.end() ? it->second : ctrl::NodeMetrics{};
        cache[node] = m;
        return m;
    }

    const auto &topo_tree = system_.tree(tree);
    const auto &tn = topo_tree.node(node);
    std::vector<ctrl::NodeMetrics> children;
    children.reserve(tn.children.size());
    for (const topo::NodeId c : tn.children)
        children.push_back(gatherAbove(tree, c, racks, cache));
    ctrl::NodeMetrics m = ctrl::gatherMetrics(
        children, tn.limit(), policy_.upperPriorityAware);
    cache[node] = m;
    return m;
}

void
RoomWorker::budgetAbove(std::size_t tree, topo::NodeId node, Watts budget,
                        const std::map<topo::NodeId, ctrl::NodeMetrics>
                            &cache,
                        std::map<std::size_t, Watts> &rack_budgets)
{
    const auto &owners = edgeOwner_.at(tree);
    const auto owner = owners.find(node);
    if (owner != owners.end()) {
        rack_budgets[owner->second] = budget;
        return;
    }

    const auto &topo_tree = system_.tree(tree);
    const auto &tn = topo_tree.node(node);
    std::vector<ctrl::NodeMetrics> children;
    children.reserve(tn.children.size());
    for (const topo::NodeId c : tn.children)
        children.push_back(cache.at(c));
    const Watts usable = std::min(budget, tn.limit());
    const auto split = ctrl::budgetChildren(usable, children,
                                            policy_.upperPriorityAware);
    for (std::size_t i = 0; i < tn.children.size(); ++i) {
        budgetAbove(tree, tn.children[i], split.childBudgets[i], cache,
                    rack_budgets);
    }
}

std::map<std::size_t, Watts>
RoomWorker::iterate(std::size_t tree,
                    const std::map<std::size_t, ctrl::NodeMetrics>
                        &rack_metrics,
                    Watts root_budget)
{
    const auto &topo_tree = system_.tree(tree);
    const topo::NodeId root = topo_tree.root();

    std::map<topo::NodeId, ctrl::NodeMetrics> cache;
    gatherAbove(tree, root, rack_metrics, cache);

    std::map<std::size_t, Watts> rack_budgets;
    const Watts budget =
        std::min(root_budget, topo_tree.node(root).limit());
    budgetAbove(tree, root, budget, cache, rack_budgets);
    return rack_budgets;
}

// --------------------------------------------------- DistributedControlPlane

std::vector<std::map<topo::NodeId, std::size_t>>
DistributedControlPlane::partition(const topo::PowerSystem &system)
{
    std::vector<std::map<topo::NodeId, std::size_t>> owners(
        system.trees().size());
    for (std::size_t t = 0; t < system.trees().size(); ++t) {
        std::size_t next = 0;
        system.tree(t).forEach([&](const topo::TopoNode &n) {
            bool leaf_parent = false;
            for (const topo::NodeId c : n.children) {
                if (system.tree(t).node(c).kind
                    == topo::NodeKind::SupplyPort) {
                    leaf_parent = true;
                }
            }
            if (leaf_parent)
                owners[t][n.id] = next++;
        });
    }
    return owners;
}

DistributedControlPlane::DistributedControlPlane(
    const topo::PowerSystem &system, ctrl::TreePolicy policy)
    : system_(system), policy_(policy),
      room_(system, partition(system), policy)
{
    const auto owners = partition(system);
    std::size_t rack_count = 0;
    for (const auto &per_tree : owners) {
        for (const auto &[node, rack] : per_tree)
            rack_count = std::max(rack_count, rack + 1);
    }

    std::vector<std::vector<topo::NodeId>> edges(
        rack_count,
        std::vector<topo::NodeId>(system.trees().size(), topo::kNoNode));
    for (std::size_t t = 0; t < owners.size(); ++t) {
        for (const auto &[node, rack] : owners[t])
            edges[rack][t] = node;
    }

    racks_.reserve(rack_count);
    for (std::size_t r = 0; r < rack_count; ++r)
        racks_.emplace_back(system_, edges[r], policy_);

    // Build leaf routing.
    for (std::size_t t = 0; t < owners.size(); ++t) {
        for (const auto &[node, rack] : owners[t]) {
            for (const topo::NodeId c :
                 system_.tree(t).node(node).children) {
                const auto &ref = *system_.tree(t).node(c).supplyRef;
                leafRouting_[{ref.server, ref.supply}] = {t, rack};
            }
        }
    }
}

void
DistributedControlPlane::setLeafInput(const topo::ServerSupplyRef &ref,
                                      const ctrl::LeafInput &input)
{
    const auto it = leafRouting_.find({ref.server, ref.supply});
    if (it == leafRouting_.end())
        util::panic("DistributedControlPlane: unknown supply %d.%d",
                    ref.server, ref.supply);
    racks_[it->second.second].setLeafInput(it->second.first, ref, input);
}

MessageStats
DistributedControlPlane::iterate(const std::vector<Watts> &root_budgets)
{
    if (root_budgets.size() != system_.trees().size()) {
        util::fatal("DistributedControlPlane: %zu budgets for %zu trees",
                    root_budgets.size(), system_.trees().size());
    }

    MessageStats stats;
    for (std::size_t t = 0; t < system_.trees().size(); ++t) {
        if (system_.feedFailed(system_.tree(t).feed()))
            continue;

        // Upstream: every rack with an edge in this tree sends metrics.
        std::map<std::size_t, ctrl::NodeMetrics> rack_metrics;
        for (std::size_t r = 0; r < racks_.size(); ++r) {
            if (racks_[r].edgeNode(t) == topo::kNoNode)
                continue;
            ctrl::NodeMetrics m = racks_[r].computeMetrics(t);
            ++stats.metricsMessages;
            stats.metricClassesSent += m.classes().size();
            rack_metrics.emplace(r, std::move(m));
        }

        // Room worker computes the upper tree and returns rack budgets.
        const auto rack_budgets =
            room_.iterate(t, rack_metrics, root_budgets[t]);

        // Downstream: budgets back to the rack workers.
        for (const auto &[rack, budget] : rack_budgets) {
            ++stats.budgetMessages;
            racks_[rack].applyBudget(t, budget);
        }
    }
    return stats;
}

Watts
DistributedControlPlane::leafBudget(const topo::ServerSupplyRef &ref) const
{
    const auto it = leafRouting_.find({ref.server, ref.supply});
    if (it == leafRouting_.end())
        util::panic("DistributedControlPlane: unknown supply %d.%d",
                    ref.server, ref.supply);
    return racks_[it->second.second].leafBudget(it->second.first, ref);
}

} // namespace capmaestro::core
