#include "core/distributed.hh"

#include <algorithm>
#include <limits>

#include "net/wire.hh"
#include "util/logging.hh"

namespace capmaestro::core {

const char *
degradedKindName(DegradedKind kind)
{
    switch (kind) {
      case DegradedKind::StaleMetricsReused:   return "stale-metrics";
      case DegradedKind::MetricsLost:          return "metrics-lost";
      case DegradedKind::DefaultBudgetApplied: return "default-budget";
      case DegradedKind::WorkerFailover:       return "worker-failover";
      case DegradedKind::SpoFallback:          return "spo-fallback";
    }
    return "unknown";
}

// ---------------------------------------------------------------- RackWorker

RackWorker::RackWorker(const topo::PowerSystem &system,
                       ctrl::TreePolicy policy)
    : system_(system), policy_(policy)
{
}

void
RackWorker::addEdge(std::size_t tree, topo::NodeId node)
{
    Edge edge;
    edge.tree = tree;
    edge.node = node;
    const auto &topo_tree = system_.tree(tree);
    for (const topo::NodeId c : topo_tree.node(node).children) {
        const auto &child = topo_tree.node(c);
        if (child.kind != topo::NodeKind::SupplyPort) {
            util::fatal("RackWorker: edge node %s has a non-leaf "
                        "child; mixed fan-out is not partitionable",
                        topo_tree.node(node).name.c_str());
        }
        edge.leaves.push_back(*child.supplyRef);
        ctrl::LeafInput dead;
        dead.live = false;
        edge.inputs.push_back(dead);
    }
    edge.leafMetrics.resize(edge.leaves.size());
    edge.leafBudgets.assign(edge.leaves.size(), 0.0);
    edges_.push_back(std::move(edge));
}

void
RackWorker::adoptEdge(Edge edge)
{
    edges_.push_back(std::move(edge));
}

std::vector<RackWorker::Edge>
RackWorker::releaseEdges()
{
    std::vector<Edge> out = std::move(edges_);
    edges_.clear();
    return out;
}

RackWorker::Edge &
RackWorker::findEdge(std::size_t tree, topo::NodeId node)
{
    for (Edge &edge : edges_) {
        if (edge.tree == tree && edge.node == node)
            return edge;
    }
    util::panic("RackWorker: edge %zu/%d not owned by this worker", tree,
                node);
}

const RackWorker::Edge &
RackWorker::findEdge(std::size_t tree, topo::NodeId node) const
{
    return const_cast<RackWorker *>(this)->findEdge(tree, node);
}

void
RackWorker::setLeafInput(std::size_t tree,
                         const topo::ServerSupplyRef &ref,
                         const ctrl::LeafInput &input)
{
    for (Edge &edge : edges_) {
        if (edge.tree != tree)
            continue;
        for (std::size_t i = 0; i < edge.leaves.size(); ++i) {
            if (edge.leaves[i] == ref) {
                edge.inputs[i] = input;
                return;
            }
        }
    }
    util::panic("RackWorker: supply %d.%d not under this worker",
                ref.server, ref.supply);
}

void
RackWorker::refreshLeafMetrics(Edge &edge)
{
    const auto &topo_tree = system_.tree(edge.tree);
    for (std::size_t i = 0; i < edge.leaves.size(); ++i) {
        ctrl::NodeMetrics m;
        const ctrl::LeafInput &in = edge.inputs[i];
        if (in.live) {
            // Identical to ControlTree's leaf handling.
            const topo::NodeId leaf_node =
                topo_tree.node(edge.node).children[i];
            const Watts demand = std::max(in.demand, in.capMin);
            const Watts constraint = std::min(
                in.constraint, topo_tree.node(leaf_node).limit());
            m.accumulate(in.priority, in.capMin, demand, demand);
            m.setConstraint(constraint);
        }
        edge.leafMetrics[i] = std::move(m);
    }
}

ctrl::NodeMetrics
RackWorker::computeMetrics(std::size_t tree, topo::NodeId node)
{
    Edge &edge = findEdge(tree, node);
    refreshLeafMetrics(edge);
    const Watts limit = system_.tree(tree).node(node).limit();
    return ctrl::gatherMetrics(edge.leafMetrics, limit,
                               policy_.upperPriorityAware);
}

void
RackWorker::applyBudget(std::size_t tree, topo::NodeId node, Watts budget)
{
    Edge &edge = findEdge(tree, node);
    // Mirror ControlTree: never distribute beyond the device limit.
    const Watts usable =
        std::min(budget, system_.tree(tree).node(node).limit());
    const auto split = ctrl::budgetChildren(usable, edge.leafMetrics,
                                            policy_.leafPriorityAware);
    edge.leafBudgets = split.childBudgets;
}

Watts
RackWorker::defaultBudget(std::size_t tree, topo::NodeId node) const
{
    const Edge &edge = findEdge(tree, node);
    Watts floor = 0.0;
    for (const ctrl::LeafInput &in : edge.inputs) {
        if (in.live)
            floor += in.capMin;
    }
    return std::min(floor, system_.tree(tree).node(node).limit());
}

Watts
RackWorker::leafBudget(std::size_t tree,
                       const topo::ServerSupplyRef &ref) const
{
    for (const Edge &edge : edges_) {
        if (edge.tree != tree)
            continue;
        for (std::size_t i = 0; i < edge.leaves.size(); ++i) {
            if (edge.leaves[i] == ref)
                return edge.leafBudgets[i];
        }
    }
    util::panic("RackWorker: supply %d.%d not under this worker",
                ref.server, ref.supply);
}

// ---------------------------------------------------------------- RoomWorker

RoomWorker::RoomWorker(const topo::PowerSystem &system,
                       std::vector<std::set<topo::NodeId>> edge_nodes,
                       ctrl::TreePolicy policy)
    : system_(system), edgeNodes_(std::move(edge_nodes)), policy_(policy),
      lastCache_(edgeNodes_.size())
{
}

RoomWorker::RoomWorker(const topo::PowerSystem &system,
                       std::vector<topo::NodeId> tops,
                       std::vector<std::set<topo::NodeId>> boundaries,
                       ctrl::TreePolicy policy)
    : system_(system), edgeNodes_(std::move(boundaries)),
      policy_(policy), tops_(std::move(tops)),
      lastCache_(edgeNodes_.size())
{
    if (tops_.size() != edgeNodes_.size()) {
        util::fatal("RoomWorker: %zu fragment tops for %zu boundary "
                    "sets",
                    tops_.size(), edgeNodes_.size());
    }
}

topo::NodeId
RoomWorker::topOf(std::size_t tree) const
{
    if (tops_.empty())
        return system_.tree(tree).root();
    const topo::NodeId top = tops_.at(tree);
    if (top == topo::kNoNode) {
        util::fatal("RoomWorker: no fragment in tree %zu", tree);
    }
    return top;
}

ctrl::NodeMetrics
RoomWorker::gatherAbove(std::size_t tree, topo::NodeId node,
                        const std::map<topo::NodeId, ctrl::NodeMetrics>
                            &edges,
                        std::map<topo::NodeId, ctrl::NodeMetrics> &cache)
{
    if (edgeNodes_.at(tree).count(node)) {
        // Edge node: the rack worker's message is this node's metrics.
        const auto it = edges.find(node);
        const ctrl::NodeMetrics m =
            it != edges.end() ? it->second : ctrl::NodeMetrics{};
        cache[node] = m;
        return m;
    }

    const auto &topo_tree = system_.tree(tree);
    const auto &tn = topo_tree.node(node);
    std::vector<ctrl::NodeMetrics> children;
    children.reserve(tn.children.size());
    for (const topo::NodeId c : tn.children)
        children.push_back(gatherAbove(tree, c, edges, cache));
    ctrl::NodeMetrics m = ctrl::gatherMetrics(
        children, tn.limit(), policy_.upperPriorityAware);
    cache[node] = m;
    return m;
}

void
RoomWorker::budgetAbove(std::size_t tree, topo::NodeId node, Watts budget,
                        const std::map<topo::NodeId, ctrl::NodeMetrics>
                            &cache,
                        std::map<topo::NodeId, Watts> &edge_budgets)
{
    if (edgeNodes_.at(tree).count(node)) {
        edge_budgets[node] = budget;
        return;
    }

    const auto &topo_tree = system_.tree(tree);
    const auto &tn = topo_tree.node(node);
    std::vector<ctrl::NodeMetrics> children;
    children.reserve(tn.children.size());
    for (const topo::NodeId c : tn.children)
        children.push_back(cache.at(c));
    const Watts usable = std::min(budget, tn.limit());
    const auto split = ctrl::budgetChildren(usable, children,
                                            policy_.upperPriorityAware);
    for (std::size_t i = 0; i < tn.children.size(); ++i) {
        budgetAbove(tree, tn.children[i], split.childBudgets[i], cache,
                    edge_budgets);
    }
}

ctrl::NodeMetrics
RoomWorker::gatherTop(std::size_t tree,
                      const std::map<topo::NodeId, ctrl::NodeMetrics>
                          &boundary_metrics)
{
    auto &cache = lastCache_.at(tree);
    cache.clear();
    return gatherAbove(tree, topOf(tree), boundary_metrics, cache);
}

std::map<topo::NodeId, Watts>
RoomWorker::budgetDown(std::size_t tree, Watts top_budget)
{
    const topo::NodeId top = topOf(tree);
    std::map<topo::NodeId, Watts> edge_budgets;
    // budgetAbove() clamps to the top's own limit, so an over-generous
    // (or unlimited-root) grant never overloads the fragment.
    const Watts budget =
        std::min(top_budget, system_.tree(tree).node(top).limit());
    budgetAbove(tree, top, budget, lastCache_.at(tree), edge_budgets);
    return edge_budgets;
}

std::map<topo::NodeId, Watts>
RoomWorker::iterate(std::size_t tree,
                    const std::map<topo::NodeId, ctrl::NodeMetrics>
                        &edge_metrics,
                    Watts root_budget)
{
    gatherTop(tree, edge_metrics);
    return budgetDown(tree, root_budget);
}

// --------------------------------------------------- DistributedControlPlane

std::vector<std::map<topo::NodeId, std::size_t>>
DistributedControlPlane::partition(const topo::PowerSystem &system)
{
    std::vector<std::map<topo::NodeId, std::size_t>> owners(
        system.trees().size());
    for (std::size_t t = 0; t < system.trees().size(); ++t) {
        std::size_t next = 0;
        system.tree(t).forEach([&](const topo::TopoNode &n) {
            bool leaf_parent = false;
            for (const topo::NodeId c : n.children) {
                if (system.tree(t).node(c).kind
                    == topo::NodeKind::SupplyPort) {
                    leaf_parent = true;
                }
            }
            if (leaf_parent)
                owners[t][n.id] = next++;
        });
    }
    return owners;
}

std::vector<std::map<std::size_t, topo::NodeId>>
DistributedControlPlane::partitionEdges(const topo::PowerSystem &system)
{
    const auto owners = partition(system);
    std::size_t rack_count = 0;
    for (const auto &per_tree : owners) {
        for (const auto &[node, rack] : per_tree)
            rack_count = std::max(rack_count, rack + 1);
    }
    std::vector<std::map<std::size_t, topo::NodeId>> per_rack(rack_count);
    for (std::size_t t = 0; t < owners.size(); ++t) {
        for (const auto &[node, rack] : owners[t]) {
            if (per_rack[rack].count(t)) {
                util::fatal("partitionEdges: rack worker %zu owns two "
                            "edges of tree %zu; this topology cannot be "
                            "deployed one-process-per-rack",
                            rack, t);
            }
            per_rack[rack][t] = node;
        }
    }
    return per_rack;
}

std::size_t
DistributedControlPlane::rackWorkerCountFor(const topo::PowerSystem &system)
{
    std::size_t rack_count = 0;
    for (const auto &per_tree : partition(system)) {
        for (const auto &[node, rack] : per_tree)
            rack_count = std::max(rack_count, rack + 1);
    }
    return rack_count;
}

namespace {

std::vector<std::set<topo::NodeId>>
edgeNodeSets(const std::vector<std::map<topo::NodeId, std::size_t>>
                 &owners)
{
    std::vector<std::set<topo::NodeId>> sets(owners.size());
    for (std::size_t t = 0; t < owners.size(); ++t) {
        for (const auto &[node, rack] : owners[t])
            sets[t].insert(node);
    }
    return sets;
}

} // namespace

DistributedControlPlane::DistributedControlPlane(
    const topo::PowerSystem &system, ctrl::TreePolicy policy,
    std::vector<std::uint32_t> agg_levels)
    : system_(system), policy_(policy),
      plan_(TreePlan::build(system, agg_levels)),
      // The root fragment's boundary: its child stations — which with
      // an empty plan are exactly the edge node sets of old.
      room_(system, plan_.boundariesOf(plan_.rootEndpoint()), policy)
{
    buildWorkers();
}

DistributedControlPlane::DistributedControlPlane(
    const topo::PowerSystem &system, ctrl::TreePolicy policy,
    net::Transport &transport, net::ProtocolConfig protocol,
    std::vector<std::uint32_t> agg_levels)
    : system_(system), policy_(policy),
      plan_(TreePlan::build(system, agg_levels)),
      room_(system, plan_.boundariesOf(plan_.rootEndpoint()), policy),
      transport_(&transport), protocol_(protocol)
{
    buildWorkers();
}

void
DistributedControlPlane::buildWorkers()
{
    const auto owners = partition(system_);
    std::size_t rack_count = 0;
    for (const auto &per_tree : owners) {
        for (const auto &[node, rack] : per_tree)
            rack_count = std::max(rack_count, rack + 1);
    }

    racks_.reserve(rack_count);
    for (std::size_t r = 0; r < rack_count; ++r)
        racks_.emplace_back(system_, policy_);

    for (std::size_t t = 0; t < owners.size(); ++t) {
        for (const auto &[node, rack] : owners[t]) {
            racks_[rack].addEdge(t, node);
            edgeOwner_[{t, node}] = rack;
            for (const topo::NodeId c :
                 system_.tree(t).node(node).children) {
                const auto &ref = *system_.tree(t).node(c).supplyRef;
                leafToRack_[{ref.server, ref.supply}] = rack;
            }
        }
    }

    rackSeq_.assign(rack_count, 0);
    rackFailed_.assign(rack_count, false);
    rackDeclaredDead_.assign(rack_count, false);
    missedHeartbeats_.assign(rack_count, 0);
    lastTreeMetrics_.assign(system_.trees().size(), {});

    // Aggregator fragments for deep plans: one RoomWorker per internal
    // non-root worker, cut at its stations and its children's.
    for (std::uint32_t ep = static_cast<std::uint32_t>(plan_.leafWorkers);
         ep < plan_.rootEndpoint(); ++ep) {
        aggs_.emplace_back(system_, plan_.topsOf(ep),
                           plan_.boundariesOf(ep), policy_);
    }
    aggSeq_.assign(aggs_.size(), 0);
}

net::Transport::Endpoint
DistributedControlPlane::roomEndpoint() const
{
    return static_cast<net::Transport::Endpoint>(racks_.size());
}

void
DistributedControlPlane::setTelemetry(telemetry::Registry *registry,
                                      telemetry::PeriodTracer *tracer)
{
    registry_ = registry;
    tracer_ = tracer;
    if (registry_ == nullptr) {
        metrics_ = {};
        return;
    }
    auto counter = [&](const char *name, const char *help) {
        return registry_->counter(name, {}, help);
    };
    metrics_.metricsMessages =
        counter("capmaestro_plane_metrics_messages_total",
                "Rack -> room metric messages (logical)");
    metrics_.budgetMessages =
        counter("capmaestro_plane_budget_messages_total",
                "Room -> rack budget messages (logical)");
    metrics_.metricClasses =
        counter("capmaestro_plane_metric_classes_total",
                "Priority classes serialized upstream");
    metrics_.heartbeats = counter("capmaestro_plane_heartbeats_total",
                                  "Heartbeat frames sent");
    metrics_.retries = counter("capmaestro_plane_retries_total",
                               "First-pass retransmissions");
    metrics_.bytes = counter("capmaestro_plane_bytes_total",
                             "Encoded payload bytes on the wire");
    metrics_.staleReuses =
        counter("capmaestro_plane_stale_reuses_total",
                "Edges served from a cached metric summary");
    metrics_.metricsLost = counter("capmaestro_plane_metrics_lost_total",
                                   "Edges whose metrics were unusable");
    metrics_.defaultBudgets =
        counter("capmaestro_plane_default_budgets_total",
                "Edges that fell back to the Pcap_min default budget");
    metrics_.orphanFrames =
        counter("capmaestro_plane_orphan_frames_total",
                "Frames discarded for epoch/type mismatch");
    metrics_.corruptFrames =
        counter("capmaestro_plane_corrupt_frames_total",
                "Frames that failed to decode");
    metrics_.spoRounds = counter("capmaestro_plane_spo_rounds_total",
                                 "SPO rounds run");
    metrics_.spoSummaryMessages =
        counter("capmaestro_plane_spo_summary_messages_total",
                "Rack -> room pinned-summary messages");
    metrics_.spoBudgetMessages =
        counter("capmaestro_plane_spo_budget_messages_total",
                "Room -> rack second-pass budget messages");
    metrics_.spoRetries = counter("capmaestro_plane_spo_retries_total",
                                  "SPO-phase retransmissions");
    metrics_.spoTreesAttempted =
        counter("capmaestro_plane_spo_trees_attempted_total",
                "Trees that entered an SPO round");
    metrics_.spoCommittedTrees =
        counter("capmaestro_plane_spo_committed_trees_total",
                "Trees that committed second-pass budgets");
    metrics_.spoFallbackTrees =
        counter("capmaestro_plane_spo_fallback_trees_total",
                "Trees that rolled back to first-pass budgets");
    metrics_.spoBytes = counter("capmaestro_plane_spo_bytes_total",
                                "Encoded SPO bytes on the wire");
    metrics_.degradedDecisions =
        counter("capmaestro_plane_degraded_decisions_total",
                "Degraded-mode (§4.5) decisions taken");
    metrics_.liveWorkers =
        registry_->gauge("capmaestro_plane_live_workers", {},
                         "Rack workers not declared dead");
    metrics_.epoch = registry_->gauge("capmaestro_plane_epoch", {},
                                      "Current control-period epoch");
}

void
DistributedControlPlane::recordIterationMetrics(const MessageStats &stats)
{
    if (registry_ == nullptr)
        return;
    const auto n = [](std::size_t v) { return static_cast<double>(v); };
    metrics_.metricsMessages.inc(n(stats.metricsMessages));
    metrics_.budgetMessages.inc(n(stats.budgetMessages));
    metrics_.metricClasses.inc(n(stats.metricClassesSent));
    metrics_.heartbeats.inc(n(stats.heartbeatMessages));
    metrics_.retries.inc(n(stats.retries));
    metrics_.bytes.inc(n(stats.bytesOnWire));
    metrics_.staleReuses.inc(n(stats.staleReuses));
    metrics_.metricsLost.inc(n(stats.metricsLost));
    metrics_.defaultBudgets.inc(n(stats.defaultBudgets));
    metrics_.orphanFrames.inc(n(stats.orphanFrames));
    metrics_.corruptFrames.inc(n(stats.corruptFrames));
    metrics_.degradedDecisions.inc(n(stats.degraded.size()));
    metrics_.liveWorkers.set(n(liveWorkerCount()));
    metrics_.epoch.set(static_cast<double>(epoch_));
}

void
DistributedControlPlane::recordSpoMetrics(const MessageStats &before,
                                          const MessageStats &after)
{
    if (registry_ == nullptr)
        return;
    // iterateSpo accumulates into the caller's MessageStats (the same
    // object iterate() filled, possibly across several SPO rounds), so
    // only the growth since entry may be added to the counters.
    const auto delta = [](std::size_t b, std::size_t a) {
        return static_cast<double>(a - b);
    };
    metrics_.spoRounds.inc(delta(before.spoRounds, after.spoRounds));
    metrics_.spoSummaryMessages.inc(
        delta(before.spoSummaryMessages, after.spoSummaryMessages));
    metrics_.spoBudgetMessages.inc(
        delta(before.spoBudgetMessages, after.spoBudgetMessages));
    metrics_.spoRetries.inc(delta(before.spoRetries, after.spoRetries));
    metrics_.spoTreesAttempted.inc(
        delta(before.spoTreesAttempted, after.spoTreesAttempted));
    metrics_.spoCommittedTrees.inc(
        delta(before.spoCommittedTrees, after.spoCommittedTrees));
    metrics_.spoFallbackTrees.inc(
        delta(before.spoFallbackTrees, after.spoFallbackTrees));
    metrics_.spoBytes.inc(delta(before.spoBytesOnWire,
                                after.spoBytesOnWire));
    metrics_.bytes.inc(delta(before.bytesOnWire, after.bytesOnWire));
    metrics_.orphanFrames.inc(delta(before.orphanFrames,
                                    after.orphanFrames));
    metrics_.corruptFrames.inc(delta(before.corruptFrames,
                                     after.corruptFrames));
    metrics_.degradedDecisions.inc(
        delta(before.degraded.size(), after.degraded.size()));
}

std::size_t
DistributedControlPlane::liveWorkerCount() const
{
    std::size_t n = 0;
    for (std::size_t r = 0; r < racks_.size(); ++r)
        n += rackDeclaredDead_[r] ? 0 : 1;
    return n;
}

void
DistributedControlPlane::setLeafInput(const topo::ServerSupplyRef &ref,
                                      const ctrl::LeafInput &input)
{
    const auto it = leafToRack_.find({ref.server, ref.supply});
    if (it == leafToRack_.end())
        util::panic("DistributedControlPlane: unknown supply %d.%d",
                    ref.server, ref.supply);
    // A leaf lives in exactly one of the owning rack's edges.
    for (const RackWorker::Edge &edge : racks_[it->second].edges()) {
        for (const auto &leaf : edge.leaves) {
            if (leaf == ref) {
                racks_[it->second].setLeafInput(edge.tree, ref, input);
                return;
            }
        }
    }
    util::panic("DistributedControlPlane: supply %d.%d not routed",
                ref.server, ref.supply);
}

void
DistributedControlPlane::failWorker(std::size_t rack)
{
    if (rack >= racks_.size())
        util::panic("DistributedControlPlane: bad rack %zu", rack);
    if (plan_.tiers() > 2) {
        // Heartbeat failover / re-homing stays a 2-level plane
        // feature; deep deployments test worker death at the runtime
        // level (rt::WorkerRuntime), which owns checkpoints.
        util::fatal("DistributedControlPlane: failWorker is not "
                    "supported on a deep plan");
    }
    rackFailed_[rack] = true;
}

bool
DistributedControlPlane::workerDeclaredDead(std::size_t rack) const
{
    if (rack >= racks_.size())
        util::panic("DistributedControlPlane: bad rack %zu", rack);
    return rackDeclaredDead_[rack];
}

void
DistributedControlPlane::rehomeWorker(std::size_t rack,
                                      MessageStats &stats)
{
    rackDeclaredDead_[rack] = true;

    // Adopt onto the live worker hosting the fewest edges (lowest
    // index on ties) so failover load stays balanced and deterministic.
    std::size_t adopter = racks_.size();
    std::size_t best_edges = std::numeric_limits<std::size_t>::max();
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        if (r == rack || rackDeclaredDead_[r] || rackFailed_[r])
            continue;
        if (racks_[r].edges().size() < best_edges) {
            best_edges = racks_[r].edges().size();
            adopter = r;
        }
    }

    DegradedDecision d;
    d.kind = DegradedKind::WorkerFailover;
    d.rack = rack;
    d.value = adopter < racks_.size()
                  ? static_cast<double>(adopter)
                  : -1.0;
    stats.degraded.push_back(d);

    if (adopter >= racks_.size()) {
        util::warn("DistributedControlPlane: worker %zu dead with no "
                   "live peer to adopt its edges", rack);
        return;
    }

    for (RackWorker::Edge &edge : racks_[rack].releaseEdges()) {
        edgeOwner_[{edge.tree, edge.node}] = adopter;
        for (const auto &ref : edge.leaves)
            leafToRack_[{ref.server, ref.supply}] = adopter;
        racks_[adopter].adoptEdge(std::move(edge));
    }
}

MessageStats
DistributedControlPlane::iterate(const std::vector<Watts> &root_budgets)
{
    if (root_budgets.size() != system_.trees().size()) {
        util::fatal("DistributedControlPlane: %zu budgets for %zu trees",
                    root_budgets.size(), system_.trees().size());
    }
    MessageStats stats;
    if (plan_.tiers() > 2) {
        stats = transport_ ? iterateTransportDeep(root_budgets)
                           : iterateDirectDeep(root_budgets);
    } else {
        stats = transport_ ? iterateTransport(root_budgets)
                           : iterateDirect(root_budgets);
    }
    recordIterationMetrics(stats);
    return stats;
}

MessageStats
DistributedControlPlane::iterateDirect(
    const std::vector<Watts> &root_budgets)
{
    MessageStats stats;
    const auto iterate_span =
        tracer_ ? tracer_->begin("iterate") : telemetry::PeriodTracer::kNoSpan;
    lastTreeMetrics_.assign(system_.trees().size(), {});
    for (std::size_t t = 0; t < system_.trees().size(); ++t) {
        if (system_.feedFailed(system_.tree(t).feed()))
            continue;
        const auto tree_span =
            tracer_ ? tracer_->begin("tree", iterate_span)
                    : telemetry::PeriodTracer::kNoSpan;

        // Upstream: every edge in this tree reports metrics.
        std::map<topo::NodeId, ctrl::NodeMetrics> edge_metrics;
        for (const auto &[key, rack] : edgeOwner_) {
            if (key.first != t)
                continue;
            ctrl::NodeMetrics m =
                racks_[rack].computeMetrics(t, key.second);
            ++stats.metricsMessages;
            stats.metricClassesSent += m.classes().size();
            edge_metrics.emplace(key.second, std::move(m));
        }

        // Room worker computes the upper tree and returns edge budgets.
        const auto edge_budgets =
            room_.iterate(t, edge_metrics, root_budgets[t]);
        lastTreeMetrics_[t] = std::move(edge_metrics);

        // Downstream: budgets back to the owning rack workers.
        for (const auto &[node, budget] : edge_budgets) {
            ++stats.budgetMessages;
            racks_[edgeOwner_.at({t, node})].applyBudget(t, node, budget);
        }
        if (tracer_) {
            tracer_->num(tree_span, "tree", static_cast<double>(t));
            tracer_->num(tree_span, "edges",
                         static_cast<double>(edge_budgets.size()));
            tracer_->end(tree_span);
        }
    }
    if (tracer_) {
        tracer_->num(iterate_span, "metrics_messages",
                     static_cast<double>(stats.metricsMessages));
        tracer_->num(iterate_span, "budget_messages",
                     static_cast<double>(stats.budgetMessages));
        tracer_->end(iterate_span);
    }
    return stats;
}

MessageStats
DistributedControlPlane::iterateTransport(
    const std::vector<Watts> &root_budgets)
{
    MessageStats stats;
    net::Transport &tp = *transport_;
    ++epoch_;
    const std::size_t bytes_before = tp.stats().bytesSent;
    const double start = tp.nowMs();
    const net::Transport::Endpoint room = roomEndpoint();

    const auto gather_span =
        tracer_ ? tracer_->begin("gather") : telemetry::PeriodTracer::kNoSpan;
    if (tracer_) {
        tracer_->num(gather_span, "deadline_ms",
                     protocol_.gatherDeadlineMs);
    }

    const auto tree_live = [&](std::size_t t) {
        return !system_.feedFailed(system_.tree(t).feed());
    };

    // ---------------- upstream: heartbeats + per-edge metrics
    struct PendingUp
    {
        std::size_t tree;
        topo::NodeId node;
        std::size_t rack;
        std::vector<std::uint8_t> frame;
    };
    std::vector<PendingUp> pending_up;
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        if (rackFailed_[r] || rackDeclaredDead_[r])
            continue;
        tp.send(static_cast<net::Transport::Endpoint>(r), room,
                net::encodeHeartbeat(
                    {static_cast<std::uint16_t>(r), epoch_,
                     rackSeq_[r]++}));
        ++stats.heartbeatMessages;
        for (const RackWorker::Edge &edge : racks_[r].edges()) {
            if (!tree_live(edge.tree))
                continue;
            net::MetricsMsg msg;
            msg.tree = static_cast<std::uint16_t>(edge.tree);
            msg.edgeNode = static_cast<std::uint32_t>(edge.node);
            msg.metrics = racks_[r].computeMetrics(edge.tree, edge.node);
            ++stats.metricsMessages;
            stats.metricClassesSent += msg.metrics.classes().size();
            auto frame = net::encodeMetrics(
                {static_cast<std::uint16_t>(r), epoch_, rackSeq_[r]++},
                msg);
            tp.send(static_cast<net::Transport::Endpoint>(r), room,
                    frame);
            pending_up.push_back(
                {edge.tree, edge.node, r, std::move(frame)});
        }
    }

    std::map<std::pair<std::size_t, topo::NodeId>, ctrl::NodeMetrics>
        fresh;
    std::set<std::size_t> heard;
    const auto poll_room = [&] {
        for (const auto &bytes : tp.poll(room)) {
            const auto frame = net::decodeFrame(bytes);
            if (!frame) {
                ++stats.corruptFrames;
                continue;
            }
            if (frame->epoch != epoch_) {
                ++stats.orphanFrames;
                continue;
            }
            if (frame->sender < racks_.size())
                heard.insert(frame->sender);
            if (frame->type == net::MsgType::Metrics) {
                fresh[{frame->metrics.tree,
                       static_cast<topo::NodeId>(
                           frame->metrics.edgeNode)}] =
                    frame->metrics.metrics;
            }
        }
    };

    const double gather_deadline = start + protocol_.gatherDeadlineMs;
    for (int attempt = 1; attempt < protocol_.maxAttempts; ++attempt) {
        const double next = start + attempt * protocol_.retryTimeoutMs;
        if (next >= gather_deadline)
            break;
        tp.advanceTo(next);
        poll_room();
        bool all_in = true;
        for (const PendingUp &up : pending_up) {
            if (fresh.count({up.tree, up.node}))
                continue;
            all_in = false;
            ++stats.retries;
            tp.send(static_cast<net::Transport::Endpoint>(up.rack),
                    room, up.frame);
        }
        if (all_in)
            break;
    }
    tp.advanceTo(gather_deadline);
    poll_room();

    // Liveness: any frame from a rack counts as its heartbeat.
    for (std::size_t r = 0; r < racks_.size(); ++r) {
        if (rackDeclaredDead_[r])
            continue;
        if (heard.count(r)) {
            missedHeartbeats_[r] = 0;
        } else if (++missedHeartbeats_[r]
                   >= protocol_.heartbeatFailAfter) {
            rehomeWorker(r, stats);
        }
    }

    // Assemble per-tree edge metrics with §4.5 stale fallback.
    std::vector<std::map<topo::NodeId, ctrl::NodeMetrics>> tree_metrics(
        system_.trees().size());
    for (const auto &[key, rack] : edgeOwner_) {
        const auto [t, node] = key;
        if (!tree_live(t))
            continue;
        const auto got = fresh.find(key);
        if (got != fresh.end()) {
            tree_metrics[t][node] = got->second;
            metricCache_[key] = {got->second, epoch_, true};
            continue;
        }
        const auto cached = metricCache_.find(key);
        const std::uint32_t age =
            cached != metricCache_.end() && cached->second.valid
                ? epoch_ - cached->second.epoch
                : 0;
        if (cached != metricCache_.end() && cached->second.valid
            && age <= static_cast<std::uint32_t>(
                   protocol_.staleAgeCapPeriods)) {
            tree_metrics[t][node] = cached->second.metrics;
            ++stats.staleReuses;
            stats.degraded.push_back({DegradedKind::StaleMetricsReused,
                                      t, node, rack,
                                      static_cast<double>(age)});
        } else {
            // Too old (or never seen): the edge contributes nothing.
            ++stats.metricsLost;
            stats.degraded.push_back(
                {DegradedKind::MetricsLost, t, node, rack,
                 static_cast<double>(age)});
        }
    }

    // The SPO round (if any) overlays pinned summaries on this view.
    lastTreeMetrics_ = tree_metrics;

    const std::size_t gather_retries = stats.retries;
    if (tracer_) {
        tracer_->num(gather_span, "messages",
                     static_cast<double>(stats.metricsMessages));
        tracer_->num(gather_span, "heartbeats",
                     static_cast<double>(stats.heartbeatMessages));
        tracer_->num(gather_span, "retries",
                     static_cast<double>(gather_retries));
        tracer_->num(gather_span, "stale",
                     static_cast<double>(stats.staleReuses));
        tracer_->num(gather_span, "lost",
                     static_cast<double>(stats.metricsLost));
        tracer_->end(gather_span);
    }

    const auto budget_span =
        tracer_ ? tracer_->begin("budget") : telemetry::PeriodTracer::kNoSpan;
    if (tracer_) {
        tracer_->num(budget_span, "deadline_ms",
                     protocol_.budgetDeadlineMs);
    }

    // ---------------- room compute + downstream budgets
    struct PendingDown
    {
        std::size_t tree;
        topo::NodeId node;
        std::size_t rack;
        std::vector<std::uint8_t> frame;
    };
    std::vector<PendingDown> pending_down;
    for (std::size_t t = 0; t < system_.trees().size(); ++t) {
        if (!tree_live(t))
            continue;
        const auto edge_budgets =
            room_.iterate(t, tree_metrics[t], root_budgets[t]);
        for (const auto &[node, budget] : edge_budgets) {
            const std::size_t rack = edgeOwner_.at({t, node});
            if (rackFailed_[rack] || rackDeclaredDead_[rack])
                continue; // nobody home to receive it
            net::BudgetMsg msg;
            msg.tree = static_cast<std::uint16_t>(t);
            msg.edgeNode = static_cast<std::uint32_t>(node);
            msg.budget = budget;
            ++stats.budgetMessages;
            auto frame = net::encodeBudget(
                {net::kRoomSender, epoch_, roomSeq_++}, msg);
            tp.send(room, static_cast<net::Transport::Endpoint>(rack),
                    frame);
            pending_down.push_back({t, node, rack, std::move(frame)});
        }
    }

    std::set<std::pair<std::size_t, topo::NodeId>> applied;
    const auto poll_racks = [&] {
        for (std::size_t r = 0; r < racks_.size(); ++r) {
            const auto frames =
                tp.poll(static_cast<net::Transport::Endpoint>(r));
            if (rackFailed_[r])
                continue; // dead process: frames drain unread
            for (const auto &bytes : frames) {
                const auto frame = net::decodeFrame(bytes);
                if (!frame) {
                    ++stats.corruptFrames;
                    continue;
                }
                if (frame->epoch != epoch_
                    || frame->type != net::MsgType::Budget) {
                    ++stats.orphanFrames;
                    continue;
                }
                const std::size_t t = frame->budget.tree;
                const auto node =
                    static_cast<topo::NodeId>(frame->budget.edgeNode);
                if (applied.count({t, node}))
                    continue; // duplicate delivery
                // Re-homed mid-period races are impossible (failover
                // happens before budgets go out), so the owner check
                // is a pure integrity assertion.
                const auto owner = edgeOwner_.find({t, node});
                if (owner == edgeOwner_.end() || owner->second != r) {
                    ++stats.orphanFrames;
                    continue;
                }
                racks_[r].applyBudget(t, node, frame->budget.budget);
                applied.insert({t, node});
            }
        }
    };

    const double budget_start = tp.nowMs();
    const double budget_deadline =
        budget_start + protocol_.budgetDeadlineMs;
    for (int attempt = 1; attempt < protocol_.maxAttempts; ++attempt) {
        const double next =
            budget_start + attempt * protocol_.retryTimeoutMs;
        if (next >= budget_deadline)
            break;
        tp.advanceTo(next);
        poll_racks();
        bool all_in = true;
        for (const PendingDown &down : pending_down) {
            if (applied.count({down.tree, down.node}))
                continue;
            all_in = false;
            ++stats.retries;
            tp.send(room,
                    static_cast<net::Transport::Endpoint>(down.rack),
                    down.frame);
        }
        if (all_in)
            break;
    }
    tp.advanceTo(budget_deadline);
    poll_racks();

    // §4.5 default budgets: a live rack whose edge saw no budget by the
    // deadline falls back to its Pcap_min floor.
    for (const auto &[key, rack] : edgeOwner_) {
        const auto [t, node] = key;
        if (!tree_live(t) || rackFailed_[rack]
            || rackDeclaredDead_[rack]) {
            continue;
        }
        if (applied.count(key))
            continue;
        const Watts fallback = racks_[rack].defaultBudget(t, node);
        racks_[rack].applyBudget(t, node, fallback);
        ++stats.defaultBudgets;
        stats.degraded.push_back(
            {DegradedKind::DefaultBudgetApplied, t, node, rack,
             fallback});
    }

    stats.bytesOnWire = tp.stats().bytesSent - bytes_before;
    if (tracer_) {
        tracer_->num(budget_span, "messages",
                     static_cast<double>(stats.budgetMessages));
        tracer_->num(budget_span, "retries",
                     static_cast<double>(stats.retries - gather_retries));
        tracer_->num(budget_span, "defaults",
                     static_cast<double>(stats.defaultBudgets));
        tracer_->end(budget_span);
        for (const DegradedDecision &d : stats.degraded) {
            const auto span = tracer_->begin("degraded");
            tracer_->str(span, "kind", degradedKindName(d.kind));
            tracer_->num(span, "tree", static_cast<double>(d.tree));
            tracer_->num(span, "rack", static_cast<double>(d.rack));
            tracer_->num(span, "value", d.value);
            tracer_->end(span);
        }
    }
    return stats;
}

std::map<std::size_t, std::set<topo::NodeId>>
DistributedControlPlane::pinnedEdges(
    const std::vector<ctrl::SpoPin> &pins) const
{
    std::map<std::size_t, std::set<topo::NodeId>> affected;
    for (const ctrl::SpoPin &pin : pins) {
        const auto it =
            leafToRack_.find({pin.ref.server, pin.ref.supply});
        if (it == leafToRack_.end()) {
            util::panic("DistributedControlPlane: unknown pinned supply "
                        "%d.%d", pin.ref.server, pin.ref.supply);
        }
        for (const RackWorker::Edge &edge : racks_[it->second].edges()) {
            if (edge.tree != pin.tree)
                continue;
            for (const auto &leaf : edge.leaves) {
                if (leaf == pin.ref) {
                    affected[pin.tree].insert(edge.node);
                    break;
                }
            }
        }
    }
    return affected;
}

std::set<std::size_t>
DistributedControlPlane::iterateSpo(const std::vector<Watts> &root_budgets,
                                    const std::vector<ctrl::SpoPin> &pins,
                                    MessageStats &stats)
{
    if (root_budgets.size() != system_.trees().size()) {
        util::fatal("DistributedControlPlane: %zu budgets for %zu trees",
                    root_budgets.size(), system_.trees().size());
    }
    if (plan_.tiers() > 2 && !pins.empty()) {
        // The §4.4 second round is a room <-> rack exchange; deep
        // plans run SPO-free until the round learns to hop tiers.
        util::fatal("DistributedControlPlane: iterateSpo is not "
                    "supported on a deep plan");
    }
    MessageStats before;
    if (registry_ != nullptr)
        before = stats;
    const auto committed =
        transport_ ? iterateSpoTransport(root_budgets, pins, stats)
                   : iterateSpoDirect(root_budgets, pins, stats);
    recordSpoMetrics(before, stats);
    return committed;
}

std::set<std::size_t>
DistributedControlPlane::iterateSpoDirect(
    const std::vector<Watts> &root_budgets,
    const std::vector<ctrl::SpoPin> &pins, MessageStats &stats)
{
    std::set<std::size_t> committed;
    if (pins.empty())
        return committed;
    ++stats.spoRounds;
    const auto spo_span =
        tracer_ ? tracer_->begin("spo") : telemetry::PeriodTracer::kNoSpan;

    // The per-server capping controllers pin their stranded supplies;
    // the link to the owning rack worker is local (paper §5: capping
    // controllers are colocated), so no frames travel for this step.
    for (const ctrl::SpoPin &pin : pins) {
        setLeafInput(pin.ref,
                     ctrl::pinnedLeafInput(pin.priority, pin.consumption));
    }

    // Only pinned edges re-report: an unpinned edge's inputs are
    // unchanged, so recomputing its metrics would reproduce the
    // first-phase summary bit for bit. Trees without pins are skipped
    // entirely for the same reason.
    for (const auto &[t, nodes] : pinnedEdges(pins)) {
        ++stats.spoTreesAttempted;
        auto base = lastTreeMetrics_[t];
        for (const topo::NodeId node : nodes) {
            const std::size_t rack = edgeOwner_.at({t, node});
            ++stats.spoSummaryMessages;
            base[node] = racks_[rack].computeMetrics(t, node);
        }

        const auto edge_budgets =
            room_.iterate(t, base, root_budgets[t]);
        lastTreeMetrics_[t] = std::move(base);

        for (const auto &[node, budget] : edge_budgets) {
            ++stats.spoBudgetMessages;
            racks_[edgeOwner_.at({t, node})].applyBudget(t, node, budget);
        }
        committed.insert(t);
        ++stats.spoCommittedTrees;
    }
    if (tracer_) {
        tracer_->num(spo_span, "pins", static_cast<double>(pins.size()));
        tracer_->num(spo_span, "committed",
                     static_cast<double>(committed.size()));
        tracer_->end(spo_span);
    }
    return committed;
}

std::set<std::size_t>
DistributedControlPlane::iterateSpoTransport(
    const std::vector<Watts> &root_budgets,
    const std::vector<ctrl::SpoPin> &pins, MessageStats &stats)
{
    std::set<std::size_t> committed;
    if (pins.empty())
        return committed;
    ++stats.spoRounds;

    net::Transport &tp = *transport_;
    const std::size_t bytes_before = tp.stats().bytesSent;
    const net::Transport::Endpoint room = roomEndpoint();
    const std::size_t spo_retries_entry = stats.spoRetries;
    const auto spo_gather_span =
        tracer_ ? tracer_->begin("spo.gather")
                : telemetry::PeriodTracer::kNoSpan;
    if (tracer_) {
        tracer_->num(spo_gather_span, "deadline_ms",
                     protocol_.spoGatherDeadlineMs);
        tracer_->num(spo_gather_span, "pins",
                     static_cast<double>(pins.size()));
    }

    // Pin inputs locally (see iterateSpoDirect); a failed rack keeps
    // the state but cannot report it, so its trees will fall back.
    for (const ctrl::SpoPin &pin : pins) {
        setLeafInput(pin.ref,
                     ctrl::pinnedLeafInput(pin.priority, pin.consumption));
    }
    const auto affected = pinnedEdges(pins);

    // ---------------- upstream: pinned summaries from affected edges
    struct PendingUp
    {
        std::size_t tree;
        topo::NodeId node;
        std::size_t rack;
        std::vector<std::uint8_t> frame;
    };
    std::vector<PendingUp> pending_up;
    std::set<std::pair<std::size_t, topo::NodeId>> unreachable;
    for (const auto &[t, nodes] : affected) {
        ++stats.spoTreesAttempted;
        for (const topo::NodeId node : nodes) {
            const std::size_t rack = edgeOwner_.at({t, node});
            if (rackFailed_[rack] || rackDeclaredDead_[rack]) {
                unreachable.insert({t, node});
                continue;
            }
            net::MetricsMsg msg;
            msg.tree = static_cast<std::uint16_t>(t);
            msg.edgeNode = static_cast<std::uint32_t>(node);
            msg.metrics = racks_[rack].computeMetrics(t, node);
            ++stats.spoSummaryMessages;
            auto frame = net::encodePinnedSummary(
                {static_cast<std::uint16_t>(rack), epoch_,
                 rackSeq_[rack]++},
                msg);
            tp.send(static_cast<net::Transport::Endpoint>(rack), room,
                    frame);
            pending_up.push_back({t, node, rack, std::move(frame)});
        }
    }

    std::map<std::pair<std::size_t, topo::NodeId>, ctrl::NodeMetrics>
        fresh;
    const auto poll_room = [&] {
        for (const auto &bytes : tp.poll(room)) {
            const auto frame = net::decodeFrame(bytes);
            if (!frame) {
                ++stats.corruptFrames;
                continue;
            }
            // Late first-phase traffic and old epochs are both dead
            // weight here; neither may masquerade as a pinned summary.
            if (frame->epoch != epoch_
                || frame->type != net::MsgType::PinnedSummary) {
                ++stats.orphanFrames;
                continue;
            }
            fresh[{frame->metrics.tree,
                   static_cast<topo::NodeId>(frame->metrics.edgeNode)}] =
                frame->metrics.metrics;
        }
    };

    const double spo_start = tp.nowMs();
    const double gather_deadline =
        spo_start + protocol_.spoGatherDeadlineMs;
    for (int attempt = 1; attempt < protocol_.maxAttempts; ++attempt) {
        const double next = spo_start + attempt * protocol_.retryTimeoutMs;
        if (next >= gather_deadline)
            break;
        tp.advanceTo(next);
        poll_room();
        bool all_in = true;
        for (const PendingUp &up : pending_up) {
            if (fresh.count({up.tree, up.node}))
                continue;
            all_in = false;
            ++stats.spoRetries;
            tp.send(static_cast<net::Transport::Endpoint>(up.rack),
                    room, up.frame);
        }
        if (all_in)
            break;
    }
    tp.advanceTo(gather_deadline);
    poll_room();

    // A tree may only be re-budgeted from a complete second-pass view:
    // any missing pinned summary aborts the tree before a single budget
    // goes out, so it keeps its first-pass budgets wholesale.
    std::set<std::size_t> gather_ok;
    for (const auto &[t, nodes] : affected) {
        bool ok = true;
        for (const topo::NodeId node : nodes) {
            if (unreachable.count({t, node}) || !fresh.count({t, node})) {
                ok = false;
                break;
            }
        }
        if (ok) {
            gather_ok.insert(t);
        } else {
            ++stats.spoFallbackTrees;
            stats.degraded.push_back({DegradedKind::SpoFallback, t,
                                      topo::kNoNode, 0, 1.0});
        }
    }

    const std::size_t spo_gather_retries =
        stats.spoRetries - spo_retries_entry;
    if (tracer_) {
        tracer_->num(spo_gather_span, "attempted",
                     static_cast<double>(affected.size()));
        tracer_->num(spo_gather_span, "gather_ok",
                     static_cast<double>(gather_ok.size()));
        tracer_->num(spo_gather_span, "retries",
                     static_cast<double>(spo_gather_retries));
        tracer_->end(spo_gather_span);
    }
    const auto spo_budget_span =
        tracer_ ? tracer_->begin("spo.budget")
                : telemetry::PeriodTracer::kNoSpan;
    if (tracer_) {
        tracer_->num(spo_budget_span, "deadline_ms",
                     protocol_.spoBudgetDeadlineMs);
    }

    // ---------------- room re-compute + downstream second-pass budgets
    struct PendingDown
    {
        std::size_t tree;
        topo::NodeId node;
        std::size_t rack;
        std::vector<std::uint8_t> frame;
    };
    std::vector<PendingDown> pending_down;
    std::map<std::size_t, std::set<topo::NodeId>> expect;
    std::map<std::size_t, std::map<topo::NodeId, ctrl::NodeMetrics>>
        new_base;
    for (const std::size_t t : gather_ok) {
        auto base = lastTreeMetrics_[t];
        for (const topo::NodeId node : affected.at(t))
            base[node] = fresh.at({t, node});
        const auto edge_budgets = room_.iterate(t, base, root_budgets[t]);
        new_base[t] = std::move(base);
        expect[t] = {};
        for (const auto &[node, budget] : edge_budgets) {
            const std::size_t rack = edgeOwner_.at({t, node});
            if (rackFailed_[rack] || rackDeclaredDead_[rack])
                continue; // nobody home to receive it
            net::BudgetMsg msg;
            msg.tree = static_cast<std::uint16_t>(t);
            msg.edgeNode = static_cast<std::uint32_t>(node);
            msg.budget = budget;
            ++stats.spoBudgetMessages;
            auto frame = net::encodeSpoBudget(
                {net::kRoomSender, epoch_, roomSeq_++}, msg);
            tp.send(room, static_cast<net::Transport::Endpoint>(rack),
                    frame);
            expect[t].insert(node);
            pending_down.push_back({t, node, rack, std::move(frame)});
        }
    }

    // Racks buffer second-pass budgets without applying them, so an
    // incomplete tree can roll back without ever mixing the passes.
    std::map<std::pair<std::size_t, topo::NodeId>, Watts> buffered;
    const auto poll_racks = [&] {
        for (std::size_t r = 0; r < racks_.size(); ++r) {
            const auto frames =
                tp.poll(static_cast<net::Transport::Endpoint>(r));
            if (rackFailed_[r])
                continue; // dead process: frames drain unread
            for (const auto &bytes : frames) {
                const auto frame = net::decodeFrame(bytes);
                if (!frame) {
                    ++stats.corruptFrames;
                    continue;
                }
                if (frame->epoch != epoch_
                    || frame->type != net::MsgType::SpoBudget) {
                    ++stats.orphanFrames;
                    continue;
                }
                const std::size_t t = frame->budget.tree;
                const auto node =
                    static_cast<topo::NodeId>(frame->budget.edgeNode);
                const auto owner = edgeOwner_.find({t, node});
                if (owner == edgeOwner_.end() || owner->second != r) {
                    ++stats.orphanFrames;
                    continue;
                }
                buffered[{t, node}] = frame->budget.budget;
            }
        }
    };

    const double budget_start = tp.nowMs();
    const double budget_deadline =
        budget_start + protocol_.spoBudgetDeadlineMs;
    for (int attempt = 1; attempt < protocol_.maxAttempts; ++attempt) {
        const double next =
            budget_start + attempt * protocol_.retryTimeoutMs;
        if (next >= budget_deadline)
            break;
        tp.advanceTo(next);
        poll_racks();
        bool all_in = true;
        for (const PendingDown &down : pending_down) {
            if (buffered.count({down.tree, down.node}))
                continue;
            all_in = false;
            ++stats.spoRetries;
            tp.send(room,
                    static_cast<net::Transport::Endpoint>(down.rack),
                    down.frame);
        }
        if (all_in)
            break;
    }
    tp.advanceTo(budget_deadline);
    poll_racks();

    // Per-tree atomic commit: every live edge applies its second-pass
    // budget, or none does and the buffers are discarded.
    for (const std::size_t t : gather_ok) {
        bool complete = true;
        for (const topo::NodeId node : expect[t]) {
            if (!buffered.count({t, node})) {
                complete = false;
                break;
            }
        }
        if (!complete) {
            ++stats.spoFallbackTrees;
            stats.degraded.push_back({DegradedKind::SpoFallback, t,
                                      topo::kNoNode, 0, 2.0});
            continue;
        }
        for (const topo::NodeId node : expect[t]) {
            racks_[edgeOwner_.at({t, node})].applyBudget(
                t, node, buffered.at({t, node}));
        }
        lastTreeMetrics_[t] = std::move(new_base[t]);
        committed.insert(t);
        ++stats.spoCommittedTrees;
    }

    const std::size_t spo_bytes = tp.stats().bytesSent - bytes_before;
    stats.spoBytesOnWire += spo_bytes;
    stats.bytesOnWire += spo_bytes;
    if (tracer_) {
        tracer_->num(spo_budget_span, "retries",
                     static_cast<double>(stats.spoRetries
                                         - spo_retries_entry
                                         - spo_gather_retries));
        tracer_->num(spo_budget_span, "committed",
                     static_cast<double>(committed.size()));
        tracer_->end(spo_budget_span);
    }
    return committed;
}

Watts
DistributedControlPlane::leafBudget(const topo::ServerSupplyRef &ref) const
{
    const auto it = leafToRack_.find({ref.server, ref.supply});
    if (it == leafToRack_.end())
        util::panic("DistributedControlPlane: unknown supply %d.%d",
                    ref.server, ref.supply);
    // The owning rack knows which of its edges holds the leaf; search
    // its trees (a leaf lives in exactly one edge).
    for (const RackWorker::Edge &edge : racks_[it->second].edges()) {
        for (std::size_t i = 0; i < edge.leaves.size(); ++i) {
            if (edge.leaves[i] == ref)
                return racks_[it->second].leafBudget(edge.tree, ref);
        }
    }
    util::panic("DistributedControlPlane: supply %d.%d not routed",
                ref.server, ref.supply);
}

} // namespace capmaestro::core
