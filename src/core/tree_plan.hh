/**
 * @file
 * Worker layout for deep control trees (paper §5, generalized).
 *
 * The original deployment model is two tiers: one rack worker per edge
 * (leaf-parent) node and one room worker for everything above. A deep
 * plan inserts aggregator tiers between them: each aggregator worker
 * owns one connected tree fragment per (feed, phase) tree, gathers the
 * per-class summaries of the stations directly below it, merges them
 * with the same associative reduction the monolithic allocator uses,
 * reports one summary for its top station upward, and splits its
 * received budget back down — so a room → row → rack → chassis tree of
 * depth 3–4 is just a chain of identical fragments.
 *
 * A plan is derived from the topology plus a list of *aggregation
 * levels*: heights above the edge level at which to cut the trees. A
 * node's height is 0 at an edge (leaf-parent) node and 1 + max child
 * height above; every node whose height equals an aggregation level
 * becomes the top *station* of an aggregator fragment. Cutting at
 * height levels keeps structurally parallel trees (the Table 4 center,
 * where rack i's CDU is the i-th CDU of every tree) aligned: the j-th
 * tier-k station of every tree lands on the same worker, exactly like
 * the leaf partitioning rule.
 *
 * Worker endpoints are numbered to stay wire-compatible with the
 * 2-level layout: leaf workers first (0..L-1, matching
 * DistributedControlPlane::partitionEdges order), then each aggregator
 * tier bottom-up, the root worker last. An empty level list reproduces
 * the 2-level layout verbatim (root == endpoint L).
 *
 * Every worker's parent is the owner of the nearest station strictly
 * above its own (the root worker when none) — uniform across trees, or
 * the plan is rejected as not structurally parallel. Unbalanced trees
 * may therefore skip tiers: a shallow branch's leaf worker can report
 * straight to the root.
 */

#ifndef CAPMAESTRO_CORE_TREE_PLAN_HH
#define CAPMAESTRO_CORE_TREE_PLAN_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "topology/power_system.hh"

namespace capmaestro::core {

/** The worker tree a deep deployment runs: who owns which fragment. */
struct TreePlan
{
    /** Sentinel endpoint (the root worker's parent). */
    static constexpr std::uint32_t kNoWorker = 0xFFFFFFFFu;

    /** One worker and its place in the control tree. */
    struct Worker
    {
        std::uint32_t endpoint = 0;
        /** 0 = leaf (rack) tier; tiers() - 1 = the root worker. */
        std::uint32_t tier = 0;
        /** Endpoint of the parent worker; kNoWorker at the root. */
        std::uint32_t parent = kNoWorker;
        /** Child worker endpoints (empty at leaf workers). */
        std::vector<std::uint32_t> children;
        /**
         * tree -> station node this worker reports upward: its edge
         * node (leaf tier), its fragment top (aggregator tiers), or
         * the tree root (root worker). Trees this worker holds no
         * fragment of are absent.
         */
        std::map<std::size_t, topo::NodeId> stations;

        bool isLeaf() const { return tier == 0; }
        bool isRoot() const { return parent == kNoWorker; }
    };

    /** All workers, indexed by endpoint; the root worker is last. */
    std::vector<Worker> workers;
    /** Leaf (rack) workers — endpoints 0..leafWorkers-1. */
    std::size_t leafWorkers = 0;
    /** Number of trees in the system the plan was built from. */
    std::size_t trees = 0;
    /** The aggregation levels the plan was built with (ascending). */
    std::vector<std::uint32_t> aggLevels;

    /** Worker tiers: leaf tier + aggregator tiers + root. */
    std::uint32_t tiers() const
    {
        return static_cast<std::uint32_t>(aggLevels.size()) + 2;
    }

    std::uint32_t rootEndpoint() const
    {
        return static_cast<std::uint32_t>(workers.size()) - 1;
    }

    const Worker &root() const { return workers.back(); }

    /** Endpoints of every worker at @p tier, ascending. */
    std::vector<std::uint32_t> tierEndpoints(std::uint32_t tier) const;

    /**
     * Fragment tops per tree for internal worker @p endpoint, in the
     * RoomWorker subtree format (kNoNode for trees without a
     * fragment). For the root worker: every tree's root.
     */
    std::vector<topo::NodeId> topsOf(std::uint32_t endpoint) const;

    /**
     * Boundary station sets per tree for internal worker @p endpoint:
     * the stations of its child workers, i.e. where its fragment's
     * gather/budget recursion cuts off.
     */
    std::vector<std::set<topo::NodeId>>
    boundariesOf(std::uint32_t endpoint) const;

    /**
     * Build the plan for @p system cut at @p agg_levels (ascending
     * heights above the edge level; may be empty for the 2-level
     * layout). fatal()s on invalid levels (non-ascending, 0, or at or
     * above some tree's root) and on topologies whose station layout
     * is not structurally parallel across trees.
     */
    static TreePlan build(const topo::PowerSystem &system,
                          const std::vector<std::uint32_t> &agg_levels);
};

} // namespace capmaestro::core

#endif // CAPMAESTRO_CORE_TREE_PLAN_HH
