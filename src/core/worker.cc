#include "core/worker.hh"

namespace capmaestro::core {

WorkerLayout
planWorkers(const DeploymentShape &shape, const WorkerCosts &costs)
{
    WorkerLayout layout;
    layout.rackWorkers = shape.racks;
    layout.roomWorkers = 1;

    const std::size_t trees = shape.feeds * shape.phases;

    // One CDU-level shifting controller per (feed, phase) in each rack
    // (paper: 6 per rack worker), plus a capping controller per server.
    layout.cduControllersPerRack = trees;
    layout.cappingControllersPerRack = shape.serversPerRack;

    // The room worker budgets, per tree: root -> transformers -> RPPs ->
    // CDUs. Its per-period work is linear in its total child links; the
    // dominant term is the RPP -> CDU fan-out (one link per rack per tree).
    layout.roomChildLinks =
        trees * (shape.upperControllersPerTree + shape.racks);

    // Each rack worker exchanges one metrics and one budget message per
    // tree with the room worker per period.
    layout.messagesPerPeriod = 2 * trees * shape.racks;

    // Rack timing: sensing is parallel across servers (paper: 1 s wall
    // clock; we report the amortized controller-side cost), followed by
    // gathering + budgeting over its own controllers.
    layout.rackSenseMs = costs.senseUs / 1000.0;
    const double per_server =
        costs.gatherPerChildUs + costs.budgetPerChildUs;
    // Per tree, the CDU controller handles every server with a supply on
    // that (feed, phase); across all trees each server is visited once
    // per feed.
    const double rack_children =
        static_cast<double>(shape.serversPerRack * shape.feeds);
    layout.rackComputeMs = rack_children * per_server / 1000.0;

    layout.roomComputeMs =
        static_cast<double>(layout.roomChildLinks)
        * (costs.gatherPerChildUs + costs.budgetPerChildUs) / 1000.0
        + static_cast<double>(layout.messagesPerPeriod) * costs.messageUs
              / 1000.0 / 8.0; // messages overlap budgeting; amortized

    const double total_cores =
        static_cast<double>(shape.racks * shape.coresPerRack);
    const double reserved =
        static_cast<double>(layout.rackWorkers + layout.roomWorkers);
    layout.coreOverheadFraction =
        total_cores > 0.0 ? reserved / total_cores : 0.0;
    return layout;
}

} // namespace capmaestro::core
