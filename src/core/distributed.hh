/**
 * @file
 * Distributed execution of the capping algorithm across worker VMs
 * (paper §5): rack-level workers own the edge (CDU-level) shifting
 * controllers and the capping controllers beneath them; a room-level
 * worker owns everything above (RPPs, transformers, contractual roots).
 * The two tiers exchange explicit metric/budget messages.
 *
 * The distributed plane computes budgets bit-identical to the monolithic
 * ControlTree (proven by test), while exposing the message counts and
 * per-worker compute shares that the paper's scalability argument rests
 * on: each rack worker's work is constant as the center grows, and the
 * room worker's grows linearly in the number of racks.
 *
 * Partitioning rule: within each (feed, phase) tree, the i-th leaf-parent
 * node (in pre-order) belongs to rack worker i. Structurally parallel
 * trees — like the Table 4 center, where rack i's CDU is the i-th CDU of
 * every tree — therefore map each rack's controllers to one worker.
 */

#ifndef CAPMAESTRO_CORE_DISTRIBUTED_HH
#define CAPMAESTRO_CORE_DISTRIBUTED_HH

#include <map>
#include <vector>

#include "control/control_tree.hh"
#include "control/metrics.hh"
#include "topology/power_system.hh"

namespace capmaestro::core {

/** Message-exchange accounting for one distributed iteration. */
struct MessageStats
{
    /** Rack -> room metric messages. */
    std::size_t metricsMessages = 0;
    /** Room -> rack budget messages. */
    std::size_t budgetMessages = 0;
    /** Total priority classes serialized upstream (payload proxy). */
    std::size_t metricClassesSent = 0;
};

/**
 * A rack-level worker: owns, for each tree, one edge shifting controller
 * (the leaf-parent node) and the supply leaves beneath it.
 */
class RackWorker
{
  public:
    /**
     * @param system      power system (not owned)
     * @param edge_nodes  for each tree index, the leaf-parent node this
     *                    worker owns in that tree (kNoNode if none)
     * @param policy      priority flags (same semantics as ControlTree)
     */
    RackWorker(const topo::PowerSystem &system,
               std::vector<topo::NodeId> edge_nodes,
               ctrl::TreePolicy policy);

    /** Set a supply leaf's metrics (must live under this worker). */
    void setLeafInput(std::size_t tree, const topo::ServerSupplyRef &ref,
                      const ctrl::LeafInput &input);

    /**
     * Compute the edge controller's upstream metrics for @p tree
     * (the rack's half of the metrics-gathering phase).
     */
    ctrl::NodeMetrics computeMetrics(std::size_t tree);

    /**
     * Accept the edge controller's budget for @p tree and split it over
     * the rack's supply leaves (the rack's half of the budgeting phase).
     */
    void applyBudget(std::size_t tree, Watts budget);

    /** Budget of one supply leaf after applyBudget(). */
    Watts leafBudget(std::size_t tree,
                     const topo::ServerSupplyRef &ref) const;

    /** The edge node this worker owns in @p tree. */
    topo::NodeId edgeNode(std::size_t tree) const;

  private:
    struct Edge
    {
        topo::NodeId node = topo::kNoNode;
        /** Leaf refs in child order. */
        std::vector<topo::ServerSupplyRef> leaves;
        std::vector<ctrl::LeafInput> inputs;
        std::vector<ctrl::NodeMetrics> leafMetrics;
        std::vector<Watts> leafBudgets;
    };

    const topo::PowerSystem &system_;
    ctrl::TreePolicy policy_;
    /** Indexed by tree. */
    std::vector<Edge> edges_;

    void refreshLeafMetrics(Edge &edge, std::size_t tree);
};

/**
 * The room-level worker: runs the shifting controllers above the edge
 * (rack) level for every tree, consuming rack metric messages and
 * producing rack budget messages.
 */
class RoomWorker
{
  public:
    /**
     * @param system      power system (not owned)
     * @param edge_owner  per tree, per edge node: owning rack index
     * @param policy      priority flags
     */
    RoomWorker(const topo::PowerSystem &system,
               std::vector<std::map<topo::NodeId, std::size_t>> edge_owner,
               ctrl::TreePolicy policy);

    /**
     * Run the upper half of one iteration for @p tree: aggregate the
     * rack metrics upward, then split @p root_budget back down to the
     * edge nodes. Returns the budget per rack (indexed by rack).
     */
    std::map<std::size_t, Watts>
    iterate(std::size_t tree, const std::map<std::size_t,
            ctrl::NodeMetrics> &rack_metrics, Watts root_budget);

  private:
    const topo::PowerSystem &system_;
    std::vector<std::map<topo::NodeId, std::size_t>> edgeOwner_;
    ctrl::TreePolicy policy_;

    ctrl::NodeMetrics
    gatherAbove(std::size_t tree, topo::NodeId node,
                const std::map<std::size_t, ctrl::NodeMetrics> &racks,
                std::map<topo::NodeId, ctrl::NodeMetrics> &cache);

    void budgetAbove(std::size_t tree, topo::NodeId node, Watts budget,
                     const std::map<topo::NodeId, ctrl::NodeMetrics> &cache,
                     std::map<std::size_t, Watts> &rack_budgets);
};

/**
 * The full two-tier control plane: builds the partition, routes
 * messages, and runs complete iterations. Budgets are bit-identical to
 * a monolithic ControlTree with the same policy.
 */
class DistributedControlPlane
{
  public:
    DistributedControlPlane(const topo::PowerSystem &system,
                            ctrl::TreePolicy policy);

    /** Number of rack workers discovered by the partitioning rule. */
    std::size_t rackWorkerCount() const { return racks_.size(); }

    /** Set a supply leaf's metrics (routed to its rack worker). */
    void setLeafInput(const topo::ServerSupplyRef &ref,
                      const ctrl::LeafInput &input);

    /**
     * Run one full distributed iteration (gather + budget on every live
     * tree) and return the message statistics.
     */
    MessageStats iterate(const std::vector<Watts> &root_budgets);

    /** Supply-leaf budget after iterate(). */
    Watts leafBudget(const topo::ServerSupplyRef &ref) const;

  private:
    const topo::PowerSystem &system_;
    ctrl::TreePolicy policy_;
    std::vector<RackWorker> racks_;
    RoomWorker room_;
    /** (server, supply) -> (tree, rack worker). */
    std::map<std::pair<std::int32_t, std::int32_t>,
             std::pair<std::size_t, std::size_t>>
        leafRouting_;

    static std::vector<std::map<topo::NodeId, std::size_t>>
    partition(const topo::PowerSystem &system);
};

} // namespace capmaestro::core

#endif // CAPMAESTRO_CORE_DISTRIBUTED_HH
