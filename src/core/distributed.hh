/**
 * @file
 * Distributed execution of the capping algorithm across worker VMs
 * (paper §5): rack-level workers own the edge (CDU-level) shifting
 * controllers and the capping controllers beneath them; a room-level
 * worker owns everything above (RPPs, transformers, contractual roots).
 *
 * The two tiers exchange explicit metric/budget messages. In *direct*
 * mode the exchange is an in-process function call and the plane is
 * bit-identical to the monolithic ControlTree (proven by test). In
 * *message-plane* mode the same exchange travels as encoded frames
 * (net/wire) over an unreliable SimTransport (net/transport), and the
 * plane runs the §4.5 fault-tolerant control-period protocol:
 *
 *   - bounded retransmission against per-phase deadlines,
 *   - stale-metric reuse (with an age cap) when an edge's metrics miss
 *     the gathering deadline,
 *   - conservative Pcap_min-level default budgets when a budget
 *     message is lost, and
 *   - heartbeat-based worker-failure detection that re-homes a dead
 *     worker's edge controllers onto a surviving rack worker.
 *
 * Under a lossless zero-latency transport the protocol degenerates to
 * the direct exchange, so budgets remain bit-identical to the
 * monolithic tree. Degraded-mode decisions are reported per iteration
 * in MessageStats so callers (e.g., ClosedLoopSim) can log them.
 *
 * Partitioning rule: within each (feed, phase) tree, the i-th leaf-parent
 * node (in pre-order) initially belongs to rack worker i. Structurally
 * parallel trees — like the Table 4 center, where rack i's CDU is the
 * i-th CDU of every tree — therefore map each rack's controllers to one
 * worker. Failover can later move edges between workers, so a worker
 * owns an arbitrary set of (tree, edge-node) controllers.
 */

#ifndef CAPMAESTRO_CORE_DISTRIBUTED_HH
#define CAPMAESTRO_CORE_DISTRIBUTED_HH

#include <map>
#include <set>
#include <vector>

#include "control/allocator.hh"
#include "control/control_tree.hh"
#include "control/metrics.hh"
#include "core/tree_plan.hh"
#include "net/protocol.hh"
#include "net/transport.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"
#include "topology/power_system.hh"

namespace capmaestro::core {

/** A degraded-mode (§4.5) decision the protocol took. */
enum class DegradedKind {
    /** Metrics missed the deadline; a cached summary was reused. */
    StaleMetricsReused,
    /** Metrics missed the deadline and the cache was too old. */
    MetricsLost,
    /** A budget message was lost; the edge fell back to Pcap_min. */
    DefaultBudgetApplied,
    /** A silent worker was declared dead and its edges re-homed. */
    WorkerFailover,
    /**
     * A tree's §4.4 SPO round missed a deadline; the tree kept its
     * first-pass budgets wholesale (value: 1 = gather phase, 2 =
     * budget phase).
     */
    SpoFallback,
};

/** Name of a DegradedKind (event/log rendering). */
const char *degradedKindName(DegradedKind kind);

/** One degraded-mode decision. */
struct DegradedDecision
{
    DegradedKind kind = DegradedKind::StaleMetricsReused;
    /** Tree index (meaningless for WorkerFailover). */
    std::size_t tree = 0;
    /** Edge node concerned (kNoNode for WorkerFailover). */
    topo::NodeId node = topo::kNoNode;
    /** Rack worker concerned (for failover: the dead worker). */
    std::size_t rack = 0;
    /**
     * Kind-specific magnitude: stale age in periods, default budget in
     * watts, or the adopting rack index for failover.
     */
    double value = 0.0;
};

/** Message-exchange accounting for one distributed iteration. */
struct MessageStats
{
    /** Rack -> room metric messages (logical, excluding retries). */
    std::size_t metricsMessages = 0;
    /** Room -> rack budget messages (logical, excluding retries). */
    std::size_t budgetMessages = 0;
    /** Aggregator -> parent summary messages (deep plans only). */
    std::size_t summaryMessages = 0;
    /** Parent -> aggregator budget messages (deep plans only). */
    std::size_t subBudgetMessages = 0;
    /** Total priority classes serialized upstream (payload proxy). */
    std::size_t metricClassesSent = 0;
    /** Heartbeat frames sent (message-plane mode only). */
    std::size_t heartbeatMessages = 0;
    /** Retransmissions across both phases. */
    std::size_t retries = 0;
    /** Real encoded payload bytes submitted to the transport. */
    std::size_t bytesOnWire = 0;
    /** Edges that fell back to a cached metric summary. */
    std::size_t staleReuses = 0;
    /** Edges whose metrics were unusable (lost, cache expired). */
    std::size_t metricsLost = 0;
    /** Edges that applied the conservative Pcap_min default budget. */
    std::size_t defaultBudgets = 0;
    /** Frames discarded for carrying an old epoch (orphans). */
    std::size_t orphanFrames = 0;
    /** Frames that failed to decode (corruption). */
    std::size_t corruptFrames = 0;
    /** §4.4 SPO rounds run this period (0 when nothing was pinned). */
    std::size_t spoRounds = 0;
    /** Rack -> room pinned-summary messages (logical, no retries). */
    std::size_t spoSummaryMessages = 0;
    /** Room -> rack second-pass budget messages (logical, no retries). */
    std::size_t spoBudgetMessages = 0;
    /** Retransmissions across both SPO phases. */
    std::size_t spoRetries = 0;
    /** Trees that entered an SPO round (had at least one pin). */
    std::size_t spoTreesAttempted = 0;
    /** Trees whose SPO round-trip completed and committed atomically. */
    std::size_t spoCommittedTrees = 0;
    /** Trees that fell back wholesale to their first-pass budgets. */
    std::size_t spoFallbackTrees = 0;
    /** Encoded SPO bytes submitted to the transport (also in bytesOnWire). */
    std::size_t spoBytesOnWire = 0;
    /** Every degraded-mode decision, in the order it was taken. */
    std::vector<DegradedDecision> degraded;
};

/**
 * A rack-level worker: owns an arbitrary set of edge (leaf-parent)
 * shifting controllers and the supply leaves beneath them. Workers
 * start with at most one edge per tree (the partitioning rule) but can
 * adopt a dead peer's edges during failover.
 */
class RackWorker
{
  public:
    /** One owned edge controller and its leaf state. */
    struct Edge
    {
        std::size_t tree = 0;
        topo::NodeId node = topo::kNoNode;
        /** Leaf refs in child order. */
        std::vector<topo::ServerSupplyRef> leaves;
        std::vector<ctrl::LeafInput> inputs;
        std::vector<ctrl::NodeMetrics> leafMetrics;
        std::vector<Watts> leafBudgets;
    };

    /**
     * @param system  power system (not owned)
     * @param policy  priority flags (same semantics as ControlTree)
     */
    RackWorker(const topo::PowerSystem &system, ctrl::TreePolicy policy);

    /** Take ownership of the edge controller at (@p tree, @p node). */
    void addEdge(std::size_t tree, topo::NodeId node);

    /** Adopt an edge (with its live state) from a failed worker. */
    void adoptEdge(Edge edge);

    /** Surrender every owned edge (failover out of this worker). */
    std::vector<Edge> releaseEdges();

    /** Owned edges. */
    const std::vector<Edge> &edges() const { return edges_; }

    /** Set a supply leaf's metrics (must live under this worker). */
    void setLeafInput(std::size_t tree, const topo::ServerSupplyRef &ref,
                      const ctrl::LeafInput &input);

    /**
     * Compute the edge controller's upstream metrics for (@p tree,
     * @p node) — the rack's half of the metrics-gathering phase.
     */
    ctrl::NodeMetrics computeMetrics(std::size_t tree, topo::NodeId node);

    /**
     * Accept the edge controller's budget and split it over the edge's
     * supply leaves (the rack's half of the budgeting phase).
     */
    void applyBudget(std::size_t tree, topo::NodeId node, Watts budget);

    /**
     * The §4.5 conservative fallback budget for an edge: the sum of
     * its live leaves' Pcap_min floors, clamped to the device limit.
     * Safe by construction — never exceeds what any feasible
     * allocation owes the edge.
     */
    Watts defaultBudget(std::size_t tree, topo::NodeId node) const;

    /** Budget of one supply leaf after applyBudget(). */
    Watts leafBudget(std::size_t tree,
                     const topo::ServerSupplyRef &ref) const;

  private:
    const topo::PowerSystem &system_;
    ctrl::TreePolicy policy_;
    std::vector<Edge> edges_;

    Edge &findEdge(std::size_t tree, topo::NodeId node);
    const Edge &findEdge(std::size_t tree, topo::NodeId node) const;
    void refreshLeafMetrics(Edge &edge);
};

/**
 * An upper-tier worker: runs the shifting controllers of one connected
 * tree fragment per tree, consuming metric messages from the stations
 * directly below the fragment and producing budget messages for them.
 * The classic room worker is the fragment from the tree root down to
 * the edge (leaf-parent) nodes; a deep plan's aggregator worker is the
 * same machinery cut at interior stations (core::TreePlan), gathering
 * its children's summaries into one summary for its own top station
 * and splitting its received budget back down. Because gatherMetrics /
 * budgetChildren are associative, chaining fragments over a lossless
 * exchange reproduces the monolithic recursion bit-exactly at any
 * depth. The worker addresses boundary stations by their topology node
 * id and is oblivious to which worker owns them — ownership (and
 * failover) is the control plane's concern.
 */
class RoomWorker
{
  public:
    /**
     * The root fragment (the classic room worker): from every tree's
     * root down to the given boundary.
     *
     * @param system      power system (not owned)
     * @param edge_nodes  per tree: the boundary node set (classically
     *                    the edge nodes; under a deep plan, the root
     *                    worker's child stations)
     * @param policy      priority flags
     */
    RoomWorker(const topo::PowerSystem &system,
               std::vector<std::set<topo::NodeId>> edge_nodes,
               ctrl::TreePolicy policy);

    /**
     * An aggregator fragment: per tree, from the top station @p tops
     * (kNoNode = no fragment in that tree) down to the boundary.
     */
    RoomWorker(const topo::PowerSystem &system,
               std::vector<topo::NodeId> tops,
               std::vector<std::set<topo::NodeId>> boundaries,
               ctrl::TreePolicy policy);

    /**
     * Gather half of one iteration for @p tree: merge the boundary
     * metrics up to the fragment top and return the top's summary (the
     * message an aggregator forwards to its parent). Stations absent
     * from @p boundary_metrics contribute empty metrics. Interior
     * summaries are cached for budgetDown().
     */
    ctrl::NodeMetrics
    gatherTop(std::size_t tree,
              const std::map<topo::NodeId, ctrl::NodeMetrics>
                  &boundary_metrics);

    /**
     * Budget half: split @p top_budget (the parent's grant for the
     * fragment top, clamped to the top's own limit) back down to the
     * boundary stations, using the summaries cached by the last
     * gatherTop() for this tree. Returns the budget per boundary
     * station.
     */
    std::map<topo::NodeId, Watts> budgetDown(std::size_t tree,
                                             Watts top_budget);

    /** Both halves back to back (the classic room iteration). */
    std::map<topo::NodeId, Watts>
    iterate(std::size_t tree,
            const std::map<topo::NodeId, ctrl::NodeMetrics> &edge_metrics,
            Watts root_budget);

  private:
    const topo::PowerSystem &system_;
    std::vector<std::set<topo::NodeId>> edgeNodes_;
    ctrl::TreePolicy policy_;
    /** Fragment tops per tree; empty = every tree's root. */
    std::vector<topo::NodeId> tops_;
    /** Interior summaries cached per tree by gatherTop(). */
    std::vector<std::map<topo::NodeId, ctrl::NodeMetrics>> lastCache_;

    topo::NodeId topOf(std::size_t tree) const;

    ctrl::NodeMetrics
    gatherAbove(std::size_t tree, topo::NodeId node,
                const std::map<topo::NodeId, ctrl::NodeMetrics> &edges,
                std::map<topo::NodeId, ctrl::NodeMetrics> &cache);

    void budgetAbove(std::size_t tree, topo::NodeId node, Watts budget,
                     const std::map<topo::NodeId, ctrl::NodeMetrics> &cache,
                     std::map<topo::NodeId, Watts> &edge_budgets);
};

/**
 * The full two-tier control plane: builds the partition, routes
 * messages, and runs complete iterations. In direct mode budgets are
 * bit-identical to a monolithic ControlTree with the same policy; in
 * message-plane mode the §4.5 protocol runs over the given transport.
 */
class DistributedControlPlane
{
  public:
    /**
     * Direct (in-process) message exchange. A non-empty @p agg_levels
     * makes the plane deep (core::TreePlan): aggregator workers sit
     * between the rack tier and the root, each merging its children's
     * summaries and splitting its budget — still bit-identical to the
     * monolithic ControlTree, the reduction being associative.
     */
    DistributedControlPlane(const topo::PowerSystem &system,
                            ctrl::TreePolicy policy,
                            std::vector<std::uint32_t> agg_levels = {});

    /**
     * Message-plane mode: frames travel over @p transport (not owned;
     * must outlive the plane) under the §4.5 protocol @p protocol. Any
     * Transport backend works — SimTransport for deterministic
     * simulation, UdpTransport for real sockets (where advanceTo()
     * paces the protocol's deadline schedule in wall time). A
     * non-empty @p agg_levels makes the plane deep: every worker-to-
     * worker hop runs the same deadline/retransmission discipline,
     * with per-hop stale-metric fallback upstream and conservative
     * defaults downstream. Worker failover (failWorker) and the §4.4
     * SPO round remain 2-level-only.
     */
    DistributedControlPlane(const topo::PowerSystem &system,
                            ctrl::TreePolicy policy,
                            net::Transport &transport,
                            net::ProtocolConfig protocol = {},
                            std::vector<std::uint32_t> agg_levels = {});

    /** Number of rack workers discovered by the partitioning rule. */
    std::size_t rackWorkerCount() const { return racks_.size(); }

    /** The worker layout (2-level when built without agg levels). */
    const TreePlan &plan() const { return plan_; }

    /**
     * The partitioning rule, exposed for out-of-process runtimes
     * (src/rt) that must agree with the in-process plane on worker
     * membership: per rack worker, the (tree -> edge node) map of the
     * edges it initially owns.
     */
    static std::vector<std::map<std::size_t, topo::NodeId>>
    partitionEdges(const topo::PowerSystem &system);

    /** Rack workers the partitioning rule yields for @p system. */
    static std::size_t rackWorkerCountFor(const topo::PowerSystem &system);

    /** Workers not declared dead by the room. */
    std::size_t liveWorkerCount() const;

    /** Set a supply leaf's metrics (routed to its rack worker). */
    void setLeafInput(const topo::ServerSupplyRef &ref,
                      const ctrl::LeafInput &input);

    /**
     * Run one full distributed iteration (gather + budget on every live
     * tree) and return the message statistics.
     */
    MessageStats iterate(const std::vector<Watts> &root_budgets);

    /**
     * Run one §4.4 stranded-power round after iterate(): pin the given
     * supplies to their usable consumption, gather fresh summaries from
     * the affected edges, and re-budget every tree that holds a pin.
     * Non-pinned edges reuse their first-phase metrics (recomputing
     * them would be bit-identical — leaf inputs are unchanged), and
     * trees without pins are skipped entirely, so in direct mode (or on
     * a lossless transport) the result is bit-identical to the
     * monolithic FleetAllocator second pass.
     *
     * The round is atomic per tree: in message-plane mode racks buffer
     * second-pass budgets without applying them, and at the SPO budget
     * deadline each attempted tree either commits (every live edge
     * applies its new budget) or rolls back wholesale to its first-pass
     * budgets — never a mix of the two passes. Counters and degraded
     * decisions accumulate into @p stats.
     *
     * @return indices of the trees that committed second-pass budgets
     */
    std::set<std::size_t> iterateSpo(const std::vector<Watts> &root_budgets,
                                     const std::vector<ctrl::SpoPin> &pins,
                                     MessageStats &stats);

    /** Supply-leaf budget after iterate(). */
    Watts leafBudget(const topo::ServerSupplyRef &ref) const;

    /**
     * Simulate the death of rack worker @p rack: it stops sending (and
     * processing) messages. The room detects the silence by heartbeat
     * and re-homes the worker's edges (message-plane mode only).
     */
    void failWorker(std::size_t rack);

    /** True when the room has declared @p rack dead. */
    bool workerDeclaredDead(std::size_t rack) const;

    /** Control-period counter (message-plane mode). */
    std::uint32_t epoch() const { return epoch_; }

    /**
     * Attach telemetry (either pointer may be nullptr). The registry
     * receives cumulative counters mirroring every MessageStats field —
     * MessageStats remains the per-iteration snapshot view; the
     * counters are its running sums. The tracer receives phase spans
     * (gather/budget, spo.gather/spo.budget) for every iteration that
     * runs inside an open period. Instrumentation is pure observation:
     * it never changes what the protocol computes or transmits.
     */
    void setTelemetry(telemetry::Registry *registry,
                      telemetry::PeriodTracer *tracer);

  private:
    /** Room's cache of the last received metrics per edge. */
    struct CachedMetrics
    {
        ctrl::NodeMetrics metrics;
        std::uint32_t epoch = 0;
        bool valid = false;
    };

    const topo::PowerSystem &system_;
    ctrl::TreePolicy policy_;
    /** Worker layout; 2-level unless agg levels were given. Declared
     *  before room_ so the root boundary can be derived from it. */
    TreePlan plan_;
    std::vector<RackWorker> racks_;
    RoomWorker room_;
    /** Aggregator fragments (deep plans), indexed ep - leafWorkers. */
    std::vector<RoomWorker> aggs_;
    std::vector<std::uint32_t> aggSeq_;
    /** (server, supply) -> owning rack worker. */
    std::map<std::pair<std::int32_t, std::int32_t>, std::size_t>
        leafToRack_;
    /** (tree, edge node) -> owning rack worker. */
    std::map<std::pair<std::size_t, topo::NodeId>, std::size_t>
        edgeOwner_;

    // -------- message-plane state
    net::Transport *transport_ = nullptr;
    net::ProtocolConfig protocol_;
    std::uint32_t epoch_ = 0;
    std::vector<std::uint32_t> rackSeq_;
    std::uint32_t roomSeq_ = 0;
    /** Ground truth: the worker process is dead. */
    std::vector<bool> rackFailed_;
    /** Room's view: the worker was declared dead and failed over. */
    std::vector<bool> rackDeclaredDead_;
    std::vector<int> missedHeartbeats_;
    std::map<std::pair<std::size_t, topo::NodeId>, CachedMetrics>
        metricCache_;
    /**
     * Edge metrics the room used in the last iterate() (per tree), the
     * base the SPO round overlays pinned summaries onto. Never fed from
     * pinned summaries, and distinct from metricCache_ so the SPO round
     * cannot pollute the §4.5 stale-metric fallback.
     */
    std::vector<std::map<topo::NodeId, ctrl::NodeMetrics>>
        lastTreeMetrics_;

    // -------- telemetry (null when disabled; handles cached once)
    telemetry::Registry *registry_ = nullptr;
    telemetry::PeriodTracer *tracer_ = nullptr;
    struct PlaneMetrics
    {
        telemetry::Counter metricsMessages;
        telemetry::Counter budgetMessages;
        telemetry::Counter metricClasses;
        telemetry::Counter heartbeats;
        telemetry::Counter retries;
        telemetry::Counter bytes;
        telemetry::Counter staleReuses;
        telemetry::Counter metricsLost;
        telemetry::Counter defaultBudgets;
        telemetry::Counter orphanFrames;
        telemetry::Counter corruptFrames;
        telemetry::Counter spoRounds;
        telemetry::Counter spoSummaryMessages;
        telemetry::Counter spoBudgetMessages;
        telemetry::Counter spoRetries;
        telemetry::Counter spoTreesAttempted;
        telemetry::Counter spoCommittedTrees;
        telemetry::Counter spoFallbackTrees;
        telemetry::Counter spoBytes;
        telemetry::Counter degradedDecisions;
        telemetry::Gauge liveWorkers;
        telemetry::Gauge epoch;
    };
    PlaneMetrics metrics_;

    /** Add one iteration's MessageStats into the cumulative counters. */
    void recordIterationMetrics(const MessageStats &stats);
    /** Add the spo* fields accumulated since @p before (delta record). */
    void recordSpoMetrics(const MessageStats &before,
                          const MessageStats &after);

    static std::vector<std::map<topo::NodeId, std::size_t>>
    partition(const topo::PowerSystem &system);

    void buildWorkers();
    net::Transport::Endpoint roomEndpoint() const;
    MessageStats iterateDirect(const std::vector<Watts> &root_budgets);
    MessageStats iterateTransport(const std::vector<Watts> &root_budgets);
    // Deep-plan iteration bodies (src/core/distributed_deep.cc).
    MessageStats
    iterateDirectDeep(const std::vector<Watts> &root_budgets);
    MessageStats
    iterateTransportDeep(const std::vector<Watts> &root_budgets);
    std::set<std::size_t>
    iterateSpoDirect(const std::vector<Watts> &root_budgets,
                     const std::vector<ctrl::SpoPin> &pins,
                     MessageStats &stats);
    std::set<std::size_t>
    iterateSpoTransport(const std::vector<Watts> &root_budgets,
                        const std::vector<ctrl::SpoPin> &pins,
                        MessageStats &stats);
    /** Affected edges per attempted tree (edges holding >= 1 pin). */
    std::map<std::size_t, std::set<topo::NodeId>>
    pinnedEdges(const std::vector<ctrl::SpoPin> &pins) const;
    void rehomeWorker(std::size_t rack, MessageStats &stats);
};

} // namespace capmaestro::core

#endif // CAPMAESTRO_CORE_DISTRIBUTED_HH
