#include "core/service.hh"

#include <algorithm>
#include <chrono>
#include <map>

#include "util/logging.hh"

namespace capmaestro::core {

CapMaestroService::CapMaestroService(topo::PowerSystem &system,
                                     ServiceConfig config)
    : system_(system), config_(config)
{
    allocator_ = std::make_unique<ctrl::FleetAllocator>(
        system_, policy::treePolicy(config_.policy));
    if (config_.useMessagePlane) {
        if (config_.transportBackend
            == ServiceConfig::TransportBackend::Udp) {
            net::UdpConfig udp = config_.udp;
            if (udp.local.empty()) {
                // Single-process loopback: every rack worker plus the
                // room gets a socket on an ephemeral 127.0.0.1 port.
                const auto racks =
                    DistributedControlPlane::rackWorkerCountFor(system_);
                udp = net::UdpConfig::loopback(
                    static_cast<std::uint32_t>(racks) + 1);
            }
            transport_ = std::make_unique<net::UdpTransport>(std::move(udp));
        } else {
            transport_ =
                std::make_unique<net::SimTransport>(config_.transport);
        }
        plane_ = std::make_unique<DistributedControlPlane>(
            system_, policy::treePolicy(config_.policy), *transport_,
            config_.protocol);
    }
    rootBudgets_.assign(system_.trees().size(), 0.0);
}

void
CapMaestroService::attachServer(dev::ServerModel &server,
                                dev::NodeManager &nm,
                                dev::SensorEmulator &sensors)
{
    AttachedServer entry;
    entry.server = &server;
    entry.nm = &nm;
    entry.controller = std::make_unique<ctrl::CappingController>(
        server, nm, sensors, config_.capping);
    entry.controller->setTelemetry(registry_);
    servers_.push_back(std::move(entry));
}

void
CapMaestroService::enableTelemetry(telemetry::Registry *registry,
                                   telemetry::PeriodTracer *tracer)
{
    registry_ = registry;
    tracer_ = tracer;
    allocator_->setTelemetry(registry_);
    if (plane_)
        plane_->setTelemetry(registry_, tracer_);
    if (transport_)
        transport_->setTelemetry(registry_);
    for (auto &s : servers_)
        s.controller->setTelemetry(registry_);

    mTreeBudget_.clear();
    if (registry_ == nullptr) {
        mPeriodWallMs_ = {};
        mPeriods_ = {};
        mFleetDemand_ = {};
        return;
    }
    mPeriodWallMs_ = registry_->histogram(
        "capmaestro_period_wall_ms", 0.0, 50.0, 50, {},
        "Wall-clock time of one control period, milliseconds");
    mPeriods_ = registry_->counter("capmaestro_periods_total", {},
                                   "Control periods run");
    mFleetDemand_ =
        registry_->gauge("capmaestro_fleet_demand_watts", {},
                         "Total estimated uncapped AC demand");
    mTreeBudget_.reserve(system_.trees().size());
    for (const auto &tree : system_.trees()) {
        mTreeBudget_.push_back(registry_->gauge(
            "capmaestro_tree_budget_watts", {{"tree", tree->name()}},
            "Sum of per-supply budgets applied, by control tree"));
    }
}

void
CapMaestroService::setRootBudgets(std::vector<Watts> budgets)
{
    if (budgets.size() != system_.trees().size()) {
        util::fatal("CapMaestroService: %zu budgets for %zu trees",
                    budgets.size(), system_.trees().size());
    }
    rootBudgets_ = std::move(budgets);
}

void
CapMaestroService::refreshRootBudgets(Watts total_per_phase)
{
    const int live = system_.liveFeeds();
    if (live == 0) {
        std::fill(rootBudgets_.begin(), rootBudgets_.end(), 0.0);
        util::warn("CapMaestroService: no live feeds");
        return;
    }
    for (std::size_t t = 0; t < system_.trees().size(); ++t) {
        const auto &tree = system_.tree(t);
        rootBudgets_[t] = system_.feedFailed(tree.feed())
                              ? 0.0
                              : total_per_phase / live;
    }
}

void
CapMaestroService::senseTick()
{
    for (auto &s : servers_)
        s.controller->senseTick();
}

const PeriodStats &
CapMaestroService::runControlPeriod()
{
    const auto wall_start = registry_ != nullptr
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    if (tracer_)
        tracer_->beginPeriod(stats_.periodsRun);
    const auto close_span =
        tracer_ ? tracer_->begin("close") : telemetry::PeriodTracer::kNoSpan;

    // Phase 1: close controller periods and build the fleet inputs.
    std::vector<ctrl::ServerAllocInput> inputs;
    inputs.reserve(servers_.size());
    stats_.totalDemandEstimate = 0.0;
    for (auto &s : servers_) {
        const auto report = s.controller->closePeriod();
        ctrl::ServerAllocInput in;
        const auto &spec = s.server->spec();
        in.priority = spec.priority;
        in.capMin = spec.capMin;
        in.capMax = spec.capMax;
        in.demand = report.demandEstimate;
        in.supplies.resize(report.shares.size());
        for (std::size_t i = 0; i < report.shares.size(); ++i) {
            in.supplies[i].share =
                std::max(report.shares[i], 1e-9);
            in.supplies[i].live = report.shares[i] > 0.0;
        }
        stats_.totalDemandEstimate += report.demandEstimate;
        inputs.push_back(std::move(in));
    }

    // Optional adaptive feed balancing: re-split each phase's
    // contractual budget across its live feeds in proportion to the
    // demand each feed carries this period.
    if (config_.adaptiveFeedBalance && config_.totalPerPhaseBudget > 0.0)
        rebalanceRootBudgets(inputs);

    if (tracer_) {
        tracer_->num(close_span, "servers",
                     static_cast<double>(servers_.size()));
        tracer_->end(close_span);
    }

    // Phase 2: global priority-aware allocation (+ SPO). In
    // message-plane mode the exchange runs over the transport instead.
    if (plane_) {
        runPlanePeriod(inputs);
    } else {
        const auto alloc_span =
            tracer_ ? tracer_->begin("allocate")
                    : telemetry::PeriodTracer::kNoSpan;
        stats_.allocation = allocator_->allocate(
            inputs, rootBudgets_, config_.enableSpo, config_.spoThreshold,
            config_.spoPasses);
        stats_.messages = MessageStats{};
        if (tracer_) {
            tracer_->num(alloc_span, "passes",
                         static_cast<double>(stats_.allocation.passes));
            tracer_->num(alloc_span, "feasible",
                         stats_.allocation.feasible ? 1.0 : 0.0);
            tracer_->num(alloc_span, "reclaimed_watts",
                         stats_.allocation.strandedReclaimed);
            tracer_->end(alloc_span);
        }
    }

    const auto apply_span =
        tracer_ ? tracer_->begin("apply") : telemetry::PeriodTracer::kNoSpan;

    // Phase 3: hand each server its per-supply budgets; the PI loop turns
    // them into a DC cap for the node manager.
    stats_.budgetByTree.assign(system_.trees().size(), 0.0);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        const auto &alloc = stats_.allocation.servers[i];
        servers_[i].controller->applyBudgets(alloc.supplyBudget);
        const auto ports =
            system_.livePortsOf(static_cast<std::int32_t>(i));
        for (const auto &[sup, loc] : ports) {
            stats_.budgetByTree[loc.tree] +=
                alloc.supplyBudget[static_cast<std::size_t>(sup)];
        }
    }
    ++stats_.periodsRun;

    if (tracer_)
        tracer_->end(apply_span);
    if (registry_ != nullptr) {
        mPeriods_.inc();
        mFleetDemand_.set(stats_.totalDemandEstimate);
        for (std::size_t t = 0; t < mTreeBudget_.size(); ++t)
            mTreeBudget_[t].set(stats_.budgetByTree[t]);
        const auto elapsed =
            std::chrono::steady_clock::now() - wall_start;
        mPeriodWallMs_.observe(
            std::chrono::duration<double, std::milli>(elapsed).count());
    }
    if (tracer_) {
        tracer_->periodNum("demand_watts", stats_.totalDemandEstimate);
        tracer_->periodNum("feasible",
                           stats_.allocation.feasible ? 1.0 : 0.0);
        tracer_->periodNum("passes",
                           static_cast<double>(stats_.allocation.passes));
        tracer_->periodNum("reclaimed_watts",
                           stats_.allocation.strandedReclaimed);
        tracer_->endPeriod();
    }
    return stats_;
}

void
CapMaestroService::runPlanePeriod(
    const std::vector<ctrl::ServerAllocInput> &inputs)
{
    // The leaf inputs are derived exactly as FleetAllocator derives them
    // (shared helpers), so under a lossless transport the plane's
    // budgets are bit-identical to the monolithic tree walk.
    std::vector<std::vector<Fraction>> shares(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        shares[i] = ctrl::effectiveSupplyShares(
            system_, inputs[i], static_cast<std::int32_t>(i));
    }
    for (const auto &tree : system_.trees()) {
        for (const auto &ref : tree->suppliesUnder(tree->root())) {
            const auto sid = static_cast<std::size_t>(ref.server);
            const auto sup = static_cast<std::size_t>(ref.supply);
            if (sid >= inputs.size()) {
                util::fatal("CapMaestroService: topology references "
                            "server %d but only %zu attached",
                            ref.server, inputs.size());
            }
            const Fraction r =
                sup < shares[sid].size() ? shares[sid][sup] : 0.0;
            plane_->setLeafInput(ref,
                                 ctrl::scaledLeafInput(inputs[sid], r));
        }
    }

    stats_.messages = plane_->iterate(rootBudgets_);

    const auto derive_caps = [&] {
        ctrl::deriveServerCapsFrom(
            system_, inputs, shares,
            [this](std::size_t, const topo::ServerSupplyRef &ref) {
                return plane_->leafBudget(ref);
            },
            stats_.allocation);
    };
    stats_.allocation = ctrl::FleetAllocation{};
    derive_caps();

    if (!config_.enableSpo) {
        ctrl::recordAllocationTelemetry(registry_, inputs,
                                        stats_.allocation);
        return;
    }

    // §4.4 stranded-power optimization over the message plane: detect
    // stranded supplies with the allocator's shared helper, run a second
    // gather/budget round-trip for the affected trees, and re-derive the
    // caps. Stranded power counts as reclaimed only on trees whose SPO
    // round committed; a tree that missed a deadline kept its first-pass
    // budgets and the plane reported the fallback.
    std::vector<Watts> stranded_first(inputs.size(), 0.0);
    while (stats_.allocation.passes < config_.spoPasses) {
        const auto pins = ctrl::detectStrandedSupplies(
            system_, inputs, shares, stats_.allocation,
            config_.spoThreshold);
        if (stats_.allocation.passes == 1) {
            for (const ctrl::SpoPin &pin : pins) {
                stranded_first[static_cast<std::size_t>(
                    pin.ref.server)] += pin.stranded;
            }
        }
        if (pins.empty())
            break;

        const auto committed =
            plane_->iterateSpo(rootBudgets_, pins, stats_.messages);
        for (const ctrl::SpoPin &pin : pins) {
            if (committed.count(pin.tree))
                stats_.allocation.strandedReclaimed += pin.stranded;
        }
        ++stats_.allocation.passes;
        derive_caps();
        if (committed.empty())
            break; // every tree fell back; re-detection would not move
    }
    for (std::size_t i = 0; i < inputs.size(); ++i)
        stats_.allocation.servers[i].strandedBeforeSpo = stranded_first[i];
    ctrl::recordAllocationTelemetry(registry_, inputs, stats_.allocation);
}

void
CapMaestroService::rebalanceRootBudgets(
    const std::vector<ctrl::ServerAllocInput> &inputs)
{
    // Per-tree demand proxy: each live supply requests its share of the
    // server's effective demand (never below the Pcap_min floor, which
    // every feed must be able to honor).
    std::vector<Watts> tree_demand(system_.trees().size(), 0.0);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const auto ports =
            system_.livePortsOf(static_cast<std::int32_t>(i));
        const auto &in = inputs[i];
        for (const auto &[sup, loc] : ports) {
            const auto s = static_cast<std::size_t>(sup);
            if (s >= in.supplies.size() || !in.supplies[s].live)
                continue;
            tree_demand[loc.tree] +=
                in.supplies[s].share * std::max(in.demand, in.capMin);
        }
    }

    // Group trees by phase; live trees share the phase budget in
    // proportion to demand (even split when nothing is drawn yet).
    std::map<int, std::vector<std::size_t>> by_phase;
    for (std::size_t t = 0; t < system_.trees().size(); ++t) {
        if (!system_.feedFailed(system_.tree(t).feed()))
            by_phase[system_.tree(t).phase()].push_back(t);
        else
            rootBudgets_[t] = 0.0;
    }
    for (const auto &[phase, trees] : by_phase) {
        Watts demand_sum = 0.0;
        for (const auto t : trees)
            demand_sum += tree_demand[t];
        for (const auto t : trees) {
            rootBudgets_[t] =
                demand_sum > 1e-6
                    ? config_.totalPerPhaseBudget * tree_demand[t]
                          / demand_sum
                    : config_.totalPerPhaseBudget
                          / static_cast<double>(trees.size());
        }
    }
}

ctrl::CappingController &
CapMaestroService::controller(std::size_t server_id)
{
    if (server_id >= servers_.size())
        util::panic("CapMaestroService: bad server id %zu", server_id);
    return *servers_[server_id].controller;
}

} // namespace capmaestro::core
