#include "core/events.hh"

#include <cstdio>

namespace capmaestro::core {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::FeedFailed:            return "feed-failed";
      case EventKind::FeedRestored:          return "feed-restored";
      case EventKind::SupplyFailed:          return "supply-failed";
      case EventKind::SupplyRestored:        return "supply-restored";
      case EventKind::BreakerOverloadBegan:  return "overload-began";
      case EventKind::BreakerOverloadCleared: return "overload-cleared";
      case EventKind::BreakerTripped:        return "breaker-tripped";
      case EventKind::BudgetInfeasible:      return "budget-infeasible";
      case EventKind::SpoReclaimed:          return "spo-reclaimed";
      case EventKind::UtilityDisturbance:    return "utility-disturbance";
      case EventKind::UpsBridged:            return "ups-bridged";
      case EventKind::EmergencyPeriod:       return "emergency-period";
      case EventKind::StaleMetricsReused:    return "stale-metrics";
      case EventKind::MetricsLost:           return "metrics-lost";
      case EventKind::DefaultBudgetApplied:  return "default-budget";
      case EventKind::WorkerFailover:        return "worker-failover";
      case EventKind::SpoFallback:           return "spo-fallback";
    }
    return "unknown";
}

void
EventLog::record(Seconds time, EventKind kind, std::string subject,
                 double value)
{
    events_.push_back({time, kind, std::move(subject), value});
}

std::vector<Event>
EventLog::ofKind(EventKind kind) const
{
    std::vector<Event> out;
    for (const auto &e : events_) {
        if (e.kind == kind)
            out.push_back(e);
    }
    return out;
}

std::size_t
EventLog::count(EventKind kind) const
{
    std::size_t n = 0;
    for (const auto &e : events_)
        n += e.kind == kind ? 1 : 0;
    return n;
}

void
EventLog::print(std::ostream &os) const
{
    char buf[160];
    for (const auto &e : events_) {
        std::snprintf(buf, sizeof(buf), "t=%-6lld %-18s %-24s %.1f\n",
                      static_cast<long long>(e.time),
                      eventKindName(e.kind), e.subject.c_str(), e.value);
        os << buf;
    }
    os.flush();
}

} // namespace capmaestro::core
