#include "core/events.hh"

#include <cstdio>

namespace capmaestro::core {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::FeedFailed:            return "feed-failed";
      case EventKind::FeedRestored:          return "feed-restored";
      case EventKind::SupplyFailed:          return "supply-failed";
      case EventKind::SupplyRestored:        return "supply-restored";
      case EventKind::BreakerOverloadBegan:  return "overload-began";
      case EventKind::BreakerOverloadCleared: return "overload-cleared";
      case EventKind::BreakerTripped:        return "breaker-tripped";
      case EventKind::BudgetInfeasible:      return "budget-infeasible";
      case EventKind::SpoReclaimed:          return "spo-reclaimed";
      case EventKind::UtilityDisturbance:    return "utility-disturbance";
      case EventKind::UpsBridged:            return "ups-bridged";
      case EventKind::EmergencyPeriod:       return "emergency-period";
      case EventKind::StaleMetricsReused:    return "stale-metrics";
      case EventKind::MetricsLost:           return "metrics-lost";
      case EventKind::DefaultBudgetApplied:  return "default-budget";
      case EventKind::WorkerFailover:        return "worker-failover";
      case EventKind::SpoFallback:           return "spo-fallback";
      case EventKind::WorkerRestartDetected: return "worker-restart";
      case EventKind::CheckpointReplayed:    return "checkpoint-replayed";
      case EventKind::WorkerRehomed:         return "worker-rehomed";
      case EventKind::RehomeDeclined:        return "rehome-declined";
      case EventKind::SafetyViolation:       return "safety-violation";
      case EventKind::MembershipJoinBegan:   return "membership-join";
      case EventKind::MembershipDrainBegan:  return "membership-drain";
      case EventKind::MembershipCommitted:   return "membership-committed";
      case EventKind::MembershipAdopted:     return "membership-adopted";
    }
    return "unknown";
}

std::optional<EventKind>
eventKindFromName(const std::string &name)
{
    static constexpr EventKind kAll[] = {
        EventKind::FeedFailed,          EventKind::FeedRestored,
        EventKind::SupplyFailed,        EventKind::SupplyRestored,
        EventKind::BreakerOverloadBegan,
        EventKind::BreakerOverloadCleared,
        EventKind::BreakerTripped,      EventKind::BudgetInfeasible,
        EventKind::SpoReclaimed,        EventKind::UtilityDisturbance,
        EventKind::UpsBridged,          EventKind::EmergencyPeriod,
        EventKind::StaleMetricsReused,  EventKind::MetricsLost,
        EventKind::DefaultBudgetApplied, EventKind::WorkerFailover,
        EventKind::SpoFallback,          EventKind::WorkerRestartDetected,
        EventKind::CheckpointReplayed,   EventKind::WorkerRehomed,
        EventKind::RehomeDeclined,       EventKind::SafetyViolation,
        EventKind::MembershipJoinBegan,  EventKind::MembershipDrainBegan,
        EventKind::MembershipCommitted,  EventKind::MembershipAdopted,
    };
    for (const EventKind kind : kAll) {
        if (name == eventKindName(kind))
            return kind;
    }
    return std::nullopt;
}

util::Json
eventToJson(const Event &event)
{
    util::Json::Object obj;
    obj.emplace("seq", util::Json(static_cast<double>(event.seq)));
    obj.emplace("time", util::Json(static_cast<double>(event.time)));
    obj.emplace("kind",
                util::Json(std::string(eventKindName(event.kind))));
    obj.emplace("subject", util::Json(event.subject));
    obj.emplace("value", util::Json(event.value));
    return util::Json(std::move(obj));
}

void
EventLog::record(Seconds time, EventKind kind, std::string subject,
                 double value)
{
    events_.push_back({nextSeq_++, time, kind, std::move(subject), value});
}

std::vector<Event>
EventLog::ofKind(EventKind kind) const
{
    std::vector<Event> out;
    for (const auto &e : events_) {
        if (e.kind == kind)
            out.push_back(e);
    }
    return out;
}

std::size_t
EventLog::count(EventKind kind) const
{
    std::size_t n = 0;
    for (const auto &e : events_)
        n += e.kind == kind ? 1 : 0;
    return n;
}

void
EventLog::print(std::ostream &os) const
{
    char buf[160];
    for (const auto &e : events_) {
        std::snprintf(buf, sizeof(buf), "t=%-6lld %-18s %-24s %.1f\n",
                      static_cast<long long>(e.time),
                      eventKindName(e.kind), e.subject.c_str(), e.value);
        os << buf;
    }
    os.flush();
}

void
EventLog::printJsonl(std::ostream &os) const
{
    for (const auto &e : events_)
        os << util::serializeJson(eventToJson(e), 0) << '\n';
    os.flush();
}

} // namespace capmaestro::core
