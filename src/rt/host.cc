#include "rt/host.hh"

#include <algorithm>

#include "policy/policy.hh"
#include "util/logging.hh"

namespace capmaestro::rt {

namespace {

/** Receive-poll granularity inside a period, milliseconds. */
constexpr double kPollSliceMs = 2.0;

/** Next-epoch frames held back before the host drops the excess. */
constexpr std::size_t kHoldbackCap = 65536;

} // namespace

WorkerHost::WorkerHost(config::LoadedScenario scenario,
                       config::WorkerPeers peers, std::uint32_t process,
                       std::uint64_t seed)
    : scenario_(std::move(scenario)), peers_(std::move(peers)),
      process_(process)
{
    init(seed);

    net::UdpConfig udp;
    udp.peers = peers_.peers;
    udp.local = locals_;
    // An aggregator's fan-in arrives as one burst per period; size the
    // sockets so a full burst (plus one held-back epoch) fits while
    // this process is descheduled on a loaded box.
    udp.bufferBytes = 4 << 20;
    ownedTransport_ = std::make_unique<net::UdpTransport>(std::move(udp));
    transport_ = ownedTransport_.get();
}

WorkerHost::WorkerHost(config::LoadedScenario scenario,
                       config::WorkerPeers peers, std::uint32_t process,
                       std::uint64_t seed, net::Transport &transport)
    : scenario_(std::move(scenario)), peers_(std::move(peers)),
      process_(process), transport_(&transport)
{
    init(seed);
}

WorkerHost::~WorkerHost() = default;

void
WorkerHost::init(std::uint64_t seed)
{
    if (!scenario_.system)
        util::fatal("rt: scenario has no power system");
    const auto &system = *scenario_.system;
    plan_ = core::TreePlan::build(system, peers_.aggLevels);
    if (peers_.peers.size() != plan_.workers.size()) {
        util::fatal("rt: peer table has %zu endpoints; the worker plan "
                    "needs %zu",
                    peers_.peers.size(), plan_.workers.size());
    }
    if (process_ >= peers_.processCount()) {
        util::fatal("rt: host process %u out of range (peer table "
                    "implies %u processes)",
                    process_, peers_.processCount());
    }
    locals_ = peers_.endpointsOf(process_);
    if (locals_.empty())
        util::fatal("rt: process %u hosts no endpoints", process_);

    nominalFloor_ = nominalEdgeFloors(system, scenario_);
    const auto partition =
        core::DistributedControlPlane::partitionEdges(system);
    const auto policy = policy::treePolicy(scenario_.service.policy);

    std::map<std::size_t, std::map<std::size_t, topo::NodeId>> want;
    for (const net::Transport::Endpoint ep : locals_) {
        const core::TreePlan::Worker &w = plan_.workers[ep];
        if (w.isLeaf()) {
            LeafRole leaf;
            leaf.ep = ep;
            leaf.parent = w.parent;
            leaf.edges = partition[ep];
            leaf.rack =
                std::make_unique<core::RackWorker>(system, policy);
            for (const auto &[tree, node] : leaf.edges)
                leaf.rack->addEdge(tree, node);
            leafIndex_[ep] = leaves_.size();
            leaves_.push_back(std::move(leaf));
            want[ep] = partition[ep];
        } else {
            AggRole role;
            role.ep = ep;
            role.tier = w.tier;
            // The root has no parent; point it at itself so the field
            // is never an out-of-range endpoint.
            role.parent = w.isRoot() ? ep : w.parent;
            role.agg = std::make_unique<AggregatorRole>(
                system, plan_, ep, policy, nominalFloor_,
                scenario_.service.protocol,
                w.isRoot() ? scenario_.rootBudgets
                           : std::vector<Watts>{});
            aggs_.push_back(std::move(role));
        }
    }
    auto plants = buildPlants(scenario_, system, want, seed);
    for (LeafRole &leaf : leaves_)
        leaf.plants = std::move(plants[leaf.ep]);

    // Ascending tier order: within one drain pass a hosted child
    // closes (and sends) before its hosted parent checks completeness.
    std::stable_sort(aggs_.begin(), aggs_.end(),
                     [](const AggRole &a, const AggRole &b) {
                         return a.tier < b.tier;
                     });
    for (std::size_t i = 0; i < aggs_.size(); ++i)
        aggIndex_[aggs_[i].ep] = i;
}

void
WorkerHost::leafApplyBudget(LeafRole &leaf, const net::Frame &frame)
{
    const std::size_t tree = frame.budget.tree;
    const auto node = static_cast<topo::NodeId>(frame.budget.edgeNode);
    const auto mine = leaf.edges.find(tree);
    if (mine == leaf.edges.end() || mine->second != node) {
        ++stats_.orphanFrames;
        return;
    }
    if (leaf.applied.count({tree, node}))
        return; // duplicate delivery
    leaf.rack->applyBudget(tree, node, frame.budget.budget);
    lastEdgeBudgets_[{tree, node}] = frame.budget.budget;
    leaf.applied.insert({tree, node});
    ++stats_.budgetsApplied;
}

void
WorkerHost::dispatch(net::Transport::Endpoint to,
                     const net::Frame &frame, std::uint32_t epoch)
{
    if (frame.epoch > maxSeenEpoch_)
        maxSeenEpoch_ = frame.epoch;
    // Heartbeats are pure epoch beacons: a parent pings the children
    // it closed a gather without, so a worker whose parent has moved
    // on — one lost frame, or a whole process behind the fleet —
    // can close out early instead of riding deadlines. The header has
    // been consumed; there is nothing to route or hold.
    if (frame.type == net::MsgType::Heartbeat) {
        const auto leaf_beacon = leafIndex_.find(to);
        if (leaf_beacon != leafIndex_.end()) {
            auto &ep = leaves_[leaf_beacon->second].beaconEpoch;
            ep = std::max(ep, frame.epoch);
        }
        const auto agg_beacon = aggIndex_.find(to);
        if (agg_beacon != aggIndex_.end()) {
            auto &ep = aggs_[agg_beacon->second].beaconEpoch;
            ep = std::max(ep, frame.epoch);
        }
        return;
    }
    // A finished neighbor can already be one epoch ahead; its frames
    // are re-dispatched when this host enters that epoch.
    if (frame.epoch > epoch) {
        if (holdback_.size() < kHoldbackCap)
            holdback_.push_back({to, frame});
        else
            ++stats_.orphanFrames;
        return;
    }
    const auto leaf_it = leafIndex_.find(to);
    if (leaf_it != leafIndex_.end()) {
        if (frame.epoch != epoch
            || frame.type != net::MsgType::Budget) {
            ++stats_.orphanFrames;
            return;
        }
        leafApplyBudget(leaves_[leaf_it->second], frame);
        return;
    }
    const auto agg_it = aggIndex_.find(to);
    if (agg_it != aggIndex_.end()) {
        AggRole &role = aggs_[agg_it->second];
        const std::uint16_t parent_sender =
            role.parent == plan_.rootEndpoint()
                ? net::kRoomSender
                : static_cast<std::uint16_t>(role.parent);
        if (frame.type == net::MsgType::SubBudget)
            role.agg->noteDownFrame(frame, parent_sender, stats_);
        else
            role.agg->noteUpFrame(frame, stats_);
        return;
    }
    ++stats_.orphanFrames;
}

void
WorkerHost::closeLeaf(LeafRole &leaf, std::uint32_t epoch)
{
    const auto &system = *scenario_.system;
    for (const auto &[tree, node] : leaf.edges) {
        if (leaf.applied.count({tree, node}))
            continue;
        const Watts fallback =
            std::min(leaf.rack->defaultBudget(tree, node),
                     nominalFloor_.at({tree, node}));
        leaf.rack->applyBudget(tree, node, fallback);
        lastEdgeBudgets_[{tree, node}] = fallback;
        ++stats_.defaultBudgets;
        events_.record(static_cast<Seconds>(epoch),
                       core::EventKind::DefaultBudgetApplied,
                       system.tree(tree).name() + "."
                           + system.tree(tree).node(node).name,
                       fallback);
    }
    applyPlantBudgets(leaf.plants, *leaf.rack);
    leaf.done = true;
}

void
WorkerHost::aggSendUp(AggRole &role, std::uint32_t epoch)
{
    role.upDone = true;
    // Epoch beacon: ping every child that stayed silent through this
    // gather so a process lagging behind the fleet epoch can detect
    // the gap and fast-forward. Free of charge on a lossless run —
    // a complete gather has no silent children.
    for (const std::uint32_t child : role.agg->silentChildren()) {
        transport_->send(
            role.ep, static_cast<net::Transport::Endpoint>(child),
            net::encodeHeartbeat({static_cast<std::uint16_t>(role.ep),
                                  epoch, seq_++}));
    }
    const auto summaries = role.agg->closeGather(stats_, events_);
    if (role.agg->isRoot()) {
        // The root's down half follows immediately: its inputs are the
        // boundary it just closed.
        aggSendDown(role, epoch);
        return;
    }
    for (const auto &msg : summaries) {
        transport_->send(
            role.ep, role.parent,
            net::encodeSummary({static_cast<std::uint16_t>(role.ep),
                                epoch, seq_++},
                               msg));
        ++stats_.summariesSent;
    }
}

void
WorkerHost::aggSendDown(AggRole &role, std::uint32_t epoch)
{
    role.downDone = true;
    const std::uint16_t sender =
        role.agg->isRoot() ? net::kRoomSender
                           : static_cast<std::uint16_t>(role.ep);
    for (const AggregatorRole::DownMsg &down :
         role.agg->computeDown(stats_)) {
        auto bytes =
            down.leafChild
                ? net::encodeBudget({sender, epoch, seq_++}, down.msg)
                : net::encodeSubBudget({sender, epoch, seq_++},
                                       down.msg);
        transport_->send(
            role.ep, static_cast<net::Transport::Endpoint>(down.child),
            std::move(bytes));
    }
}

void
WorkerHost::runPeriod(std::uint32_t epoch)
{
    const auto &proto = scenario_.service.protocol;
    net::Transport &tp = *transport_;
    const double start = tp.nowMs();
    const double tiers = static_cast<double>(plan_.tiers());
    const double gather_all_end =
        start + (tiers - 1.0) * proto.gatherDeadlineMs;
    const double leaf_close =
        gather_all_end + (tiers - 1.0) * proto.budgetDeadlineMs;
    const auto gather_close = [&](std::uint32_t tier) {
        return start
               + static_cast<double>(tier) * proto.gatherDeadlineMs;
    };
    const auto down_close = [&](std::uint32_t tier) {
        return gather_all_end
               + (tiers - 1.0 - static_cast<double>(tier))
                     * proto.budgetDeadlineMs;
    };

    // ---- reset the per-epoch role state before any frame (including
    // a held-back one) can land.
    for (AggRole &role : aggs_) {
        role.agg->beginEpoch(epoch);
        role.upDone = false;
        role.downDone = false;
    }
    for (LeafRole &leaf : leaves_) {
        leaf.applied.clear();
        leaf.done = false;
    }

    // ---- plants + upstream metrics for every hosted leaf. Host mode
    // streams no checkpoints: deep plans have no re-homing consumer.
    Seconds advanced = simNow_;
    for (LeafRole &leaf : leaves_) {
        Seconds now = simNow_;
        advancePlants(leaf.plants, scenario_.service.controlPeriod,
                      now);
        advanced = now;
        net::CheckpointMsg unused;
        closePlantPeriods(leaf.plants, *scenario_.system, *leaf.rack,
                          unused);
        for (const auto &[tree, node] : leaf.edges) {
            net::MetricsMsg msg;
            msg.tree = static_cast<std::uint16_t>(tree);
            msg.edgeNode = static_cast<std::uint32_t>(node);
            msg.metrics = leaf.rack->computeMetrics(tree, node);
            tp.send(leaf.ep, leaf.parent,
                    net::encodeMetrics(
                        {static_cast<std::uint16_t>(leaf.ep), epoch,
                         seq_++},
                        msg));
        }
    }
    simNow_ = advanced;

    // ---- replay frames held back for this epoch.
    std::vector<HeldFrame> keep;
    for (HeldFrame &held : holdback_) {
        if (held.frame.epoch == epoch)
            dispatch(held.to, held.frame, epoch);
        else if (held.frame.epoch > epoch)
            keep.push_back(std::move(held));
        else
            ++stats_.orphanFrames;
    }
    holdback_ = std::move(keep);

    // ---- the event loop: one drain pass services every hosted role;
    // each role advances on completeness, with the tier-staggered §4.5
    // deadline cascade as the degraded-mode timeout.
    for (;;) {
        for (const auto &delivery : tp.drain(locals_)) {
            const auto frame = net::decodeFrame(delivery.frame);
            if (!frame) {
                ++stats_.corruptFrames;
                continue;
            }
            dispatch(delivery.to, *frame, epoch);
        }
        const double now = tp.nowMs();
        // Lagging detection: lossless pipelining runs at most one
        // epoch ahead, so any frame from epoch+2 proves the fleet
        // already degraded past this whole host — close the period
        // immediately with the usual fallbacks and burn forward
        // instead of riding deadlines ever further behind. A parent
        // beacon at or past the current epoch does the same for the
        // one role it targets: the beacon and the budget are mutually
        // exclusive per epoch (the parent sends one or the other at
        // gather close), so this role's phases are already closed
        // upstream and waiting longer buys nothing — closing now puts
        // its next-epoch frames ahead of the parent, where holdback
        // replays them fresh and the chase converges.
        const bool lagging = maxSeenEpoch_ > epoch + 1;
        bool all_done = true;
        for (AggRole &role : aggs_) {
            const bool expired = lagging || role.beaconEpoch >= epoch;
            if (!role.upDone
                && (role.agg->upComplete() || expired
                    || now >= gather_close(role.tier)))
                aggSendUp(role, epoch);
            if (role.upDone && !role.downDone
                && (role.agg->downComplete() || expired
                    || now >= down_close(role.tier)))
                aggSendDown(role, epoch);
            all_done = all_done && role.upDone && role.downDone;
        }
        for (LeafRole &leaf : leaves_) {
            if (!leaf.done
                && (leaf.applied.size() == leaf.edges.size() || lagging
                    || leaf.beaconEpoch >= epoch || now >= leaf_close))
                closeLeaf(leaf, epoch);
            all_done = all_done && leaf.done;
        }
        if (all_done) {
            if (lagging)
                ++stats_.catchUpPeriods;
            break;
        }
        const double remaining = leaf_close - tp.nowMs();
        tp.advanceBy(remaining > 0.0
                         ? std::min(remaining, kPollSliceMs)
                         : kPollSliceMs);
    }

    lastEpoch_ = epoch;
    ++stats_.periodsRun;
}

std::size_t
WorkerHost::runPeriods(std::size_t max_periods)
{
    std::size_t done = 0;
    while (done < max_periods
           && !stop_.load(std::memory_order_relaxed)) {
        runPeriod(lastEpoch_ + 1);
        ++done;
    }
    return done;
}

} // namespace capmaestro::rt
