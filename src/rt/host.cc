#include "rt/host.hh"

#include <algorithm>
#include <chrono>

#include "policy/policy.hh"
#include "util/logging.hh"

namespace capmaestro::rt {

namespace {

/** Receive-poll granularity inside a period, milliseconds. */
constexpr double kPollSliceMs = 2.0;

/** Next-epoch frames held back before the host drops the excess. */
constexpr std::size_t kHoldbackCap = 65536;

/** Hop spans recorded per period trace (a 10k-leaf gather would
 *  otherwise swamp the trace arena). */
constexpr std::size_t kMaxHopSpansPerPeriod = 256;

/** Completed period traces retained for /tracez. */
constexpr std::size_t kTracezPeriods = 32;

/** Unix realtime clock in milliseconds (cross-process comparable on
 *  one machine, unlike UdpTransport's per-process monotonic origin). */
double
unixNowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

const char *
hopKindName(net::MsgType type)
{
    switch (type) {
    case net::MsgType::Metrics:
        return "metrics";
    case net::MsgType::Budget:
        return "budget";
    case net::MsgType::Summary:
        return "summary";
    case net::MsgType::SubBudget:
        return "sub_budget";
    case net::MsgType::Heartbeat:
        return "heartbeat";
    default:
        return "other";
    }
}

} // namespace

WorkerHost::WorkerHost(config::LoadedScenario scenario,
                       config::WorkerPeers peers, std::uint32_t process,
                       std::uint64_t seed)
    : scenario_(std::move(scenario)), peers_(std::move(peers)),
      process_(process)
{
    init(seed);

    net::UdpConfig udp;
    udp.peers = peers_.peers;
    udp.local = locals_;
    // An aggregator's fan-in arrives as one burst per period; size the
    // sockets so a full burst (plus one held-back epoch) fits while
    // this process is descheduled on a loaded box.
    udp.bufferBytes = 4 << 20;
    ownedTransport_ = std::make_unique<net::UdpTransport>(std::move(udp));
    transport_ = ownedTransport_.get();
}

WorkerHost::WorkerHost(config::LoadedScenario scenario,
                       config::WorkerPeers peers, std::uint32_t process,
                       std::uint64_t seed, net::Transport &transport)
    : scenario_(std::move(scenario)), peers_(std::move(peers)),
      process_(process), transport_(&transport)
{
    init(seed);
}

WorkerHost::~WorkerHost() = default;

double
WorkerHost::hopClockMs() const
{
    // UdpTransport's nowMs() is relative to each process's start, so
    // cross-process hop latency needs the shared realtime clock; the
    // sim transport's virtual clock is already shared by every host
    // driven over it.
    return ownedTransport_ ? unixNowMs() : transport_->nowMs();
}

net::FrameMeta
WorkerHost::stampMeta(std::uint16_t sender, std::uint32_t epoch,
                      std::uint32_t tier)
{
    net::FrameMeta meta(sender, epoch, seq_++);
    meta.wireVersion = wireVersion_;
    if (obs_) {
        net::TraceContext trace;
        trace.traceId = static_cast<std::uint16_t>(epoch & 0xFFFF);
        trace.originTier = static_cast<std::uint8_t>(tier);
        trace.sendMs = hopClockMs();
        meta.trace = trace;
    }
    return meta;
}

void
WorkerHost::recordHop(const net::Frame &frame, std::uint32_t to_tier)
{
    if (!frame.trace.has_value())
        return;
    const double latency =
        std::max(0.0, hopClockMs() - frame.trace->sendMs);
    const std::uint32_t from_tier = frame.trace->originTier;
    if (registry_) {
        const auto key =
            std::make_tuple(static_cast<std::uint8_t>(frame.type),
                            from_tier, to_tier);
        auto it = hopHist_.find(key);
        if (it == hopHist_.end()) {
            telemetry::Labels ls{
                {"process", std::to_string(process_)},
                {"kind", hopKindName(frame.type)},
                {"from_tier", std::to_string(from_tier)},
                {"to_tier", std::to_string(to_tier)}};
            it = hopHist_
                     .emplace(key,
                              registry_->histogram(
                                  "capmaestro_hop_latency_ms", 0.0,
                                  100.0, 64, std::move(ls),
                                  "Per-hop frame latency measured "
                                  "from the wire trace context"))
                     .first;
        }
        it->second.observe(latency);
    }
    if (tracer_ && tracer_->inPeriod()
        && hopSpans_ < kMaxHopSpansPerPeriod) {
        ++hopSpans_;
        const auto span = tracer_->begin("hop");
        tracer_->str(span, "kind", hopKindName(frame.type));
        tracer_->num(span, "from", frame.sender);
        tracer_->str(span, "from_tier", std::to_string(from_tier));
        tracer_->str(span, "to_tier", std::to_string(to_tier));
        tracer_->num(span, "latencyMs", latency);
        tracer_->num(span, "traceId", frame.trace->traceId);
        tracer_->end(span);
    }
}

void
WorkerHost::auditDown(AggRole &role, std::uint32_t epoch,
                      const std::vector<AggregatorRole::DownMsg> &downs)
{
    if (!obs_)
        return;
    const AggregatorRole &agg = *role.agg;
    const std::vector<Watts> &reserved = agg.reservedFloors();
    for (const auto &[tree, top] : agg.stations()) {
        (void)top;
        Watts granted = 0.0;
        if (agg.isRoot()) {
            granted = agg.rootBudgets()[tree];
        } else {
            const auto sub = agg.receivedBudget(tree);
            if (!sub.has_value())
                continue; // nothing granted, nothing committed
            granted = *sub;
        }
        Watts committed = 0.0;
        for (const AggregatorRole::DownMsg &down : downs) {
            if (down.msg.tree == tree)
                committed += down.msg.budget;
        }
        const std::string subject = scenario_.system->tree(tree).name()
                                    + "@w" + std::to_string(role.ep);
        if (!auditor_.audit(epoch, subject, granted, committed,
                            reserved[tree])) {
            events_.record(static_cast<Seconds>(epoch),
                           core::EventKind::SafetyViolation, subject,
                           committed + reserved[tree] - granted);
        }
    }
}

void
WorkerHost::reportChildHealth(AggRole &role, std::uint32_t epoch)
{
    if (!obs_)
        return;
    // Worst state per child endpoint across its stations (the health
    // enum is ordered by severity).
    std::map<std::uint32_t, telemetry::UnitHealth> worst;
    const auto &owners = role.agg->childStations();
    for (const auto &[key, health] : role.agg->stationHealth()) {
        const auto owner = owners.find(key);
        if (owner == owners.end())
            continue;
        telemetry::UnitHealth h = telemetry::UnitHealth::Live;
        if (health == AggregatorRole::StationHealth::Stale)
            h = telemetry::UnitHealth::Stale;
        else if (health == AggregatorRole::StationHealth::Lost)
            h = telemetry::UnitHealth::Lost;
        const auto [it, inserted] = worst.emplace(owner->second, h);
        if (!inserted && static_cast<int>(h) > static_cast<int>(it->second))
            it->second = h;
    }
    for (const auto &[child, h] : worst)
        fleetHealth_.report("w" + std::to_string(child), h, epoch);
}

void
WorkerHost::publishStats()
{
    if (statGauges_.empty())
        return;
    statGauges_["periods_run"].set(
        static_cast<double>(stats_.periodsRun));
    statGauges_["budgets_applied"].set(
        static_cast<double>(stats_.budgetsApplied));
    statGauges_["default_budgets"].set(
        static_cast<double>(stats_.defaultBudgets));
    statGauges_["stale_reuses"].set(
        static_cast<double>(stats_.staleReuses));
    statGauges_["metrics_lost"].set(
        static_cast<double>(stats_.metricsLost));
    statGauges_["orphan_frames"].set(
        static_cast<double>(stats_.orphanFrames));
    statGauges_["corrupt_frames"].set(
        static_cast<double>(stats_.corruptFrames));
    statGauges_["summaries_sent"].set(
        static_cast<double>(stats_.summariesSent));
    statGauges_["sub_budgets_applied"].set(
        static_cast<double>(stats_.subBudgetsApplied));
    statGauges_["sub_budgets_missed"].set(
        static_cast<double>(stats_.subBudgetsMissed));
    statGauges_["catch_up_periods"].set(
        static_cast<double>(stats_.catchUpPeriods));
}

void
WorkerHost::setTelemetry(telemetry::Registry *registry,
                         telemetry::PeriodTracer *tracer)
{
    registry_ = registry;
    tracer_ = tracer;
    obs_ = registry_ != nullptr || tracer_ != nullptr;
    if (!registry_)
        return;
    const telemetry::Labels base{
        {"process", std::to_string(process_)}};
    periodsCounter_ = registry_->counter(
        "capmaestro_host_periods_total", base,
        "Control periods completed by this host process");
    catchUpCounter_ = registry_->counter(
        "capmaestro_host_catch_up_periods_total", base,
        "Periods closed early to rejoin the fleet epoch");
    for (const char *stat :
         {"periods_run", "budgets_applied", "default_budgets",
          "stale_reuses", "metrics_lost", "orphan_frames",
          "corrupt_frames", "summaries_sent", "sub_budgets_applied",
          "sub_budgets_missed", "catch_up_periods"}) {
        telemetry::Labels ls = base;
        ls.emplace_back("stat", stat);
        statGauges_[stat] = registry_->gauge(
            "capmaestro_host_stat", std::move(ls),
            "Cumulative RuntimeStats counter mirror");
    }
    // Hosted-endpoint census per tier, so a scraper sees the layout.
    std::map<std::uint32_t, std::size_t> perTier;
    for (const net::Transport::Endpoint ep : locals_)
        ++perTier[plan_.workers[ep].tier];
    for (const auto &[tier, count] : perTier) {
        telemetry::Labels ls = base;
        ls.emplace_back("tier", std::to_string(tier));
        registry_
            ->gauge("capmaestro_host_endpoints", std::move(ls),
                    "Endpoints hosted by this process, per tier")
            .set(static_cast<double>(count));
    }
    fleetHealth_.setTelemetry(registry_, base);
    auditor_.setTelemetry(registry_, base);
    publishStats();
}

std::uint16_t
WorkerHost::serveHttp(std::uint16_t port)
{
    if (!http_.listen(port))
        return 0;
    http_.handle("/metrics", [this] {
        net::HttpResponse resp;
        resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = registry_ ? registry_->renderPrometheus() : "";
        return resp;
    });
    http_.handle("/healthz", [this] {
        net::HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = util::serializeJson(healthJson(), 0) + "\n";
        return resp;
    });
    http_.handle("/tracez", [this] {
        net::HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = tracer_ ? util::serializeJson(
                        tracer_->lastJson(kTracezPeriods), 0)
                            : "[]";
        resp.body += "\n";
        return resp;
    });
    return http_.port();
}

util::Json
WorkerHost::healthJson() const
{
    util::Json::Object stats;
    stats.emplace("orphanFrames", util::Json(static_cast<double>(
                                      stats_.orphanFrames)));
    stats.emplace("corruptFrames", util::Json(static_cast<double>(
                                       stats_.corruptFrames)));
    stats.emplace("staleReuses", util::Json(static_cast<double>(
                                     stats_.staleReuses)));
    stats.emplace("metricsLost", util::Json(static_cast<double>(
                                     stats_.metricsLost)));
    stats.emplace("defaultBudgets", util::Json(static_cast<double>(
                                        stats_.defaultBudgets)));
    stats.emplace("catchUpPeriods", util::Json(static_cast<double>(
                                        stats_.catchUpPeriods)));

    util::Json::Object member;
    member.emplace("generation",
                   util::Json(static_cast<double>(
                       membership_.generation())));
    member.emplace("joining",
                   util::Json(static_cast<double>(membership_.countOf(
                       membership::UnitState::Joining))));
    member.emplace("draining",
                   util::Json(static_cast<double>(membership_.countOf(
                       membership::UnitState::Draining))));
    member.emplace("left",
                   util::Json(static_cast<double>(membership_.countOf(
                       membership::UnitState::Left))));
    member.emplace("shadowPeriods",
                   util::Json(static_cast<double>(
                       stats_.shadowPeriods)));

    util::Json::Object out;
    out.emplace("ok", util::Json(auditor_.violations() == 0));
    out.emplace("process",
                util::Json(static_cast<double>(process_)));
    out.emplace("lastEpoch",
                util::Json(static_cast<double>(lastEpoch_)));
    out.emplace("periods",
                util::Json(static_cast<double>(stats_.periodsRun)));
    out.emplace("endpoints",
                util::Json(static_cast<double>(locals_.size())));
    out.emplace("leaves",
                util::Json(static_cast<double>(leaves_.size())));
    out.emplace("aggregators",
                util::Json(static_cast<double>(aggs_.size())));
    out.emplace("generation",
                util::Json(static_cast<double>(
                    membership_.generation())));
    out.emplace("stats", util::Json(std::move(stats)));
    out.emplace("membership", util::Json(std::move(member)));
    out.emplace("fleet", fleetHealth_.toJson());
    out.emplace("safety", auditor_.toJson());
    return util::Json(std::move(out));
}

void
WorkerHost::init(std::uint64_t seed)
{
    if (!scenario_.system)
        util::fatal("rt: scenario has no power system");
    const auto &system = *scenario_.system;
    plan_ = core::TreePlan::build(system, peers_.aggLevels);
    if (peers_.peers.size() != plan_.workers.size()) {
        util::fatal("rt: peer table has %zu endpoints; the worker plan "
                    "needs %zu",
                    peers_.peers.size(), plan_.workers.size());
    }
    if (process_ >= peers_.processCount()) {
        util::fatal("rt: host process %u out of range (peer table "
                    "implies %u processes)",
                    process_, peers_.processCount());
    }
    locals_ = peers_.endpointsOf(process_);
    if (locals_.empty())
        util::fatal("rt: process %u hosts no endpoints", process_);

    // Every deployment boots with the static table (all Live at
    // generation 1); a broadcast from an elastic root supersedes it.
    membership_ = membership::MembershipTable::allLive(
        plan_.workers.size());

    nominalFloor_ = nominalEdgeFloors(system, scenario_);
    const auto partition =
        core::DistributedControlPlane::partitionEdges(system);
    const auto policy = policy::treePolicy(scenario_.service.policy);

    std::map<std::size_t, std::map<std::size_t, topo::NodeId>> want;
    for (const net::Transport::Endpoint ep : locals_) {
        const core::TreePlan::Worker &w = plan_.workers[ep];
        if (w.isLeaf()) {
            LeafRole leaf;
            leaf.ep = ep;
            leaf.parent = w.parent;
            leaf.edges = partition[ep];
            leaf.rack =
                std::make_unique<core::RackWorker>(system, policy);
            for (const auto &[tree, node] : leaf.edges)
                leaf.rack->addEdge(tree, node);
            leafIndex_[ep] = leaves_.size();
            leaves_.push_back(std::move(leaf));
            want[ep] = partition[ep];
        } else {
            AggRole role;
            role.ep = ep;
            role.tier = w.tier;
            // The root has no parent; point it at itself so the field
            // is never an out-of-range endpoint.
            role.parent = w.isRoot() ? ep : w.parent;
            role.agg = std::make_unique<AggregatorRole>(
                system, plan_, ep, policy, nominalFloor_,
                scenario_.service.protocol,
                w.isRoot() ? scenario_.rootBudgets
                           : std::vector<Watts>{});
            aggs_.push_back(std::move(role));
        }
    }
    auto plants = buildPlants(scenario_, system, want, seed);
    for (LeafRole &leaf : leaves_)
        leaf.plants = std::move(plants[leaf.ep]);

    // Ascending tier order: within one drain pass a hosted child
    // closes (and sends) before its hosted parent checks completeness.
    std::stable_sort(aggs_.begin(), aggs_.end(),
                     [](const AggRole &a, const AggRole &b) {
                         return a.tier < b.tier;
                     });
    for (std::size_t i = 0; i < aggs_.size(); ++i)
        aggIndex_[aggs_[i].ep] = i;
}

void
WorkerHost::leafApplyBudget(LeafRole &leaf, const net::Frame &frame)
{
    const std::size_t tree = frame.budget.tree;
    const auto node = static_cast<topo::NodeId>(frame.budget.edgeNode);
    const auto mine = leaf.edges.find(tree);
    if (mine == leaf.edges.end() || mine->second != node) {
        ++stats_.orphanFrames;
        return;
    }
    if (leaf.applied.count({tree, node}))
        return; // duplicate delivery
    const Watts granted =
        membershipClamp(leaf.ep, tree, node, frame.budget.budget);
    leaf.rack->applyBudget(tree, node, granted);
    lastEdgeBudgets_[{tree, node}] = granted;
    leaf.applied.insert({tree, node});
    ++stats_.budgetsApplied;
}

void
WorkerHost::dispatch(net::Transport::Endpoint to,
                     const net::Frame &frame, std::uint32_t epoch)
{
    if (frame.epoch > maxSeenEpoch_)
        maxSeenEpoch_ = frame.epoch;
    if (obs_)
        recordHop(frame, plan_.workers[to].tier);
    // The membership plane is epoch-free (the table generation is its
    // clock), so its frames bypass holdback and every epoch check.
    // Host mode is replica-only: deltas are adopted and acked; acks
    // have no consumer here (elasticity is driven by a WorkerRuntime
    // deep-root, never a hosted root — see host.hh).
    if (frame.type == net::MsgType::MembershipDelta) {
        adoptMembership(to, frame, epoch);
        return;
    }
    if (frame.type == net::MsgType::MembershipAck) {
        ++stats_.orphanFrames;
        return;
    }
    // Heartbeats are pure epoch beacons: a parent pings the children
    // it closed a gather without, so a worker whose parent has moved
    // on — one lost frame, or a whole process behind the fleet —
    // can close out early instead of riding deadlines. The header has
    // been consumed; there is nothing to route or hold.
    if (frame.type == net::MsgType::Heartbeat) {
        const auto leaf_beacon = leafIndex_.find(to);
        if (leaf_beacon != leafIndex_.end()) {
            auto &ep = leaves_[leaf_beacon->second].beaconEpoch;
            ep = std::max(ep, frame.epoch);
        }
        const auto agg_beacon = aggIndex_.find(to);
        if (agg_beacon != aggIndex_.end()) {
            auto &ep = aggs_[agg_beacon->second].beaconEpoch;
            ep = std::max(ep, frame.epoch);
        }
        return;
    }
    // A finished neighbor can already be one epoch ahead; its frames
    // are re-dispatched when this host enters that epoch.
    if (frame.epoch > epoch) {
        if (holdback_.size() < kHoldbackCap)
            holdback_.push_back({to, frame});
        else
            ++stats_.orphanFrames;
        return;
    }
    const auto leaf_it = leafIndex_.find(to);
    if (leaf_it != leafIndex_.end()) {
        if (frame.epoch != epoch
            || frame.type != net::MsgType::Budget) {
            ++stats_.orphanFrames;
            return;
        }
        leafApplyBudget(leaves_[leaf_it->second], frame);
        return;
    }
    const auto agg_it = aggIndex_.find(to);
    if (agg_it != aggIndex_.end()) {
        AggRole &role = aggs_[agg_it->second];
        const std::uint16_t parent_sender =
            role.parent == plan_.rootEndpoint()
                ? net::kRoomSender
                : static_cast<std::uint16_t>(role.parent);
        if (frame.type == net::MsgType::SubBudget)
            role.agg->noteDownFrame(frame, parent_sender, stats_);
        else
            role.agg->noteUpFrame(frame, stats_);
        return;
    }
    ++stats_.orphanFrames;
}

void
WorkerHost::setWireVersion(std::uint8_t v)
{
    if (v != net::kWireVersion && v != net::kWireCompatVersion) {
        util::fatal("host: wire version %u is neither current (%u) nor "
                    "compat (%u)",
                    v, net::kWireVersion, net::kWireCompatVersion);
    }
    wireVersion_ = v;
}

void
WorkerHost::adoptMembership(net::Transport::Endpoint to,
                            const net::Frame &frame, std::uint32_t epoch)
{
    if (frame.sender != net::kRoomSender) {
        ++stats_.orphanFrames;
        return;
    }
    if (membership_.applyDelta(frame.membershipDelta)) {
        ++stats_.membershipDeltasApplied;
        events_.record(static_cast<Seconds>(epoch),
                       core::EventKind::MembershipAdopted,
                       "process." + std::to_string(process_),
                       static_cast<double>(membership_.generation()));
    }
    // Ack even a stale or idempotent re-broadcast: the ack is what
    // stops the root's per-period re-send. A compat-stamped host
    // cannot encode membership frames; the root keeps broadcasting to
    // it until the rolling upgrade flips the version.
    if (wireVersion_ != net::kWireVersion)
        return;
    const auto me = static_cast<std::uint16_t>(to);
    net::MembershipAckMsg ack;
    ack.generation = membership_.generation();
    ack.endpoint = me;
    ack.state = static_cast<net::WireUnitState>(membership_.state(me));
    transport_->send(to, plan_.rootEndpoint(),
                     net::encodeMembershipAck(
                         stampMeta(me, epoch, plan_.workers[to].tier),
                         ack));
    ++stats_.membershipAcksSent;
}

Watts
WorkerHost::membershipClamp(net::Transport::Endpoint ep,
                            std::size_t tree, topo::NodeId node,
                            Watts watts) const
{
    switch (membership_.state(static_cast<std::uint16_t>(ep))) {
    case membership::UnitState::Live:
        return watts;
    case membership::UnitState::Left:
        // The root released (or will release) this unit's floor on the
        // strength of its Left ack; drawing anything would overdraw.
        return 0.0;
    default:
        // Joining/Draining shadow: the unit's nominal floor is
        // reserved root-side, so the floor is all it may draw.
        return std::min(watts, nominalFloor_.at({tree, node}));
    }
}

void
WorkerHost::closeLeaf(LeafRole &leaf, std::uint32_t epoch)
{
    const auto &system = *scenario_.system;
    for (const auto &[tree, node] : leaf.edges) {
        if (leaf.applied.count({tree, node}))
            continue;
        const Watts fallback = membershipClamp(
            leaf.ep, tree, node,
            std::min(leaf.rack->defaultBudget(tree, node),
                     nominalFloor_.at({tree, node})));
        leaf.rack->applyBudget(tree, node, fallback);
        lastEdgeBudgets_[{tree, node}] = fallback;
        ++stats_.defaultBudgets;
        events_.record(static_cast<Seconds>(epoch),
                       core::EventKind::DefaultBudgetApplied,
                       system.tree(tree).name() + "."
                           + system.tree(tree).node(node).name,
                       fallback);
    }
    if (!membership_.isLive(static_cast<std::uint16_t>(leaf.ep)))
        ++stats_.shadowPeriods;
    applyPlantBudgets(leaf.plants, *leaf.rack);
    leaf.done = true;
}

void
WorkerHost::aggSendUp(AggRole &role, std::uint32_t epoch)
{
    role.upDone = true;
    // Epoch beacon: ping every child that stayed silent through this
    // gather so a process lagging behind the fleet epoch can detect
    // the gap and fast-forward. Free of charge on a lossless run —
    // a complete gather has no silent children.
    for (const std::uint32_t child : role.agg->silentChildren()) {
        transport_->send(
            role.ep, static_cast<net::Transport::Endpoint>(child),
            net::encodeHeartbeat(
                stampMeta(static_cast<std::uint16_t>(role.ep), epoch,
                          role.tier)));
    }
    const auto summaries = role.agg->closeGather(stats_, events_);
    reportChildHealth(role, epoch);
    if (tracer_) {
        tracer_->end(role.gatherSpan);
        role.downSpan = tracer_->begin("down");
        tracer_->num(role.downSpan, "tier",
                     static_cast<double>(role.tier));
        tracer_->num(role.downSpan, "worker",
                     static_cast<double>(role.ep));
    }
    if (role.agg->isRoot()) {
        // The root's down half follows immediately: its inputs are the
        // boundary it just closed.
        aggSendDown(role, epoch);
        return;
    }
    for (const auto &msg : summaries) {
        transport_->send(
            role.ep, role.parent,
            net::encodeSummary(
                stampMeta(static_cast<std::uint16_t>(role.ep), epoch,
                          role.tier),
                msg));
        ++stats_.summariesSent;
    }
}

void
WorkerHost::aggSendDown(AggRole &role, std::uint32_t epoch)
{
    role.downDone = true;
    const std::uint16_t sender =
        role.agg->isRoot() ? net::kRoomSender
                           : static_cast<std::uint16_t>(role.ep);
    const auto downs = role.agg->computeDown(stats_);
    auditDown(role, epoch, downs);
    for (const AggregatorRole::DownMsg &down : downs) {
        const auto meta = stampMeta(sender, epoch, role.tier);
        auto bytes = down.leafChild
                         ? net::encodeBudget(meta, down.msg)
                         : net::encodeSubBudget(meta, down.msg);
        transport_->send(
            role.ep, static_cast<net::Transport::Endpoint>(down.child),
            std::move(bytes));
    }
    if (tracer_) {
        tracer_->end(role.downSpan);
        role.downSpan = telemetry::PeriodTracer::kNoSpan;
    }
}

void
WorkerHost::runPeriod(std::uint32_t epoch)
{
    const auto &proto = scenario_.service.protocol;
    net::Transport &tp = *transport_;
    const double start = tp.nowMs();
    const double tiers = static_cast<double>(plan_.tiers());
    const double gather_all_end =
        start + (tiers - 1.0) * proto.gatherDeadlineMs;
    const double leaf_close =
        gather_all_end + (tiers - 1.0) * proto.budgetDeadlineMs;
    const auto gather_close = [&](std::uint32_t tier) {
        return start
               + static_cast<double>(tier) * proto.gatherDeadlineMs;
    };
    const auto down_close = [&](std::uint32_t tier) {
        return gather_all_end
               + (tiers - 1.0 - static_cast<double>(tier))
                     * proto.budgetDeadlineMs;
    };

    if (tracer_) {
        tracer_->noteSimTime(simNow_);
        tracer_->beginPeriod(epoch);
        tracer_->periodStr("role",
                           "host" + std::to_string(process_));
        tracer_->periodNum("process",
                           static_cast<double>(process_));
        tracer_->periodNum("epoch", static_cast<double>(epoch));
        tracer_->periodNum("traceId",
                           static_cast<double>(epoch & 0xFFFF));
    }
    hopSpans_ = 0;

    // ---- reset the per-epoch role state before any frame (including
    // a held-back one) can land.
    for (AggRole &role : aggs_) {
        role.agg->beginEpoch(epoch);
        role.upDone = false;
        role.downDone = false;
        role.gatherSpan = telemetry::PeriodTracer::kNoSpan;
        role.downSpan = telemetry::PeriodTracer::kNoSpan;
        if (tracer_) {
            role.gatherSpan = tracer_->begin("gather");
            tracer_->num(role.gatherSpan, "tier",
                         static_cast<double>(role.tier));
            tracer_->num(role.gatherSpan, "worker",
                         static_cast<double>(role.ep));
        }
    }
    for (LeafRole &leaf : leaves_) {
        leaf.applied.clear();
        leaf.done = false;
    }
    leafSpan_ = telemetry::PeriodTracer::kNoSpan;
    if (tracer_ && !leaves_.empty()) {
        leafSpan_ = tracer_->begin("leaf_budget_wait");
        tracer_->num(leafSpan_, "leaves",
                     static_cast<double>(leaves_.size()));
    }

    // ---- plants + upstream metrics for every hosted leaf. Host mode
    // streams no checkpoints: deep plans have no re-homing consumer.
    Seconds advanced = simNow_;
    for (LeafRole &leaf : leaves_) {
        Seconds now = simNow_;
        advancePlants(leaf.plants, scenario_.service.controlPeriod,
                      now);
        advanced = now;
        net::CheckpointMsg unused;
        closePlantPeriods(leaf.plants, *scenario_.system, *leaf.rack,
                          unused);
        for (const auto &[tree, node] : leaf.edges) {
            net::MetricsMsg msg;
            msg.tree = static_cast<std::uint16_t>(tree);
            msg.edgeNode = static_cast<std::uint32_t>(node);
            msg.metrics = leaf.rack->computeMetrics(tree, node);
            tp.send(leaf.ep, leaf.parent,
                    net::encodeMetrics(
                        stampMeta(static_cast<std::uint16_t>(leaf.ep),
                                  epoch, 0),
                        msg));
        }
    }
    simNow_ = advanced;

    // ---- replay frames held back for this epoch.
    std::vector<HeldFrame> keep;
    for (HeldFrame &held : holdback_) {
        if (held.frame.epoch == epoch)
            dispatch(held.to, held.frame, epoch);
        else if (held.frame.epoch > epoch)
            keep.push_back(std::move(held));
        else
            ++stats_.orphanFrames;
    }
    holdback_ = std::move(keep);

    // ---- the event loop: one drain pass services every hosted role;
    // each role advances on completeness, with the tier-staggered §4.5
    // deadline cascade as the degraded-mode timeout.
    for (;;) {
        for (const auto &delivery : tp.drain(locals_)) {
            const auto frame = net::decodeFrame(delivery.frame);
            if (!frame) {
                ++stats_.corruptFrames;
                continue;
            }
            dispatch(delivery.to, *frame, epoch);
        }
        const double now = tp.nowMs();
        // Lagging detection: lossless pipelining runs at most one
        // epoch ahead, so any frame from epoch+2 proves the fleet
        // already degraded past this whole host — close the period
        // immediately with the usual fallbacks and burn forward
        // instead of riding deadlines ever further behind. A parent
        // beacon at or past the current epoch does the same for the
        // one role it targets: the beacon and the budget are mutually
        // exclusive per epoch (the parent sends one or the other at
        // gather close), so this role's phases are already closed
        // upstream and waiting longer buys nothing — closing now puts
        // its next-epoch frames ahead of the parent, where holdback
        // replays them fresh and the chase converges.
        const bool lagging = maxSeenEpoch_ > epoch + 1;
        bool all_done = true;
        for (AggRole &role : aggs_) {
            const bool expired = lagging || role.beaconEpoch >= epoch;
            if (!role.upDone
                && (role.agg->upComplete() || expired
                    || now >= gather_close(role.tier)))
                aggSendUp(role, epoch);
            if (role.upDone && !role.downDone
                && (role.agg->downComplete() || expired
                    || now >= down_close(role.tier)))
                aggSendDown(role, epoch);
            all_done = all_done && role.upDone && role.downDone;
        }
        bool leaves_done = true;
        for (LeafRole &leaf : leaves_) {
            if (!leaf.done
                && (leaf.applied.size() == leaf.edges.size() || lagging
                    || leaf.beaconEpoch >= epoch || now >= leaf_close))
                closeLeaf(leaf, epoch);
            all_done = all_done && leaf.done;
            leaves_done = leaves_done && leaf.done;
        }
        if (leaves_done
            && leafSpan_ != telemetry::PeriodTracer::kNoSpan) {
            tracer_->end(leafSpan_);
            leafSpan_ = telemetry::PeriodTracer::kNoSpan;
        }
        if (http_.listening())
            http_.poll();
        if (all_done) {
            if (lagging) {
                ++stats_.catchUpPeriods;
                catchUpCounter_.inc();
                if (tracer_)
                    tracer_->periodNum("catchUp", 1.0);
            }
            break;
        }
        const double remaining = leaf_close - tp.nowMs();
        tp.advanceBy(remaining > 0.0
                         ? std::min(remaining, kPollSliceMs)
                         : kPollSliceMs);
    }

    lastEpoch_ = epoch;
    ++stats_.periodsRun;
    periodsCounter_.inc();
    publishStats();
    if (tracer_)
        tracer_->endPeriod();
    if (http_.listening())
        http_.poll();
}

std::size_t
WorkerHost::runPeriods(std::size_t max_periods)
{
    std::size_t done = 0;
    while (done < max_periods
           && !stop_.load(std::memory_order_relaxed)) {
        runPeriod(lastEpoch_ + 1);
        ++done;
    }
    return done;
}

} // namespace capmaestro::rt
