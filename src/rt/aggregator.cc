#include "rt/aggregator.hh"

#include <algorithm>
#include <string>

#include "util/logging.hh"

namespace capmaestro::rt {

AggregatorRole::AggregatorRole(
    const topo::PowerSystem &system, const core::TreePlan &plan,
    std::uint32_t endpoint, ctrl::TreePolicy policy,
    const std::map<std::pair<std::size_t, topo::NodeId>, Watts>
        &nominal_floor,
    const net::ProtocolConfig &protocol,
    std::vector<Watts> root_budgets)
    : system_(system), endpoint_(endpoint),
      rootBudgets_(std::move(root_budgets)),
      staleAgeCapPeriods_(protocol.staleAgeCapPeriods)
{
    const core::TreePlan::Worker &me = plan.workers.at(endpoint);
    if (me.isLeaf())
        util::fatal("rt: endpoint %u is a leaf worker, not an "
                    "aggregator",
                    endpoint);
    root_ = me.isRoot();
    stations_ = me.stations;
    for (const std::uint32_t c : me.children) {
        children_.insert(c);
        if (c < plan.leafWorkers)
            leafChildren_.insert(c);
        for (const auto &[tree, node] : plan.workers[c].stations)
            childOfStation_[{tree, node}] = c;
    }

    // Per child station: the summed nominal floor of the edges beneath
    // it — what the subtree unilaterally enforces when budgets stop
    // flowing to it, and therefore what must be reserved out of this
    // fragment's grant while the station is excluded.
    for (const auto &[key, floor] : nominal_floor) {
        const auto [tree, edge] = key;
        topo::NodeId node = edge;
        while (node != topo::kNoNode) {
            const auto owner = childOfStation_.find({tree, node});
            if (owner != childOfStation_.end()) {
                stationFloor_[{tree, node}] += floor;
                break;
            }
            node = system_.tree(tree).node(node).parent;
        }
    }

    if (root_) {
        std::vector<std::set<topo::NodeId>> boundaries =
            plan.boundariesOf(endpoint);
        frag_ = std::make_unique<core::RoomWorker>(
            system_, std::move(boundaries), policy);
        if (rootBudgets_.size() != system_.trees().size()) {
            util::fatal("rt: root worker needs %zu root budgets, got "
                        "%zu",
                        system_.trees().size(), rootBudgets_.size());
        }
    } else {
        frag_ = std::make_unique<core::RoomWorker>(
            system_, plan.topsOf(endpoint), plan.boundariesOf(endpoint),
            policy);
    }
}

std::string
AggregatorRole::stationSubject(std::size_t tree, topo::NodeId node) const
{
    return system_.tree(tree).name() + "."
           + system_.tree(tree).node(node).name;
}

void
AggregatorRole::beginEpoch(std::uint32_t epoch)
{
    epoch_ = epoch;
    fresh_.clear();
    received_.clear();
    stationHealth_.clear();
    boundary_.assign(system_.trees().size(), {});
    reserved_.assign(system_.trees().size(), 0.0);
}

bool
AggregatorRole::noteUpFrame(const net::Frame &frame,
                            RuntimeStats &stats)
{
    if (frame.epoch != epoch_ || !children_.count(frame.sender)) {
        ++stats.orphanFrames;
        return false;
    }
    switch (frame.type) {
    case net::MsgType::Heartbeat:
        return true;
    case net::MsgType::Checkpoint:
        // Leaf children stream plant checkpoints regardless of who
        // their parent is; aggregators are stateless and drop them
        // (re-homing is the 2-level room's machinery).
        return true;
    case net::MsgType::Metrics:
    case net::MsgType::Summary: {
        const bool from_leaf = leafChildren_.count(frame.sender) != 0;
        if (from_leaf != (frame.type == net::MsgType::Metrics)) {
            ++stats.orphanFrames;
            return false;
        }
        const std::pair<std::size_t, topo::NodeId> key{
            frame.metrics.tree,
            static_cast<topo::NodeId>(frame.metrics.edgeNode)};
        const auto owner = childOfStation_.find(key);
        if (owner == childOfStation_.end()
            || owner->second != frame.sender) {
            ++stats.orphanFrames;
            return false;
        }
        fresh_[key] = frame.metrics.metrics;
        return true;
    }
    default:
        ++stats.orphanFrames;
        return false;
    }
}

bool
AggregatorRole::upComplete() const
{
    return fresh_.size() >= childOfStation_.size();
}

std::vector<std::uint32_t>
AggregatorRole::silentChildren() const
{
    std::set<std::uint32_t> heard;
    for (const auto &[key, metrics] : fresh_) {
        (void)metrics;
        const auto owner = childOfStation_.find(key);
        if (owner != childOfStation_.end())
            heard.insert(owner->second);
    }
    std::vector<std::uint32_t> silent;
    for (const std::uint32_t child : children_) {
        if (!heard.count(child))
            silent.push_back(child);
    }
    return silent;
}

std::vector<net::MetricsMsg>
AggregatorRole::closeGather(RuntimeStats &stats, core::EventLog &events)
{
    for (const auto &[key, child] : childOfStation_) {
        (void)child;
        const auto [tree, node] = key;
        const auto got = fresh_.find(key);
        if (got != fresh_.end()) {
            boundary_[tree][node] = got->second;
            cache_[key] = {got->second, epoch_, true};
            stationHealth_[key] = StationHealth::Fresh;
            continue;
        }
        const auto cached = cache_.find(key);
        const std::uint32_t age =
            cached != cache_.end() && cached->second.valid
                ? epoch_ - cached->second.epoch
                : 0;
        const bool stale_ok =
            cached != cache_.end() && cached->second.valid
            && age <= static_cast<std::uint32_t>(staleAgeCapPeriods_);
        if (stale_ok) {
            stationHealth_[key] = StationHealth::Stale;
            boundary_[tree][node] = cached->second.metrics;
            ++stats.staleReuses;
            events.record(static_cast<Seconds>(epoch_),
                          core::EventKind::StaleMetricsReused,
                          stationSubject(tree, node),
                          static_cast<double>(age));
        } else {
            // The station's subtree is on its own this period: exclude
            // it from the boundary and reserve its floor out of the
            // budget before the split (see the class comment).
            stationHealth_[key] = StationHealth::Lost;
            ++stats.metricsLost;
            events.record(static_cast<Seconds>(epoch_),
                          core::EventKind::MetricsLost,
                          stationSubject(tree, node),
                          static_cast<double>(age));
            const auto floor = stationFloor_.find(key);
            if (floor != stationFloor_.end())
                reserved_[tree] += floor->second;
        }
    }

    std::vector<net::MetricsMsg> out;
    if (root_)
        return out; // the root consumes the boundary in computeDown()
    for (const auto &[tree, top] : stations_) {
        net::MetricsMsg msg;
        msg.tree = static_cast<std::uint16_t>(tree);
        msg.edgeNode = static_cast<std::uint32_t>(top);
        msg.metrics = frag_->gatherTop(tree, boundary_[tree]);
        out.push_back(std::move(msg));
    }
    return out;
}

bool
AggregatorRole::noteDownFrame(const net::Frame &frame,
                              std::uint16_t parent_sender,
                              RuntimeStats &stats)
{
    if (root_ || frame.epoch != epoch_
        || frame.type != net::MsgType::SubBudget
        || frame.sender != parent_sender) {
        ++stats.orphanFrames;
        return false;
    }
    const std::size_t tree = frame.budget.tree;
    const auto node = static_cast<topo::NodeId>(frame.budget.edgeNode);
    const auto mine = stations_.find(tree);
    if (mine == stations_.end() || mine->second != node) {
        ++stats.orphanFrames;
        return false;
    }
    if (received_.emplace(tree, frame.budget.budget).second)
        ++stats.subBudgetsApplied;
    return true;
}

bool
AggregatorRole::downComplete() const
{
    return root_ || received_.size() >= stations_.size();
}

std::vector<AggregatorRole::DownMsg>
AggregatorRole::computeDown(RuntimeStats &stats)
{
    std::vector<DownMsg> out;
    for (const auto &[tree, top] : stations_) {
        (void)top;
        std::map<topo::NodeId, Watts> splits;
        if (root_) {
            const Watts usable = std::max(
                0.0, rootBudgets_[tree] - reserved_[tree]);
            splits = frag_->iterate(tree, boundary_[tree], usable);
        } else {
            const auto sub = received_.find(tree);
            if (sub == received_.end()) {
                // Silence flows down: every station beneath rides its
                // Pcap_min default, which is exactly what the parent
                // reserves for this fragment next period if the stall
                // persists.
                ++stats.subBudgetsMissed;
                continue;
            }
            const Watts usable =
                std::max(0.0, sub->second - reserved_[tree]);
            splits = frag_->budgetDown(tree, usable);
        }
        for (const auto &[node, watts] : splits) {
            // Excluded stations get no grant — their floor was
            // reserved, and sending a budget computed from empty
            // metrics would undercut the subtree's own fallback.
            if (!boundary_[tree].count(node))
                continue;
            const auto owner = childOfStation_.find({tree, node});
            if (owner == childOfStation_.end())
                continue;
            DownMsg down;
            down.child = owner->second;
            down.leafChild = leafChildren_.count(owner->second) != 0;
            down.msg.tree = static_cast<std::uint16_t>(tree);
            down.msg.edgeNode = static_cast<std::uint32_t>(node);
            down.msg.budget = watts;
            out.push_back(down);
        }
    }
    return out;
}

} // namespace capmaestro::rt
