/**
 * @file
 * Deterministic chaos harness for the multi-process worker runtime.
 *
 * A LockstepDeployment hosts a full worker deployment — every rack
 * runtime plus the room — inside one process, all speaking through a
 * single shared Transport wrapped in a ChaosTransport. The runtimes
 * run in Lockstep pacing, so the harness owns the epoch schedule and
 * can interleave scripted faults at exact period boundaries:
 *
 *   Kill      — destroy a rack runtime (the process dies mid-flight;
 *               whatever frames it queued stay in the network)
 *   Restart   — construct a fresh runtime for the role on the same
 *               endpoint (sequence numbers restart at zero, plant
 *               state is lost — exactly what the checkpoint/Rehome
 *               machinery must repair)
 *   Partition — block one endpoint pair symmetrically
 *   Heal      — clear every partition
 *
 * The script comes from a ChaosScheduler: either explicit at() calls
 * or a seeded random kill/restart schedule. Nothing in the harness
 * draws randomness outside the scheduler's Rng, so a given
 * (scenario, backend, faults, seed, script) tuple replays the same
 * epoch-by-epoch trace — on the Sim backend, bit-for-bit (the run log
 * records every applied edge budget as its raw IEEE-754 pattern).
 *
 * Both Transport backends are supported: SimTransport (virtual clock,
 * seeded loss/reorder/duplication — fully deterministic) and a single
 * shared UdpTransport in loopback mode (real sockets and the real
 * kernel; deterministic in behavior-level properties, not bits).
 *
 * After every epoch the harness audits the §4.5 safety claim: no
 * applied edge budget may exceed its node's device limit, and no
 * tree's total applied budget may exceed the tree's root budget —
 * even while racks are dead, re-homing, or partitioned. It also
 * tracks recovery time (Restart to the room's Live promotion) so
 * tests can bound re-homing latency in periods.
 */

#ifndef CAPMAESTRO_RT_CHAOS_HH
#define CAPMAESTRO_RT_CHAOS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/chaos_transport.hh"
#include "net/transport.hh"
#include "net/udp_transport.hh"
#include "rt/worker_runtime.hh"
#include "telemetry/registry.hh"
#include "util/random.hh"

namespace capmaestro::rt {

/**
 * One scripted fault or elasticity action, applied at the start of its
 * epoch. Beyond the fault kinds, the scheduler scripts the membership
 * plane:
 *
 *   Join      — start the rack runtime for a slot scripted absent via
 *               scriptJoiner() and announce it Joining at the root;
 *               the two-phase adopt (shadow periods, ack, commit) then
 *               runs inside the protocol itself
 *   Drain     — announce a Live rack Draining at the root; once the
 *               rack acks its committed Left state the harness reaps
 *               the runtime (the process exits)
 *   Upgrade   — flip the worker's stamped wire version to the current
 *               one (a rolling upgrade step at a period boundary; the
 *               restart-with-new-binary path is Kill + Restart, which
 *               preserves the slot's scripted version)
 */
struct ChaosEvent
{
    enum class Kind { Kill, Restart, Partition, Heal, Join, Drain,
                      Upgrade };

    std::uint32_t epoch = 0;
    Kind kind = Kind::Kill;
    /** Rack role (Kill/Restart/Join/Drain), worker endpoint (Upgrade),
     *  or first endpoint (Partition). */
    std::uint32_t a = 0;
    /** Second endpoint (Partition only). */
    std::uint32_t b = 0;
};

/** Name of a ChaosEvent kind (log rendering). */
const char *chaosKindName(ChaosEvent::Kind kind);

/**
 * Builds a fault script. All randomness in a seeded schedule comes
 * from the scheduler's own Rng, drawn in a fixed order, so equal
 * seeds give equal scripts.
 */
class ChaosScheduler
{
  public:
    explicit ChaosScheduler(std::uint64_t seed) : rng_(seed) {}

    /** Schedule one explicit event. */
    void at(std::uint32_t epoch, ChaosEvent::Kind kind,
            std::uint32_t a = 0, std::uint32_t b = 0);

    /**
     * Append @p kills seeded kill/restart pairs over racks
     * [0, rack_count): each kill lands at a random epoch in
     * [first_epoch, last_epoch], its restart @p down_periods later.
     * Kills of the same rack are spaced far enough apart that the
     * previous re-homing handshake can finish first (so recovery-time
     * accounting stays well-defined).
     */
    void randomKillRestarts(std::size_t rack_count,
                            std::uint32_t first_epoch,
                            std::uint32_t last_epoch,
                            std::size_t kills,
                            std::uint32_t down_periods);

    /** Events scheduled for @p epoch, in scheduling order. */
    std::vector<ChaosEvent> eventsAt(std::uint32_t epoch) const;

    /** Every scheduled event. */
    const std::vector<ChaosEvent> &events() const { return events_; }

  private:
    util::Rng rng_;
    std::vector<ChaosEvent> events_;
};

/** Which Transport backend carries the deployment's frames. */
enum class ChaosBackend { Sim, Udp };

/** What one run() observed. */
struct ChaosRunReport
{
    std::size_t epochsRun = 0;
    /** Per-epoch safety-audit failures (0 on a correct protocol). */
    std::size_t violations = 0;
    /** Human-readable description of the first violation, if any. */
    std::string firstViolation;
    /** Completed Restart -> Live promotions observed. */
    std::size_t recoveries = 0;
    /** Worst observed recovery latency, in control periods. */
    std::uint32_t maxRecoveryPeriods = 0;
    /** Restarts whose promotion had not completed by the end. */
    std::size_t unrecovered = 0;
    /** Drained racks reaped after acking their committed Left state. */
    std::size_t drained = 0;
    /**
     * One deterministic line per epoch: states, applied edge budgets
     * as raw IEEE-754 bit patterns, cumulative failover counters.
     * Bit-identical across same-seed runs on the Sim backend.
     */
    std::vector<std::string> log;
};

/** A whole worker deployment in one process, driven in lockstep. */
class LockstepDeployment
{
  public:
    /**
     * @param scenario_json  scenario document (parsed once per runtime
     *                       construction, so restarts get fresh plants)
     * @param backend        Sim (deterministic faults) or Udp (real
     *                       loopback sockets)
     * @param sim_faults     fault model for the Sim backend (ignored
     *                       for Udp); keep the seed fixed for
     *                       reproducible runs
     * @param seed           sensor-noise seed shared by every worker
     * @param agg_levels     aggregation levels of the worker plan
     *                       (empty = the classic 2-level deployment);
     *                       deep plans add interior aggregator
     *                       runtimes, driven tier by tier, and Kill/
     *                       Restart events may target their endpoints
     */
    LockstepDeployment(std::string scenario_json, ChaosBackend backend,
                       net::TransportConfig sim_faults,
                       std::uint64_t seed,
                       std::vector<std::uint32_t> agg_levels = {});

    ~LockstepDeployment();

    /** The fault script (seeded from the deployment seed). */
    ChaosScheduler &chaos() { return chaos_; }

    /**
     * Script rack @p rack as a late joiner: its runtime is not
     * constructed and the root marks the slot absent (no floor
     * reservation, no broadcast). A Join event later brings it in
     * through the two-phase adopt. Pre-run configuration only.
     */
    void scriptJoiner(std::uint32_t rack);

    /**
     * Stamp worker @p role's frames with wire version @p version
     * (kWireVersion or kWireCompatVersion) — the not-yet-upgraded
     * worker of a rolling upgrade. Applies to the live runtime and
     * sticks across Kill/Restart; an Upgrade event flips the slot
     * back to the current version.
     */
    void setWorkerWireVersion(std::uint32_t role, std::uint8_t version);

    /**
     * Run @p epochs control periods from where the previous run()
     * stopped, applying scheduled faults at their epoch boundaries and
     * auditing safety after every period.
     */
    ChaosRunReport run(std::uint32_t epochs);

    /** Rack runtimes in the deployment. */
    std::size_t rackCount() const { return rackCount_; }

    /** The room runtime. */
    WorkerRuntime &room() { return *room_; }

    /** Rack runtime @p r, or nullptr while killed. */
    WorkerRuntime *rack(std::size_t r) { return racks_[r].get(); }

    /** Interior aggregator runtime at @p endpoint (deep plans only),
     *  or nullptr while killed. */
    WorkerRuntime *aggregator(std::uint32_t endpoint)
    {
        return aggs_.at(endpoint - rackCount_).get();
    }

    /** The worker layout the deployment runs. */
    const core::TreePlan &plan() const { return plan_; }

    /** The partition-capable wrapper every frame passes through. */
    net::ChaosTransport &net() { return *chaosNet_; }

    /** Shared metrics registry all runtimes report into. */
    telemetry::Registry &registry() { return registry_; }

  private:
    config::LoadedScenario makeScenario() const;
    std::unique_ptr<WorkerRuntime> makeRuntime(std::uint32_t role);
    void apply(const ChaosEvent &event, std::uint32_t epoch);
    /** Audit this epoch's applied budgets; "" when safe. */
    std::string auditSafety() const;
    std::string logLine(std::uint32_t epoch) const;

    std::string scenarioJson_;
    ChaosBackend backend_;
    std::uint64_t seed_;
    /** Harness's own copy of the topology (limits, root budgets). */
    config::LoadedScenario scenario_;
    std::vector<std::uint32_t> aggLevels_;
    core::TreePlan plan_;
    std::size_t rackCount_ = 0;
    config::WorkerPeers peers_;

    std::unique_ptr<net::Transport> inner_;
    std::unique_ptr<net::ChaosTransport> chaosNet_;
    telemetry::Registry registry_;

    std::vector<std::unique_ptr<WorkerRuntime>> racks_;
    /** Interior aggregators, indexed by endpoint - rackCount_. */
    std::vector<std::unique_ptr<WorkerRuntime>> aggs_;
    std::unique_ptr<WorkerRuntime> room_;

    ChaosScheduler chaos_;
    std::uint32_t nextEpoch_ = 1;
    /** Rack -> epoch of its pending Restart (recovery tracking). */
    std::map<std::size_t, std::uint32_t> pendingRecovery_;
    /** Role -> stamped wire version (absent = current). */
    std::map<std::uint32_t, std::uint8_t> wireVersionOf_;
};

} // namespace capmaestro::rt

#endif // CAPMAESTRO_RT_CHAOS_HH
