/**
 * @file
 * Multi-role worker host: one process serving many subtrees of a deep
 * control tree (core::TreePlan) off a single poll-drain event loop.
 *
 * Where WorkerRuntime is "one process == one worker", a WorkerHost
 * owns every endpoint the peer table assigns to its process index —
 * any mix of leaf workers (core::RackWorker + local plants),
 * aggregators, and the root (both AggregatorRole) — and services them
 * all with one Transport::drain() pass per poll slice: on UDP that is
 * a single epoll sweep, so the receive cost per period scales with
 * ready sockets, not hosted endpoints. This is what makes a
 * 100k-leaf deployment runnable on a handful of processes.
 *
 * Pacing is completeness-driven rather than wall-anchored: each period
 * every hosted role advances as soon as its inputs are complete (all
 * child stations fresh; the SubBudget received; all budgets applied),
 * with the §4.5 deadline cascade — tier-k gather closes
 * k x gatherDeadlineMs after the period began, SubBudget collection
 * and the leaf budget deadline a symmetric budget cascade later — as
 * the degraded-mode timeout. On a lossless transport the whole tree
 * therefore free-runs flow-controlled by its own frames (the property
 * the scalability bench measures as periods/sec); under loss each hop
 * degrades exactly like the wall-paced runtime (stale reuse, floor
 * reservation, Pcap_min defaults). Because a finished process can run
 * at most one epoch ahead of a neighbor still collecting, frames from
 * epoch e+1 are held back and replayed when the host enters e+1
 * instead of being dropped as orphans.
 *
 * Free-running epochs need a resync story: a process that starts late
 * or stalls past a deadline window would otherwise stay behind the
 * fleet forever, each side orphaning the other's frames. Two
 * mechanisms close the gap. Aggregators ping every child that stayed
 * silent through a gather deadline with a header-only heartbeat (the
 * epoch beacon — zero frames on a lossless run), and a host that sees
 * any frame from two or more epochs ahead, or a parent beacon past
 * its current epoch, closes the period immediately with the usual
 * degraded fallbacks (counted as catchUpPeriods) and burns forward
 * until it rejoins — at which point held-back frames replay and real
 * budgets flow again.
 *
 * Host mode deliberately runs none of the 2-level failover machinery:
 * leaves do not stream checkpoints (nothing in a deep tree consumes
 * them) and no Rehome frames exist — a restarted process rejoins with
 * a fresh plant while its parents ride stale -> reserve, as documented
 * in rt/aggregator.hh.
 */

#ifndef CAPMAESTRO_RT_HOST_HH
#define CAPMAESTRO_RT_HOST_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "config/loader.hh"
#include "core/distributed.hh"
#include "core/events.hh"
#include "core/tree_plan.hh"
#include "membership/table.hh"
#include "net/http_endpoint.hh"
#include "net/udp_transport.hh"
#include "net/wire.hh"
#include "rt/aggregator.hh"
#include "rt/plant.hh"
#include "rt/stats.hh"
#include "telemetry/health.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"

namespace capmaestro::rt {

/** One process hosting every worker the peer table maps to it. */
class WorkerHost
{
  public:
    /**
     * Host over an internally owned UdpTransport bound to every local
     * endpoint (the multi-process daemon/bench shape).
     *
     * @param scenario loaded scenario (ownership taken)
     * @param peers    shared peer table; its processOf map (absent
     *                 entries = process 0) decides what this host runs
     * @param process  this host's process index
     * @param seed     sensor-noise master seed (shared by every host)
     */
    WorkerHost(config::LoadedScenario scenario,
               config::WorkerPeers peers, std::uint32_t process,
               std::uint64_t seed = 1);

    /** Host over an injected transport (not owned; tests). */
    WorkerHost(config::LoadedScenario scenario,
               config::WorkerPeers peers, std::uint32_t process,
               std::uint64_t seed, net::Transport &transport);

    ~WorkerHost();

    WorkerHost(const WorkerHost &) = delete;
    WorkerHost &operator=(const WorkerHost &) = delete;

    /** Run up to @p max_periods periods; returns periods completed. */
    std::size_t runPeriods(std::size_t max_periods);

    /** Ask the period loop to exit at the next check. */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    /** Endpoints hosted by this process, ascending. */
    const std::vector<net::Transport::Endpoint> &endpoints() const
    {
        return locals_;
    }

    /** The worker layout this deployment runs. */
    const core::TreePlan &plan() const { return plan_; }

    /** Aggregate protocol accounting across every hosted role. */
    const RuntimeStats &stats() const { return stats_; }

    /** Degraded-mode decisions (timestamps are epochs). */
    const core::EventLog &eventLog() const { return events_; }

    /** The transport this host speaks over. */
    net::Transport &transport() { return *transport_; }

    /** The owned UDP transport, or nullptr when injected. */
    net::UdpTransport *udp() { return ownedTransport_.get(); }

    /** Epoch of the most recently completed period (0 before any). */
    std::uint32_t lastEpoch() const { return lastEpoch_; }

    /** Hosted leaves, merged: (tree, edge) -> budget applied last
     *  period. */
    const std::map<std::pair<std::size_t, topo::NodeId>, Watts> &
    lastEdgeBudgets() const
    {
        return lastEdgeBudgets_;
    }

    /**
     * Attach telemetry sinks (either may be null). Registers host
     * counters labeled {process}, per-hop latency histograms labeled
     * {kind, from_tier, to_tier}, fleet health gauges, and the safety
     * auditor's counters on @p registry, and records one span trace
     * per period on @p tracer. Attaching telemetry also turns on wire
     * trace-context stamping (wire v5) for every frame this host
     * sends — purely observational: payloads, send counts, and every
     * allocation decision are bit-identical with tracing off.
     */
    void setTelemetry(telemetry::Registry *registry,
                      telemetry::PeriodTracer *tracer);

    /**
     * Serve the observability endpoints (/metrics, /healthz, /tracez)
     * on 127.0.0.1:@p port (0 = ephemeral), polled from the period
     * loop — no extra thread. Returns the bound port, or 0 when the
     * bind failed.
     */
    std::uint16_t serveHttp(std::uint16_t port);

    /** Bound HTTP port (0 when not serving). */
    std::uint16_t httpPort() const { return http_.port(); }

    /** /healthz document (process, epoch, stats, fleet, safety). */
    util::Json healthJson() const;

    /** Health rollup over the child workers this host observes. */
    const telemetry::FleetHealthRegistry &fleetHealth() const
    {
        return fleetHealth_;
    }

    /** Online budget-conservation auditor over the hosted fragments. */
    const telemetry::SafetyAuditor &safetyAuditor() const
    {
        return auditor_;
    }

    /**
     * The host's shared membership replica. Host mode is replica-only:
     * it adopts MembershipDelta broadcasts (acking from each addressed
     * hosted endpoint) and honors them — a Joining or Draining hosted
     * leaf clamps to its nominal floor, a Left one applies zero — but
     * never originates transitions. Elasticity in a deep deployment is
     * driven by the root, which runs as a WorkerRuntime deep-root role
     * (see worker_runtime.hh, "Membership / elasticity plane").
     */
    const membership::MembershipTable &membership() const
    {
        return membership_;
    }

    /** The replica's membership generation (1 = static deployment). */
    std::uint32_t membershipGeneration() const
    {
        return membership_.generation();
    }

    /**
     * Stamp every outgoing frame with wire version @p v (kWireVersion
     * or kWireCompatVersion) — the not-yet-upgraded half of a rolling
     * upgrade. A compat-stamped host cannot send MembershipAck, so the
     * root keeps re-broadcasting to it until the upgrade lands;
     * upgrade-then-join is the supported order.
     */
    void setWireVersion(std::uint8_t v);

    /** Wire version this host stamps on sends. */
    std::uint8_t wireVersion() const { return wireVersion_; }

  private:
    /** One hosted leaf worker and its per-epoch progress. */
    struct LeafRole
    {
        net::Transport::Endpoint ep = 0;
        net::Transport::Endpoint parent = 0;
        std::unique_ptr<core::RackWorker> rack;
        std::map<std::size_t, topo::NodeId> edges;
        std::vector<Plant> plants;
        std::set<std::pair<std::size_t, topo::NodeId>> applied;
        bool done = false;
        /** Highest epoch a parent beacon reported (see dispatch()):
         *  a beacon at or past the current epoch means the parent
         *  closed this worker's phases without it — close early and
         *  resend fresh next epoch rather than ride the deadlines. */
        std::uint32_t beaconEpoch = 0;
    };

    /** One hosted aggregator (or root) and its per-epoch progress. */
    struct AggRole
    {
        net::Transport::Endpoint ep = 0;
        net::Transport::Endpoint parent = 0;
        std::uint32_t tier = 0;
        std::unique_ptr<AggregatorRole> agg;
        bool upDone = false;
        bool downDone = false;
        /** Highest epoch a parent beacon reported (see LeafRole). */
        std::uint32_t beaconEpoch = 0;
        /** Open trace spans for this epoch's two phases. */
        telemetry::PeriodTracer::SpanId gatherSpan =
            telemetry::PeriodTracer::kNoSpan;
        telemetry::PeriodTracer::SpanId downSpan =
            telemetry::PeriodTracer::kNoSpan;
    };

    void init(std::uint64_t seed);
    void runPeriod(std::uint32_t epoch);
    /** Sender-side clock for trace contexts: unix realtime ms on UDP
     *  (cross-process comparable on one box), the shared virtual
     *  transport clock otherwise. */
    double hopClockMs() const;
    /** Frame meta for a send, trace-stamped when telemetry is on. */
    net::FrameMeta stampMeta(std::uint16_t sender, std::uint32_t epoch,
                             std::uint32_t tier);
    /** Record the receive side of a traced hop (histogram + span). */
    void recordHop(const net::Frame &frame, std::uint32_t to_tier);
    /** Audit one fragment's committed budgets against its grant. */
    void auditDown(AggRole &role, std::uint32_t epoch,
                   const std::vector<AggregatorRole::DownMsg> &downs);
    /** Fold this epoch's gather outcomes into the health rollup. */
    void reportChildHealth(AggRole &role, std::uint32_t epoch);
    /** Refresh the stats gauge family from stats_. */
    void publishStats();
    /** Route one delivered frame to its hosted role (or hold it back
     *  for the next epoch). */
    void dispatch(net::Transport::Endpoint to, const net::Frame &frame,
                  std::uint32_t epoch);
    /** Adopt a membership broadcast into the shared replica and ack it
     *  from the addressed hosted endpoint (epoch-free plane). */
    void adoptMembership(net::Transport::Endpoint to,
                         const net::Frame &frame, std::uint32_t epoch);
    /** Clamp @p watts per @p ep's membership state: untouched when
     *  Live, floored to Pcap_min while Joining/Draining (shadow), zero
     *  once Left. */
    Watts membershipClamp(net::Transport::Endpoint ep, std::size_t tree,
                          topo::NodeId node, Watts watts) const;
    void leafApplyBudget(LeafRole &leaf, const net::Frame &frame);
    void closeLeaf(LeafRole &leaf, std::uint32_t epoch);
    void aggSendUp(AggRole &role, std::uint32_t epoch);
    void aggSendDown(AggRole &role, std::uint32_t epoch);

    config::LoadedScenario scenario_;
    config::WorkerPeers peers_;
    core::TreePlan plan_;
    std::uint32_t process_ = 0;
    std::map<std::pair<std::size_t, topo::NodeId>, Watts>
        nominalFloor_;
    std::unique_ptr<net::UdpTransport> ownedTransport_;
    net::Transport *transport_ = nullptr;
    std::atomic<bool> stop_{false};
    RuntimeStats stats_;
    core::EventLog events_;
    std::uint32_t lastEpoch_ = 0;
    /** Highest epoch carried by any received frame. */
    std::uint32_t maxSeenEpoch_ = 0;
    std::uint32_t seq_ = 0;
    Seconds simNow_ = 0;
    /** Version byte stamped on every send (rolling-upgrade knob). */
    std::uint8_t wireVersion_ = net::kWireVersion;
    /** Shared membership replica over every hosted endpoint. */
    membership::MembershipTable membership_;

    std::vector<net::Transport::Endpoint> locals_;
    std::vector<LeafRole> leaves_;
    /** Hosted aggregators in ascending tier order (root last). */
    std::vector<AggRole> aggs_;
    /** Endpoint -> index into leaves_ / aggs_ (one map each). */
    std::map<net::Transport::Endpoint, std::size_t> leafIndex_;
    std::map<net::Transport::Endpoint, std::size_t> aggIndex_;
    std::map<std::pair<std::size_t, topo::NodeId>, Watts>
        lastEdgeBudgets_;

    /** Frames from the next epoch, replayed when the host enters it. */
    struct HeldFrame
    {
        net::Transport::Endpoint to = 0;
        net::Frame frame;
    };
    std::vector<HeldFrame> holdback_;

    // -------- observability plane (all inert until configured)
    telemetry::Registry *registry_ = nullptr;
    telemetry::PeriodTracer *tracer_ = nullptr;
    /** Stamp wire trace contexts on every send. */
    bool obs_ = false;
    telemetry::FleetHealthRegistry fleetHealth_;
    telemetry::SafetyAuditor auditor_;
    net::HttpEndpoint http_;
    telemetry::Counter periodsCounter_;
    telemetry::Counter catchUpCounter_;
    /** stat name -> gauge mirroring RuntimeStats, labeled {process}. */
    std::map<std::string, telemetry::Gauge> statGauges_;
    /** (kind, from tier, to tier) -> hop latency histogram. */
    std::map<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>,
             telemetry::HistogramMetric>
        hopHist_;
    /** Hop spans recorded this period (bounded per period). */
    std::size_t hopSpans_ = 0;
    /** Host-level span over the leaves' budget-wait phase. */
    telemetry::PeriodTracer::SpanId leafSpan_ =
        telemetry::PeriodTracer::kNoSpan;
};

} // namespace capmaestro::rt

#endif // CAPMAESTRO_RT_HOST_HH
