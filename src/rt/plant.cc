#include "rt/plant.hh"

#include <algorithm>

#include "util/logging.hh"

namespace capmaestro::rt {

std::map<std::size_t, std::set<std::size_t>>
serverWorkers(const topo::PowerSystem &system,
              const std::vector<std::map<std::size_t, topo::NodeId>>
                  &partition)
{
    std::map<std::size_t, std::set<std::size_t>> out;
    for (std::size_t r = 0; r < partition.size(); ++r) {
        for (const auto &[tree, node] : partition[r]) {
            for (const topo::NodeId c :
                 system.tree(tree).node(node).children) {
                const auto &ref = *system.tree(tree).node(c).supplyRef;
                out[static_cast<std::size_t>(ref.server)].insert(r);
            }
        }
    }
    return out;
}

std::map<std::size_t, std::vector<Plant>>
buildPlants(config::LoadedScenario &scenario,
            const topo::PowerSystem &system,
            const std::map<std::size_t,
                           std::map<std::size_t, topo::NodeId>> &want,
            std::uint64_t seed)
{
    const auto partition =
        core::DistributedControlPlane::partitionEdges(system);
    const auto server_workers = serverWorkers(system, partition);

    std::map<std::size_t, std::vector<Plant>> out;
    for (const auto &[worker, edges] : want) {
        (void)edges;
        out[worker]; // plantless workers still get an (empty) entry
    }

    // Fork the per-server sensor-noise streams in server-id order so a
    // server's stream is the same no matter which process hosts it.
    util::Rng rng(seed);
    for (std::size_t sid = 0; sid < scenario.servers.size(); ++sid) {
        util::Rng server_rng = rng.fork();
        const auto workers = server_workers.find(sid);
        if (workers == server_workers.end())
            continue;
        if (workers->second.size() > 1) {
            util::fatal("rt: server %zu has supplies on %zu rack "
                        "workers; its plant cannot be homed in one "
                        "process",
                        sid, workers->second.size());
        }
        const std::size_t home = *workers->second.begin();
        const auto homed = want.find(home);
        if (homed == want.end())
            continue;

        Plant plant;
        plant.serverId = sid;
        plant.server = std::make_unique<dev::ServerModel>(
            std::move(scenario.servers[sid].spec));
        plant.nm = std::make_unique<dev::NodeManager>(*plant.server);
        plant.sensors = std::make_unique<dev::SensorEmulator>(
            *plant.server, *plant.nm, std::move(server_rng),
            dev::SensorConfig{});
        plant.workload = std::move(scenario.servers[sid].workload);
        if (!plant.workload)
            util::fatal("rt: server %zu has no workload", sid);
        plant.controller = std::make_unique<ctrl::CappingController>(
            *plant.server, *plant.nm, *plant.sensors,
            scenario.service.capping);
        for (const auto &[tree, node] : homed->second) {
            for (const topo::NodeId c :
                 system.tree(tree).node(node).children) {
                const auto &ref = *system.tree(tree).node(c).supplyRef;
                if (static_cast<std::size_t>(ref.server) == sid)
                    plant.leaves.emplace_back(tree, ref);
            }
        }
        plant.server->setUtilization(plant.workload->utilizationAt(0));
        out[home].push_back(std::move(plant));
    }
    return out;
}

void
advancePlants(std::vector<Plant> &plants, Seconds control_period,
              Seconds &sim_now)
{
    // Wall pacing is per period, not per tick: the protocol deadlines
    // are what consume the period's wall budget.
    for (Seconds tick = 0; tick < control_period; ++tick) {
        for (Plant &plant : plants) {
            plant.server->setUtilization(
                plant.workload->utilizationAt(sim_now));
        }
        for (Plant &plant : plants)
            plant.controller->senseTick();
        for (Plant &plant : plants)
            plant.nm->step(1.0);
        ++sim_now;
    }
}

void
closePlantPeriods(std::vector<Plant> &plants,
                  const topo::PowerSystem &system,
                  core::RackWorker &rack,
                  net::CheckpointMsg &checkpoint)
{
    for (Plant &plant : plants) {
        const auto report = plant.controller->closePeriod();
        ctrl::ServerAllocInput in;
        const auto &spec = plant.server->spec();
        in.priority = spec.priority;
        in.capMin = spec.capMin;
        in.capMax = spec.capMax;
        in.demand = report.demandEstimate;
        in.supplies.resize(report.shares.size());
        for (std::size_t i = 0; i < report.shares.size(); ++i) {
            in.supplies[i].share = std::max(report.shares[i], 1e-9);
            in.supplies[i].live = report.shares[i] > 0.0;
        }
        const auto shares = ctrl::effectiveSupplyShares(
            system, in, static_cast<std::int32_t>(plant.serverId));
        for (const auto &[tree, ref] : plant.leaves) {
            const auto sup = static_cast<std::size_t>(ref.supply);
            const Fraction r = sup < shares.size() ? shares[sup] : 0.0;
            auto leaf = ctrl::scaledLeafInput(in, r);
            // Pin the leaf floor to the config-nominal share while the
            // supply is live. Demand and constraint stay measured, but
            // the floor must not wobble with sensor noise: the §4.5
            // fallback and the room's degraded-mode reserve are both
            // defined on the nominal floor, and an allocation granted
            // from a noise-lowered measured floor could otherwise end
            // up a watt below the fallback the rack applies when the
            // budget frame is lost — breaking the supply-budget
            // invariant in a fully contended tree.
            if (leaf.live) {
                const Fraction nominal =
                    sup < spec.supplies.size()
                        ? spec.supplies[sup].loadShare
                        : 0.0;
                leaf.capMin = spec.capMin * nominal;
                leaf.demand = std::max(leaf.demand, leaf.capMin);
                leaf.constraint =
                    std::max(leaf.constraint, leaf.capMin);
            }
            rack.setLeafInput(tree, ref, leaf);
        }

        const auto state = plant.controller->exportState();
        net::CheckpointServer rec;
        rec.serverId = static_cast<std::uint32_t>(plant.serverId);
        rec.integratorPrimed = state.integratorPrimed;
        rec.spoPinned = false; // §4.4 SPO rounds are not run by rt yet
        rec.integratorDc = state.integratorDc;
        rec.demandEstimate = report.demandEstimate;
        rec.avgThrottle = report.avgThrottle;
        const std::size_t supplies = plant.server->supplyCount();
        rec.supplies.resize(supplies);
        for (std::size_t s = 0; s < supplies; ++s) {
            rec.supplies[s].lastBudget =
                s < plant.lastBudgets.size() ? plant.lastBudgets[s]
                                             : 0.0;
            rec.supplies[s].share =
                s < report.shares.size() ? report.shares[s] : 0.0;
            rec.supplies[s].avgAc = s < report.supplyAvgAc.size()
                                        ? report.supplyAvgAc[s]
                                        : 0.0;
        }
        checkpoint.servers.push_back(std::move(rec));
    }
}

void
applyPlantBudgets(std::vector<Plant> &plants, core::RackWorker &rack)
{
    for (Plant &plant : plants) {
        std::vector<Watts> budgets(plant.server->supplyCount(), 0.0);
        for (const auto &[tree, ref] : plant.leaves) {
            const auto sup = static_cast<std::size_t>(ref.supply);
            if (sup < budgets.size())
                budgets[sup] = rack.leafBudget(tree, ref);
        }
        plant.controller->applyBudgets(budgets);
        plant.lastBudgets = std::move(budgets);
    }
}

std::map<std::pair<std::size_t, topo::NodeId>, Watts>
nominalEdgeFloors(const topo::PowerSystem &system,
                  const config::LoadedScenario &scenario)
{
    std::map<std::pair<std::size_t, topo::NodeId>, Watts> out;
    const auto partition =
        core::DistributedControlPlane::partitionEdges(system);
    for (const auto &edges : partition) {
        for (const auto &[tree, node] : edges) {
            Watts floor = 0.0;
            for (const topo::NodeId c :
                 system.tree(tree).node(node).children) {
                const auto &ref = *system.tree(tree).node(c).supplyRef;
                const auto sid = static_cast<std::size_t>(ref.server);
                const auto sup = static_cast<std::size_t>(ref.supply);
                const dev::ServerSpec &spec =
                    scenario.servers[sid].spec;
                const Fraction share =
                    sup < spec.supplies.size()
                        ? spec.supplies[sup].loadShare
                        : 0.0;
                floor += spec.capMin * share;
            }
            out[{tree, node}] = std::min(
                floor, system.tree(tree).node(node).limit());
        }
    }
    return out;
}

} // namespace capmaestro::rt
