/**
 * @file
 * Process-level worker runtime (the deployment shape of paper §5): one
 * rack or room worker's half of the §4.5 control protocol, driven by
 * wall-clock deadlines over a real transport instead of by the
 * in-process DistributedControlPlane loop.
 *
 * A deployment runs rackWorkerCount() rack processes (endpoints
 * 0..N-1) plus one room process (endpoint N), all sharing one peer
 * table (config::WorkerPeers). Control periods are anchored to the
 * table's wall-clock origin: period (epoch) e owns the real-time
 * window [originMs + (e-1)*periodMs, originMs + e*periodMs), so every
 * process independently agrees on the current epoch from its own clock
 * (NTP-grade agreement is enough; the per-phase deadlines and the
 * epoch field on every frame absorb skew).
 *
 * Within its window each period runs the two §4.5 phases:
 *
 *   rack:  advance the local plant (sensing + actuation), close the
 *          capping-controller period, send heartbeat + per-edge
 *          metrics (blind bounded retransmission — a real rack cannot
 *          see the room's receive state, so it re-sends on a timer up
 *          to maxAttempts), then collect budgets until the budget
 *          deadline; edges with no budget fall back to the Pcap_min
 *          default. Budgets feed the per-server PI loops exactly as in
 *          the monolithic service.
 *   room:  collect metrics until the gather deadline (stale-cache
 *          fallback per §4.5), run the upper-tree controllers, then
 *          send per-edge budgets with the same blind bounded
 *          retransmission.
 *
 * Failure handling differs from the in-process plane in one honest
 * way: a dead rack's edge controllers cannot be re-homed, because
 * their plant (servers, sensors) lives in the dead process. The room
 * still detects the silence by heartbeat and logs a WorkerFailover
 * event (adopter -1); the dead rack's edges then ride the
 * stale-metrics -> metrics-lost path and its servers keep their last
 * caps — the conservative §4.5 degradation. The §4.4 SPO round is
 * also skipped here (it needs fleet-wide stranded-power detection,
 * which no single worker can see); the single-process loopback mode
 * of capmaestro_run --transport=udp retains it.
 *
 * Every degraded decision lands in the runtime's EventLog with the
 * epoch as its timestamp, mirroring ClosedLoopSim's audit trail.
 */

#ifndef CAPMAESTRO_RT_WORKER_RUNTIME_HH
#define CAPMAESTRO_RT_WORKER_RUNTIME_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "config/loader.hh"
#include "control/capping_controller.hh"
#include "core/distributed.hh"
#include "core/events.hh"
#include "device/node_manager.hh"
#include "device/sensor.hh"
#include "device/server.hh"
#include "device/workload.hh"
#include "net/udp_transport.hh"

namespace capmaestro::rt {

/** Cumulative protocol accounting for one worker process. */
struct RuntimeStats
{
    std::size_t periodsRun = 0;
    /** Rack: edges budgeted by a received Budget frame. */
    std::size_t budgetsApplied = 0;
    /** Rack: edges that fell back to the Pcap_min default. */
    std::size_t defaultBudgets = 0;
    /** Room: edges served from the stale-metrics cache. */
    std::size_t staleReuses = 0;
    /** Room: edges with no usable metrics at the deadline. */
    std::size_t metricsLost = 0;
    /** Room: workers declared dead by heartbeat silence. */
    std::size_t failovers = 0;
    /** Frames from another epoch, discarded. */
    std::size_t orphanFrames = 0;
    /** Frames that failed to decode. */
    std::size_t corruptFrames = 0;
    /** Retransmissions sent (both phases). */
    std::size_t retries = 0;
};

/**
 * One worker process's runtime: plant + protocol state machine, paced
 * by the wall clock. Construct with role 0..N-1 for a rack worker or
 * role N for the room (N = DistributedControlPlane::rackWorkerCountFor
 * on the scenario's power system).
 */
class WorkerRuntime
{
  public:
    /**
     * @param scenario  loaded scenario (ownership taken; every worker
     *                  process loads the same file)
     * @param peers     shared peer table (ports, periodMs, originMs)
     * @param role      endpoint: rack index, or rack count for the room
     * @param seed      sensor-noise seed (must match across processes
     *                  only in that each process forks its own servers'
     *                  streams from it)
     */
    WorkerRuntime(config::LoadedScenario scenario,
                  config::WorkerPeers peers, std::uint32_t role,
                  std::uint64_t seed = 1);

    ~WorkerRuntime();

    WorkerRuntime(const WorkerRuntime &) = delete;
    WorkerRuntime &operator=(const WorkerRuntime &) = delete;

    /** True when this runtime drives the room worker. */
    bool isRoom() const { return role_ == rackCount_; }

    /** Rack workers in the deployment (the room is endpoint rackCount). */
    std::size_t rackCount() const { return rackCount_; }

    /**
     * Run up to @p max_periods control periods, each aligned to its
     * wall-clock window, until requestStop(). Returns periods run.
     */
    std::size_t runPeriods(std::size_t max_periods);

    /**
     * Ask the period loop to exit at the next check (async-signal-safe:
     * only stores an atomic flag — wire it to SIGTERM in a daemon).
     */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    /** Protocol accounting so far. */
    const RuntimeStats &stats() const { return stats_; }

    /** Degraded-mode decisions (timestamps are epochs). */
    const core::EventLog &eventLog() const { return events_; }

    /** The UDP transport (e.g., to rewire ephemeral ports in tests). */
    net::UdpTransport &transport() { return *transport_; }

    /** Epoch of the most recently completed period (0 before any). */
    std::uint32_t lastEpoch() const { return lastEpoch_; }

    /**
     * Rack only: per-supply AC budgets applied to server @p server_id
     * in the last period (empty before the first period or when the
     * server is not homed on this rack).
     */
    std::vector<Watts> lastServerBudgets(std::size_t server_id) const;

  private:
    /** One server whose plant lives in this rack process. */
    struct Plant
    {
        std::size_t serverId = 0;
        std::unique_ptr<dev::ServerModel> server;
        std::unique_ptr<dev::NodeManager> nm;
        std::unique_ptr<dev::SensorEmulator> sensors;
        std::unique_ptr<dev::Workload> workload;
        std::unique_ptr<ctrl::CappingController> controller;
        /** (tree, supply ref) leaves of this server, all on this rack. */
        std::vector<std::pair<std::size_t, topo::ServerSupplyRef>> leaves;
        std::vector<Watts> lastBudgets;
    };

    /** Room's cache of the last received metrics per edge. */
    struct CachedMetrics
    {
        ctrl::NodeMetrics metrics;
        std::uint32_t epoch = 0;
        bool valid = false;
    };

    std::uint32_t epochAt(std::uint64_t unix_ms) const;
    std::uint64_t unixNowMs() const;
    /** Sleep until @p unix_ms, checking stop_; false when stopped. */
    bool sleepUntil(std::uint64_t unix_ms);

    void runRackPeriod(std::uint32_t epoch);
    void runRoomPeriod(std::uint32_t epoch);
    void buildRack(std::uint64_t seed);
    void buildRoom();

    config::LoadedScenario scenario_;
    config::WorkerPeers peers_;
    std::uint32_t role_ = 0;
    std::size_t rackCount_ = 0;
    std::unique_ptr<net::UdpTransport> transport_;
    std::atomic<bool> stop_{false};
    RuntimeStats stats_;
    core::EventLog events_;
    std::uint32_t lastEpoch_ = 0;
    std::uint32_t seq_ = 0;

    // -------- rack state
    std::unique_ptr<core::RackWorker> rack_;
    /** This rack's (tree -> edge node) slice of the partition. */
    std::map<std::size_t, topo::NodeId> myEdges_;
    std::vector<Plant> plants_;
    /** Simulated plant time (advances controlPeriod per wall period). */
    Seconds simNow_ = 0;

    // -------- room state
    std::unique_ptr<core::RoomWorker> room_;
    /** (tree, edge node) -> owning rack, full partition view. */
    std::map<std::pair<std::size_t, topo::NodeId>, std::size_t>
        edgeOwner_;
    std::vector<int> missedHeartbeats_;
    std::vector<bool> rackDeclaredDead_;
    std::map<std::pair<std::size_t, topo::NodeId>, CachedMetrics>
        metricCache_;
};

} // namespace capmaestro::rt

#endif // CAPMAESTRO_RT_WORKER_RUNTIME_HH
