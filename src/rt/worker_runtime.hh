/**
 * @file
 * Process-level worker runtime (the deployment shape of paper §5): one
 * rack or room worker's half of the §4.5 control protocol, driven by
 * wall-clock deadlines over a real transport instead of by the
 * in-process DistributedControlPlane loop.
 *
 * A deployment runs rackWorkerCount() rack processes (endpoints
 * 0..N-1) plus one room process (endpoint N), all sharing one peer
 * table (config::WorkerPeers). Control periods are anchored to the
 * table's wall-clock origin: period (epoch) e owns the real-time
 * window [originMs + (e-1)*periodMs, originMs + e*periodMs), so every
 * process independently agrees on the current epoch from its own clock
 * (NTP-grade agreement is enough; the per-phase deadlines and the
 * epoch field on every frame absorb skew).
 *
 * Within its window each period runs the two §4.5 phases:
 *
 *   rack:  advance the local plant (sensing + actuation), close the
 *          capping-controller period, send heartbeat + per-edge
 *          metrics + a plant-state Checkpoint (blind bounded
 *          retransmission — a real rack cannot see the room's receive
 *          state, so it re-sends on a timer up to maxAttempts), then
 *          collect budgets until the budget deadline; edges with no
 *          budget fall back to the Pcap_min default. Budgets feed the
 *          per-server PI loops exactly as in the monolithic service.
 *   room:  collect metrics until the gather deadline (stale-cache
 *          fallback per §4.5), run the upper-tree controllers, then
 *          send per-edge budgets with the same blind bounded
 *          retransmission.
 *
 * Failover (the gap PR 4 documented, now closed): every rack streams a
 * compact checkpoint of its recoverable plant state — per-server
 * capping-integrator value, SPO pin flags, and last-period summaries —
 * to the room each period. The room keeps the latest checkpoint per
 * rack (optionally persisted under a state directory for supervisor
 * restarts) and runs a per-rack liveness state machine:
 *
 *   Live ──(heartbeatFailAfter missed)──> Dead: WorkerFailover, the
 *        rack's edges ride the stale -> lost degradation, budgets stop
 *        flowing to it.
 *   Dead ──(any frame heard)──> Rehoming. A *reincarnated* instance is
 *        also detected from a Live rack by sequence-number regression
 *        (a restarted process begins again at seq 0), so a worker
 *        restarted within the same epoch window transitions straight
 *        to Rehoming — its fresh-plant metrics are never trusted, and
 *        its liveness is never double-counted against the stale
 *        accounting of the instance that died.
 *   Rehoming: the room withholds budgets (the rack rides its Pcap_min
 *        defaults — the clamp §4.5 requires until fresh metrics exist)
 *        and sends the stored checkpoint as a Rehome frame each period
 *        the rack is heard. The rack replays it (restoring integrator
 *        state, r-hat, summaries, and the plant clock) and acks via
 *        the rehomeAckEpoch field of its next Checkpoint; an intact
 *        instance that merely rode out a partition declines the replay
 *        instead (its own state is newer) and acks likewise.
 *   Rehoming ──(ack at/after the rehome epoch)──> Live: WorkerRehomed,
 *        fresh metrics trusted again, budgets resume. Recovery is
 *        bounded: detection takes at most heartbeatFailAfter periods,
 *        replay + ack two more, so a supervisor restart re-joins
 *        within heartbeatFailAfter + restart delay + 2 periods.
 *
 * The §4.4 SPO round is still skipped here (it needs fleet-wide
 * stranded-power detection); the checkpoint carries the pin flags for
 * format completeness.
 *
 * Pacing: Wall mode (daemons, runPeriods()) sleeps to window
 * boundaries and paces phases with transport deadlines. Lockstep mode
 * (chaos harness) hands the schedule to the caller: stepUpstream() on
 * every rack, then stepRoom(), then stepDownstream() on every rack,
 * one explicit epoch at a time over any injected Transport — this is
 * what makes kill/restart/partition scripts deterministic.
 *
 * Deep trees: when the peer table carries aggLevels, the deployment is
 * a core::TreePlan — leaf workers 0..N-1, interior aggregator workers,
 * and the root at the last endpoint. Leaves speak the same protocol
 * but to their plan parent; aggregators (AggregatorRole) merge child
 * summaries up and split SubBudgets down; the root runs the top
 * fragment. Wall pacing staggers the deadlines by tier so a tier-k
 * receiver's gather closes at window start + k x gatherDeadlineMs and
 * budgets cascade back down symmetrically — with no aggLevels this
 * degenerates to exactly the 2-level schedule above. Deep mode keeps
 * the stale -> reserve degradation at every hop but not the
 * checkpoint/re-homing machinery (aggregators are stateless; see
 * rt/aggregator.hh for the recovery contract).
 *
 * Every degraded decision lands in the runtime's EventLog with the
 * epoch as its timestamp, mirroring ClosedLoopSim's audit trail.
 */

#ifndef CAPMAESTRO_RT_WORKER_RUNTIME_HH
#define CAPMAESTRO_RT_WORKER_RUNTIME_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "config/loader.hh"
#include "control/capping_controller.hh"
#include "core/distributed.hh"
#include "core/events.hh"
#include "core/tree_plan.hh"
#include "device/node_manager.hh"
#include "device/sensor.hh"
#include "device/server.hh"
#include "device/workload.hh"
#include "membership/table.hh"
#include "net/http_endpoint.hh"
#include "net/udp_transport.hh"
#include "net/wire.hh"
#include "rt/aggregator.hh"
#include "rt/plant.hh"
#include "rt/stats.hh"
#include "telemetry/health.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace.hh"
#include "util/json.hh"

namespace capmaestro::rt {

/**
 * One worker process's runtime: plant + protocol state machine.
 * Construct with role 0..N-1 for a rack worker or role N for the room
 * (N = DistributedControlPlane::rackWorkerCountFor on the scenario's
 * power system).
 */
class WorkerRuntime
{
  public:
    /**
     * Wall-paced runtime over an internally owned UdpTransport (the
     * daemon shape).
     *
     * @param scenario  loaded scenario (ownership taken; every worker
     *                  process loads the same file)
     * @param peers     shared peer table (ports, periodMs, originMs)
     * @param role      endpoint: rack index, or rack count for the room
     * @param seed      sensor-noise seed (must match across processes
     *                  only in that each process forks its own servers'
     *                  streams from it)
     */
    WorkerRuntime(config::LoadedScenario scenario,
                  config::WorkerPeers peers, std::uint32_t role,
                  std::uint64_t seed = 1);

    /**
     * Runtime over an injected transport (not owned; must outlive the
     * runtime). Lockstep pacing skips every wall-clock validation —
     * the harness owns the epoch schedule.
     */
    WorkerRuntime(config::LoadedScenario scenario,
                  config::WorkerPeers peers, std::uint32_t role,
                  std::uint64_t seed, net::Transport &transport,
                  Pacing pacing);

    ~WorkerRuntime();

    WorkerRuntime(const WorkerRuntime &) = delete;
    WorkerRuntime &operator=(const WorkerRuntime &) = delete;

    /** True when this runtime drives the room (tree-root) worker. */
    bool isRoom() const { return role_ == plan_.rootEndpoint(); }

    /** True when this runtime drives an interior aggregator worker. */
    bool isAggregator() const
    {
        return role_ >= rackCount_ && !isRoom();
    }

    /** Leaf (rack) workers in the deployment; aggregators and the root
     *  occupy the endpoints above them (see core::TreePlan). */
    std::size_t rackCount() const { return rackCount_; }

    /** "room", "aggN", or "rackN" — log labels. */
    std::string roleName() const;

    /** The worker layout this deployment runs. */
    const core::TreePlan &plan() const { return plan_; }

    /**
     * Wall pacing only: run up to @p max_periods control periods, each
     * aligned to its wall-clock window, until requestStop(). Returns
     * periods run.
     */
    std::size_t runPeriods(std::size_t max_periods);

    // ---- Lockstep pacing: the caller drives one epoch as
    // stepUpstream() on every live rack, stepRoom(), then
    // stepDownstream() on every live rack.

    /** Rack, lockstep: advance the plant and send the upstream batch
     *  (heartbeat + metrics + checkpoint) once, without pacing. */
    void stepUpstream(std::uint32_t epoch);

    /** Room, lockstep: gather, run liveness/failover, compute and send
     *  budgets (+ Rehome frames) once. */
    void stepRoom(std::uint32_t epoch);

    /** Rack, lockstep: collect budgets/Rehome, apply defaults and
     *  per-server caps. */
    void stepDownstream(std::uint32_t epoch);

    // ---- Lockstep pacing, deep plans: one epoch is stepUpstream() on
    // every leaf, stepAggregatorUp() tier by tier ascending, stepRoom(),
    // stepAggregatorDown() tier by tier descending, stepDownstream() on
    // every leaf.

    /** Aggregator, lockstep: gather child summaries, merge, and send
     *  this worker's Summary frames (+ heartbeat) to its parent. */
    void stepAggregatorUp(std::uint32_t epoch);

    /** Aggregator, lockstep: collect SubBudgets from the parent, split,
     *  and send Budget/SubBudget frames to the children. */
    void stepAggregatorDown(std::uint32_t epoch);

    /**
     * Ask the period loop to exit at the next check (async-signal-safe:
     * only stores an atomic flag — wire it to SIGTERM in a daemon).
     */
    void requestStop() { stop_.store(true, std::memory_order_relaxed); }

    /** Protocol accounting so far. */
    const RuntimeStats &stats() const { return stats_; }

    /** Degraded-mode decisions (timestamps are epochs). */
    const core::EventLog &eventLog() const { return events_; }

    /** The transport this runtime speaks over. */
    net::Transport &transport() { return *transport_; }

    /**
     * The internally owned UDP transport (e.g., to rewire ephemeral
     * ports in tests), or nullptr when a transport was injected.
     */
    net::UdpTransport *udp() { return ownedTransport_.get(); }

    /** Epoch of the most recently completed period (0 before any). */
    std::uint32_t lastEpoch() const { return lastEpoch_; }

    /**
     * Rack only: per-supply AC budgets applied to server @p server_id
     * in the last period (empty before the first period or when the
     * server is not homed on this rack).
     */
    std::vector<Watts> lastServerBudgets(std::size_t server_id) const;

    /** Rack only: (tree, edge) -> AC budget applied last period. */
    const std::map<std::pair<std::size_t, topo::NodeId>, Watts> &
    lastEdgeBudgets() const
    {
        return lastEdgeBudgets_;
    }

    /** Room only: liveness state of rack @p r. */
    RackState rackState(std::size_t r) const;

    // ---- membership / elasticity plane (see membership/table.hh).
    // The root owns the table: begin*/markAbsent mutate it, the commit
    // gate runs inside the period loop, and deltas are broadcast until
    // every affected unit acked the current generation. Non-root
    // workers hold a replica updated by MembershipDelta frames. A
    // static all-Live table keeps the whole plane idle — no frames, no
    // sequence numbers, no behavioral difference from pre-elasticity
    // builds.

    /** This worker's membership replica (the root's is the truth). */
    const membership::MembershipTable &membership() const
    {
        return membership_;
    }

    /** Local membership generation. */
    std::uint32_t membershipGeneration() const
    {
        return membership_.generation();
    }

    /**
     * Root only: announce @p endpoint as Joining (phase one of the
     * two-phase adopt). The unit runs shadow periods — metrics up,
     * grants clamped to the Pcap_min floor, floor reserved — until the
     * commit gate (current-generation ack + the minimum shadow window)
     * promotes it to Live. Returns true when the table changed.
     */
    bool membershipBeginJoin(std::uint32_t endpoint);

    /** Root only: announce @p endpoint as Draining (reverse handshake;
     *  floor stays reserved until the unit acks the Left commit). */
    bool membershipBeginDrain(std::uint32_t endpoint);

    /**
     * Root only, before the first period: mark @p endpoint as not yet
     * deployed (Left, since generation 0 — no floor is reserved and no
     * broadcast targets it). The endpoint keeps its slot in the peer
     * table; membershipBeginJoin() brings it in later.
     */
    void membershipMarkAbsent(std::uint32_t endpoint);

    /**
     * Non-root, before the first period: boot in shadow mode. The
     * local replica starts empty, so this worker treats itself as not
     * yet a member — every period rides the Pcap_min clamp — until a
     * root broadcast shows it Live. This is how a freshly provisioned
     * worker joins without ever applying an uncommitted budget.
     */
    void beginShadow();

    /** Non-root: the root committed this worker out of the deployment
     *  (replica shows self Left). The supervisor can retire it. */
    bool membershipLeft() const;

    /**
     * Frame-header version this worker stamps on outgoing frames —
     * kWireVersion by default; kWireCompatVersion simulates the older
     * half of a rolling upgrade (decode always accepts both). A
     * compat-stamped worker cannot speak the membership plane (those
     * types are v6-only): the root just keeps broadcasting until the
     * unit is upgraded, so upgrade-then-join is the supported order.
     */
    void setWireVersion(std::uint8_t version);

    /** Current outgoing frame-header version. */
    std::uint8_t wireVersion() const { return wireVersion_; }

    /**
     * Ask the period loop to re-run the reload handler before the next
     * period (async-signal-safe: only stores a flag — wire it to
     * SIGHUP in a daemon). No-op without a handler.
     */
    void requestReload() { reload_.store(true, std::memory_order_relaxed); }

    /** Handler invoked from the period loop after requestReload() —
     *  e.g. re-read peers.json and apply membership join/drain. */
    void setReloadHandler(std::function<void()> handler)
    {
        reloadHandler_ = std::move(handler);
    }

    /**
     * Attach a metrics registry and (optionally) a period tracer.
     * Counters are labeled {role=rackN|aggN|room, tier=K}; the
     * transport is instrumented too. nullptr detaches. With telemetry
     * attached, outgoing frames carry the v5 trace context and
     * incoming stamped frames feed per-hop latency histograms — both
     * purely observational (see net/wire.hh: allocations stay
     * bit-identical either way).
     */
    void setTelemetry(telemetry::Registry *registry,
                      telemetry::PeriodTracer *tracer = nullptr);

    /**
     * Open the scrape endpoint on 127.0.0.1:@p port (0 = ephemeral):
     * /metrics (Prometheus text), /healthz (JSON), /tracez (last
     * period traces). Serviced from the runtime's own pacing loop — no
     * threads. Returns the bound port, or 0 when the bind failed.
     */
    std::uint16_t serveHttp(std::uint16_t port);

    /** Bound scrape port (0 when serveHttp() was never called). */
    std::uint16_t httpPort() const { return http_.port(); }

    /** The /healthz document (valid any time). */
    util::Json healthJson() const;

    /** Room view: per-rack health rollup (empty on non-room roles). */
    const telemetry::FleetHealthRegistry &fleetHealth() const
    {
        return fleetHealth_;
    }

    /** Online budget-conservation auditor (room and aggregators). */
    const telemetry::SafetyAuditor &safetyAuditor() const
    {
        return auditor_;
    }

    /**
     * Room only: persist the latest checkpoint per rack under
     * @p dir (one file per rack, atomically replaced), and load any
     * checkpoints a previous room instance left there — how a
     * supervisor-restarted room can still re-home racks that died
     * while it was down.
     */
    void setStateDir(const std::string &dir);

  private:
    /** Room's cache of the last received metrics per edge. */
    struct CachedMetrics
    {
        ctrl::NodeMetrics metrics;
        std::uint32_t epoch = 0;
        bool valid = false;
    };

    /** Room's per-rack liveness and re-homing bookkeeping. */
    struct RackHealth
    {
        RackState state = RackState::Live;
        int missed = 0;
        /** Highest sequence number seen from the current instance. */
        std::uint32_t maxSeq = 0;
        bool seqSeen = false;
        /** Latest rehomeAckEpoch reported by the rack's checkpoints. */
        std::uint32_t lastAckEpoch = 0;
        /** Epoch the current re-homing round's first Rehome was sent
         *  (0 = none yet this round). */
        std::uint32_t rehomeEpoch = 0;
    };

    /** Shared ctor body: validate the deployment and build the role. */
    void init(std::uint64_t seed);

    /**
     * Precompute the config-nominal Pcap_min floor of every edge:
     * sum over the edge's supply leaves of server capMin x nominal
     * load share, clamped to the edge device limit. Derived purely
     * from the scenario file, so every process computes bit-identical
     * values — the contract that makes degraded-mode budgeting safe:
     * a rack's unilateral fallback never exceeds this floor, and the
     * room reserves exactly this floor out of the tree budget for
     * every rack it is not currently budgeting.
     */
    void computeNominalFloors();

    std::uint32_t epochAt(std::uint64_t unix_ms) const;
    std::uint64_t unixNowMs() const;
    /** Sleep until @p unix_ms, checking stop_; false when stopped. */
    bool sleepUntil(std::uint64_t unix_ms);

    // ---- observability plane (all no-ops until setTelemetry())
    /** Clock the trace context's send timestamp uses: unix realtime
     *  over UDP (cross-process), the shared transport clock otherwise
     *  — either way, sender and receiver of a hop agree. */
    double hopClockMs() const;
    /** Frame header for one send; stamps the trace context when
     *  telemetry is attached. Consumes seq_ identically either way. */
    net::FrameMeta stampMeta(std::uint16_t sender, std::uint32_t epoch);
    /** Feed one received frame's trace context (when stamped) into the
     *  per-hop latency histogram and, inside an open period, a span. */
    void recordHop(const net::Frame &frame);
    /** Online §4.5 audit of a deep fragment's split (room/aggregator):
     *  committed + reserved floors must not exceed the grant. */
    void auditDowns(std::uint32_t epoch,
                    const std::vector<AggregatorRole::DownMsg> &downs);
    /** Roll this period's gather outcomes into the health registry
     *  (deep roles: worst station state per child worker). */
    void reportStationHealth(std::uint32_t epoch);

    void runRackPeriod(std::uint32_t epoch);
    void runRoomPeriod(std::uint32_t epoch);
    /** Wall pacing, deep plans: one aggregator/root period (gather up,
     *  forward, collect SubBudgets, split down) on the tier-staggered
     *  deadline schedule. */
    void runAggregatorPeriod(std::uint32_t epoch);
    void buildRack(std::uint64_t seed);
    void buildRoom();
    void buildAggregator();

    // ---- rack phase helpers (shared by Wall and Lockstep pacing)
    void rackAdvancePlant(std::uint32_t epoch);
    std::vector<std::vector<std::uint8_t>>
    buildUpstreamFrames(std::uint32_t epoch);
    /** Handle one downstream frame; true when it was a Rehome. */
    bool processDownFrame(const net::Frame &frame, std::uint32_t epoch,
                          std::set<std::pair<std::size_t, topo::NodeId>>
                              &applied);
    void replayCheckpoint(const net::CheckpointMsg &msg,
                          std::uint32_t epoch);
    void finishRackPeriod(
        std::uint32_t epoch,
        const std::set<std::pair<std::size_t, topo::NodeId>> &applied);

    // ---- aggregator phase helpers (deep plans)
    /** Drain one poll pass into agg_: SubBudgets feed the down phase
     *  when @p down_phase, everything else the gather. */
    void aggDrainOnce(bool down_phase);
    /** Heartbeat + this worker's Summary frames for the parent. */
    std::vector<std::vector<std::uint8_t>>
    encodeUpFrames(std::uint32_t epoch,
                   const std::vector<net::MetricsMsg> &summaries);
    /** (child endpoint, encoded Budget/SubBudget) per computed split. */
    std::vector<std::pair<net::Transport::Endpoint,
                          std::vector<std::uint8_t>>>
    encodeDownFrames(std::uint32_t epoch,
                     const std::vector<AggregatorRole::DownMsg> &downs);

    // ---- room phase helpers
    void roomGather(std::uint32_t epoch, bool paced);
    void noteRackFrame(std::size_t rack, std::uint32_t seq,
                       std::uint32_t epoch);
    /** Frames in one of rack @p rack's upstream batches (heartbeat +
     *  one metrics frame per owned edge + checkpoint) — the sequence
     *  regression a retransmitted batch can legitimately show. */
    std::uint32_t rackBatchSize(std::size_t rack) const;
    void beginRehoming(std::size_t rack, std::uint32_t epoch);
    void roomLiveness(std::uint32_t epoch);
    void roomComputeAndSend(std::uint32_t epoch, bool paced);
    void persistCheckpoint(std::size_t rack);
    void loadPersistedCheckpoints();
    std::string checkpointPath(std::size_t rack) const;
    std::size_t deadOrRehomingCount() const;

    // ---- membership plane helpers (epoch-free: the generation is the
    // membership clock; frames are accepted regardless of their epoch)
    /** Root: the unit is Left and either acked that state or was never
     *  deployed — its nominal floor is no longer reserved. */
    bool membershipFloorReleased(std::uint16_t endpoint) const;
    /** Root: @p endpoint still needs the current snapshot. */
    bool membershipBroadcastTarget(std::uint16_t endpoint) const;
    /** Root: send the snapshot to every un-acked unit (single-shot per
     *  period; loss is repaired by the next period's broadcast). */
    void broadcastMembership(std::uint32_t epoch);
    /** Root: run the two-phase commit gate and refresh the gauges. */
    void membershipTick(std::uint32_t epoch);
    /** Non-root: adopt a broadcast snapshot and ack it. */
    void adoptMembershipDelta(const net::Frame &frame);
    /** Root: fold one MembershipAck into the ack book. */
    void noteMembershipAck(const net::Frame &frame);
    /** Non-root: ack the current replica generation to the root. */
    void sendMembershipAck(std::uint32_t epoch);

    void finishPeriod(std::uint32_t epoch);

    config::LoadedScenario scenario_;
    config::WorkerPeers peers_;
    /** (tree, edge node) -> nominal Pcap_min floor (see
     *  computeNominalFloors()); identical in every process. */
    std::map<std::pair<std::size_t, topo::NodeId>, Watts>
        nominalFloor_;
    /** Worker layout: flat 2-level by default, deeper when the peer
     *  table carries aggLevels. */
    core::TreePlan plan_;
    std::uint32_t role_ = 0;
    std::size_t rackCount_ = 0;
    /** Endpoint this worker sends upstream to (leaf and aggregator
     *  roles; the root has none). */
    std::uint32_t parentEp_ = 0;
    Pacing pacing_ = Pacing::Wall;
    std::unique_ptr<net::UdpTransport> ownedTransport_;
    net::Transport *transport_ = nullptr;
    std::atomic<bool> stop_{false};
    std::atomic<bool> reload_{false};
    std::function<void()> reloadHandler_;
    /** Version stamped on outgoing frame headers (see setWireVersion). */
    std::uint8_t wireVersion_ = net::kWireVersion;

    // -------- membership plane
    /** Root: the table; non-root: the broadcast-fed replica. */
    membership::MembershipTable membership_;
    /** Root: highest generation each endpoint has acked. */
    std::map<std::uint16_t, std::uint32_t> memberAckGen_;
    /** Root: epoch each pending join was announced at (shadow window
     *  start for the commit gate). */
    std::map<std::uint16_t, std::uint32_t> joinAnnounceEpoch_;
    RuntimeStats stats_;
    core::EventLog events_;
    std::uint32_t lastEpoch_ = 0;
    std::uint32_t seq_ = 0;

    // -------- rack state
    std::unique_ptr<core::RackWorker> rack_;
    /** This rack's (tree -> edge node) slice of the partition. */
    std::map<std::size_t, topo::NodeId> myEdges_;
    std::vector<Plant> plants_;
    /** Simulated plant time (advances controlPeriod per wall period). */
    Seconds simNow_ = 0;
    /** Checkpoint built by the last rackAdvancePlant(). */
    net::CheckpointMsg lastCheckpoint_;
    /** Epoch of the last Rehome this instance processed (0 = none). */
    std::uint32_t rehomeAckEpoch_ = 0;
    /** A Rehome was replayed during the current period. */
    bool replayedThisPeriod_ = false;
    std::map<std::pair<std::size_t, topo::NodeId>, Watts>
        lastEdgeBudgets_;

    // -------- aggregator / deep-root state
    std::unique_ptr<AggregatorRole> agg_;

    // -------- room state (2-level deployments)
    std::unique_ptr<core::RoomWorker> room_;
    /** (tree, edge node) -> owning rack, full partition view. */
    std::map<std::pair<std::size_t, topo::NodeId>, std::size_t>
        edgeOwner_;
    std::vector<RackHealth> rackHealth_;
    std::map<std::pair<std::size_t, topo::NodeId>, CachedMetrics>
        metricCache_;
    /** Latest checkpoint per rack. */
    std::map<std::size_t, net::CheckpointMsg> checkpoints_;
    /** Per-epoch gather results (cleared by roomGather). */
    std::set<std::size_t> heard_;
    std::map<std::pair<std::size_t, topo::NodeId>, ctrl::NodeMetrics>
        fresh_;
    std::string stateDir_;

    // -------- telemetry (null-safe no-op handles when detached)
    telemetry::Registry *registry_ = nullptr;
    telemetry::PeriodTracer *tracer_ = nullptr;
    /** Telemetry attached: stamp trace contexts, record hops, audit. */
    bool obs_ = false;
    net::HttpEndpoint http_;
    telemetry::FleetHealthRegistry fleetHealth_;
    telemetry::SafetyAuditor auditor_;
    /** (msg type, origin tier) -> hop latency histogram, registered
     *  lazily on the first stamped frame of that shape. */
    std::map<std::pair<std::uint8_t, std::uint8_t>,
             telemetry::HistogramMetric>
        hopHist_;
    /** Hop spans recorded in the current period (bounded). */
    std::size_t hopSpans_ = 0;
    telemetry::Counter mPeriods_;
    telemetry::Counter mCheckpoints_;
    telemetry::Counter mRehomesSent_;
    telemetry::Counter mRehomesApplied_;
    telemetry::Counter mRehomesDeclined_;
    telemetry::Counter mClampedPeriods_;
    telemetry::Counter mFailovers_;
    telemetry::Counter mRestartsDetected_;
    telemetry::Counter mRehomed_;
    telemetry::Counter mDefaultBudgets_;
    telemetry::Gauge mDeadRacks_;
    telemetry::Counter mMembershipDeltas_;
    telemetry::Counter mMembershipAcks_;
    telemetry::Counter mMembershipCommits_;
    telemetry::Counter mShadowPeriods_;
    telemetry::Gauge mMembershipGen_;
    telemetry::Gauge mMembershipPending_;
};

} // namespace capmaestro::rt

#endif // CAPMAESTRO_RT_WORKER_RUNTIME_HH
