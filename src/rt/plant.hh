/**
 * @file
 * The local plant of a leaf (rack) worker: per-server device models,
 * sensing, workload replay, and the capping controller, plus the
 * period helpers that move state between the plant and the worker's
 * core::RackWorker edge controllers.
 *
 * Extracted from WorkerRuntime so both runtimes that home plants — the
 * one-role WorkerRuntime daemon and the many-role WorkerHost event
 * loop — share one implementation of the plant build rules (sensor
 * stream forking in server-id order, split-server rejection) and the
 * per-period sequence (advance, close + leaf-input refresh with the
 * nominal-floor pinning, budget application through the PI loops).
 * The helpers perform the exact operations WorkerRuntime always did,
 * in the same order, so existing single-role behavior is unchanged.
 */

#ifndef CAPMAESTRO_RT_PLANT_HH
#define CAPMAESTRO_RT_PLANT_HH

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "config/loader.hh"
#include "control/capping_controller.hh"
#include "core/distributed.hh"
#include "device/node_manager.hh"
#include "device/sensor.hh"
#include "device/server.hh"
#include "device/workload.hh"
#include "net/wire.hh"
#include "util/random.hh"

namespace capmaestro::rt {

/** One server whose plant lives in this process. */
struct Plant
{
    std::size_t serverId = 0;
    std::unique_ptr<dev::ServerModel> server;
    std::unique_ptr<dev::NodeManager> nm;
    std::unique_ptr<dev::SensorEmulator> sensors;
    std::unique_ptr<dev::Workload> workload;
    std::unique_ptr<ctrl::CappingController> controller;
    /** (tree, supply ref) leaves of this server, all on one worker. */
    std::vector<std::pair<std::size_t, topo::ServerSupplyRef>> leaves;
    std::vector<Watts> lastBudgets;
};

/**
 * Which leaf workers each server's supply leaves land on, under the
 * given partition. A server spanning more than one worker cannot have
 * its plant homed in a single process (build rejects it).
 */
std::map<std::size_t, std::set<std::size_t>>
serverWorkers(const topo::PowerSystem &system,
              const std::vector<std::map<std::size_t, topo::NodeId>>
                  &partition);

/**
 * Build the plants of every leaf worker in @p want, moving the server
 * specs and workloads out of @p scenario. The per-server sensor-noise
 * streams are forked from @p seed in server-id order over *all*
 * servers, so a server's stream is identical no matter which process
 * (or which multi-role host) ends up homing it. fatal()s on a server
 * split across workers or missing its workload.
 *
 * @param scenario  loaded scenario; server specs/workloads are consumed
 * @param system    the scenario's power system
 * @param want      leaf worker -> its (tree -> edge node) slice
 * @param seed      sensor-noise master seed (shared by every process)
 * @return worker -> plants homed on it (empty vectors for plantless
 *         workers in @p want)
 */
std::map<std::size_t, std::vector<Plant>>
buildPlants(config::LoadedScenario &scenario,
            const topo::PowerSystem &system,
            const std::map<std::size_t,
                           std::map<std::size_t, topo::NodeId>> &want,
            std::uint64_t seed);

/**
 * One control period of 1 Hz sensing and actuation for @p plants,
 * advancing @p sim_now by @p control_period seconds.
 */
void advancePlants(std::vector<Plant> &plants, Seconds control_period,
                   Seconds &sim_now);

/**
 * Close each plant's controller period, refresh the worker's edge leaf
 * inputs (with the config-nominal floor pinning §4.5 degraded-mode
 * budgeting relies on), and append each server's recoverable state to
 * @p checkpoint.
 */
void closePlantPeriods(std::vector<Plant> &plants,
                       const topo::PowerSystem &system,
                       core::RackWorker &rack,
                       net::CheckpointMsg &checkpoint);

/** Apply the worker's post-budget leaf caps through the PI loops. */
void applyPlantBudgets(std::vector<Plant> &plants,
                       core::RackWorker &rack);

/**
 * The config-nominal Pcap_min floor of every partition edge: sum over
 * the edge's supply leaves of server capMin x nominal load share,
 * clamped to the edge device limit. Derived purely from the scenario
 * file (call it before buildPlants() consumes the specs), so every
 * process computes bit-identical values — the contract that makes
 * degraded-mode budgeting safe at every hop: a leaf's unilateral
 * fallback never exceeds this floor, and whichever hop stops budgeting
 * a subtree reserves exactly the floors beneath it.
 */
std::map<std::pair<std::size_t, topo::NodeId>, Watts>
nominalEdgeFloors(const topo::PowerSystem &system,
                  const config::LoadedScenario &scenario);

} // namespace capmaestro::rt

#endif // CAPMAESTRO_RT_PLANT_HH
