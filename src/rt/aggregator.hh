/**
 * @file
 * One aggregator worker's protocol half for deep control trees
 * (core::TreePlan): the frame-level state machine between a
 * core::RoomWorker fragment and the wire.
 *
 * An AggregatorRole serves both the interior tiers and the root of a
 * deep plan. Each epoch it gathers per-class summaries from its child
 * workers (Metrics frames from leaf children, Summary frames from
 * aggregator children), assembles the fragment boundary with the same
 * §4.5 stale-metric fallback the 2-level room applies per edge, merges
 * the boundary up to its top station, and forwards one Summary per
 * tree to its parent. On the way down it accepts one SubBudget per
 * tree from the parent (the root computes from the scenario's root
 * budgets instead), splits it over the child stations, and hands the
 * per-child messages back to the caller for transmission.
 *
 * Degraded-mode contract: a child station with no usable metrics
 * (nothing fresh, stale cache expired) is excluded from the boundary
 * and the *nominal Pcap_min floor of the edges beneath it* is reserved
 * out of this fragment's received budget before the split — the
 * subtree is riding exactly those unilateral floors, and the sum of
 * what flows down the live children plus the dead subtree's floors
 * must never exceed what this fragment was granted. Reserving out of
 * the local grant (rather than propagating the exclusion upward) is
 * conservative: the parent may have granted the lost subtree nothing,
 * in which case live children are under-allocated for a period. Safety
 * over efficiency, exactly like the 2-level room's reserve.
 *
 * Aggregators are deliberately stateless beyond the metric cache: no
 * checkpoint streaming, no re-homing. A killed-and-restarted
 * aggregator rejoins silently — its parent rides the stale cache, then
 * reserves; its children ride Pcap_min defaults until budgets flow
 * again. (Leaf plant recovery remains the 2-level room's machinery.)
 */

#ifndef CAPMAESTRO_RT_AGGREGATOR_HH
#define CAPMAESTRO_RT_AGGREGATOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/distributed.hh"
#include "core/events.hh"
#include "core/tree_plan.hh"
#include "net/protocol.hh"
#include "net/wire.hh"
#include "rt/stats.hh"

namespace capmaestro::rt {

/** Frame-level aggregator (or deep-root) half of the §4.5 protocol. */
class AggregatorRole
{
  public:
    /** One downstream message computeDown() wants transmitted. */
    struct DownMsg
    {
        /** Child worker endpoint to send to. */
        std::uint32_t child = 0;
        /** Encode as Budget (leaf child) vs SubBudget (aggregator). */
        bool leafChild = false;
        net::BudgetMsg msg;
    };

    /**
     * @param system        power system (not owned)
     * @param plan          deep worker layout (copied from)
     * @param endpoint      this worker's endpoint (interior or root)
     * @param policy        priority flags
     * @param nominal_floor (tree, edge node) -> nominal Pcap_min floor,
     *                      as computed by every process from the config
     * @param protocol      §4.5 deadlines (stale age cap)
     * @param root_budgets  per-tree root budgets (root worker only;
     *                      ignored elsewhere)
     */
    AggregatorRole(const topo::PowerSystem &system,
                   const core::TreePlan &plan, std::uint32_t endpoint,
                   ctrl::TreePolicy policy,
                   const std::map<std::pair<std::size_t, topo::NodeId>,
                                  Watts> &nominal_floor,
                   const net::ProtocolConfig &protocol,
                   std::vector<Watts> root_budgets);

    /** This role drives the plan's root worker. */
    bool isRoot() const { return root_; }

    /** Child worker endpoints. */
    const std::set<std::uint32_t> &children() const { return children_; }

    /** Reset the per-epoch gather/budget state. */
    void beginEpoch(std::uint32_t epoch);

    /**
     * Feed one decoded upstream frame (Metrics, Summary, Heartbeat, or
     * Checkpoint from a child). Returns false (and counts an orphan)
     * for wrong-epoch, non-child, or station-mismatched frames.
     */
    bool noteUpFrame(const net::Frame &frame, RuntimeStats &stats);

    /** Every expected child station has fresh metrics this epoch. */
    bool upComplete() const;

    /** Child endpoints from whom no station reported this epoch.
     *  Meaningful once the gather phase closes: the host pings these
     *  with a header-only heartbeat so a child process that fell
     *  behind the fleet epoch can detect the gap and fast-forward. */
    std::vector<std::uint32_t> silentChildren() const;

    /**
     * Close the gather phase: assemble each tree's boundary with the
     * stale-cache fallback, reserve the floors of excluded stations,
     * and merge to the fragment tops. Returns the Summary messages to
     * forward to the parent (empty at the root, which keeps the
     * boundary for computeDown()).
     */
    std::vector<net::MetricsMsg> closeGather(RuntimeStats &stats,
                                             core::EventLog &events);

    /**
     * Feed one decoded downstream frame (a SubBudget from the parent,
     * whose sender id must be @p parent_sender). Duplicates keep the
     * first-received value.
     */
    bool noteDownFrame(const net::Frame &frame,
                       std::uint16_t parent_sender,
                       RuntimeStats &stats);

    /** Every tree with a fragment here has received its SubBudget. */
    bool downComplete() const;

    /**
     * Split the received budgets (root: compute from the root budgets)
     * down to the child stations. Trees whose SubBudget never arrived
     * produce nothing — silence flows down and the subtree defaults.
     */
    std::vector<DownMsg> computeDown(RuntimeStats &stats);

    // -------- observability read-outs (valid after closeGather())

    /** §4.5 outcome of one child station's gather this epoch. */
    enum class StationHealth : std::uint8_t
    {
        Fresh,
        Stale,
        Lost,
    };

    /** (tree, child station) -> gather outcome, set by closeGather(). */
    const std::map<std::pair<std::size_t, topo::NodeId>, StationHealth> &
    stationHealth() const
    {
        return stationHealth_;
    }

    /** Floor reserved out of this epoch's grant, per tree. */
    const std::vector<Watts> &reservedFloors() const
    {
        return reserved_;
    }

    /** SubBudget received this epoch for @p tree (nullopt: none yet,
     *  or this is the root). */
    std::optional<Watts> receivedBudget(std::size_t tree) const
    {
        const auto got = received_.find(tree);
        if (got == received_.end())
            return std::nullopt;
        return got->second;
    }

    /** Per-tree root budgets (root role; empty elsewhere). */
    const std::vector<Watts> &rootBudgets() const
    {
        return rootBudgets_;
    }

    /** tree -> this worker's top station. */
    const std::map<std::size_t, topo::NodeId> &stations() const
    {
        return stations_;
    }

    /** Owning child endpoint per (tree, child station). */
    const std::map<std::pair<std::size_t, topo::NodeId>, std::uint32_t> &
    childStations() const
    {
        return childOfStation_;
    }

    /** Human-readable station subject ("tree.node"), as used by the
     *  event log — shared with the fleet health rollup. */
    std::string subjectOf(std::size_t tree, topo::NodeId node) const
    {
        return stationSubject(tree, node);
    }

  private:
    const topo::PowerSystem &system_;
    bool root_ = false;
    std::uint32_t endpoint_ = 0;
    /** tree -> this worker's top station (root: the tree roots). */
    std::map<std::size_t, topo::NodeId> stations_;
    std::set<std::uint32_t> children_;
    std::set<std::uint32_t> leafChildren_;
    /** (tree, child station) -> owning child endpoint. */
    std::map<std::pair<std::size_t, topo::NodeId>, std::uint32_t>
        childOfStation_;
    /** (tree, child station) -> summed nominal floor of the edges
     *  beneath it (never clamped by interior limits — the subtree's
     *  unilateral fallbacks are per-edge). */
    std::map<std::pair<std::size_t, topo::NodeId>, Watts> stationFloor_;
    std::unique_ptr<core::RoomWorker> frag_;
    std::vector<Watts> rootBudgets_;
    int staleAgeCapPeriods_ = 0;

    /** Stale-metrics cache per (tree, child station). */
    struct CachedMetrics
    {
        ctrl::NodeMetrics metrics;
        std::uint32_t epoch = 0;
        bool valid = false;
    };
    std::map<std::pair<std::size_t, topo::NodeId>, CachedMetrics>
        cache_;

    // -------- per-epoch state
    std::uint32_t epoch_ = 0;
    std::map<std::pair<std::size_t, topo::NodeId>, ctrl::NodeMetrics>
        fresh_;
    /** Boundary metrics assembled by closeGather(), per tree. */
    std::vector<std::map<topo::NodeId, ctrl::NodeMetrics>> boundary_;
    /** Floor reserved out of this epoch's budget, per tree. */
    std::vector<Watts> reserved_;
    /** tree -> SubBudget received this epoch (first copy wins). */
    std::map<std::size_t, Watts> received_;
    /** Gather outcome per child station, rebuilt by closeGather(). */
    std::map<std::pair<std::size_t, topo::NodeId>, StationHealth>
        stationHealth_;

    std::string stationSubject(std::size_t tree,
                               topo::NodeId node) const;
};

} // namespace capmaestro::rt

#endif // CAPMAESTRO_RT_AGGREGATOR_HH
