/**
 * @file
 * Shared runtime-layer accounting and mode types: the cumulative
 * protocol counters every rt worker keeps (one-role WorkerRuntime
 * daemons, AggregatorRole fragments, and the multi-role WorkerHost all
 * report into the same struct), the room-side rack liveness states,
 * and the pacing modes.
 */

#ifndef CAPMAESTRO_RT_STATS_HH
#define CAPMAESTRO_RT_STATS_HH

#include <cstddef>

namespace capmaestro::rt {

/** Cumulative protocol accounting for one worker process. */
struct RuntimeStats
{
    std::size_t periodsRun = 0;
    /** Rack: edges budgeted by a received Budget frame. */
    std::size_t budgetsApplied = 0;
    /** Rack: edges that fell back to the Pcap_min default. */
    std::size_t defaultBudgets = 0;
    /** Room/aggregator: stations served from the stale-metrics cache. */
    std::size_t staleReuses = 0;
    /** Room/aggregator: stations with no usable metrics at the
     *  deadline (their nominal floor is reserved instead). */
    std::size_t metricsLost = 0;
    /** Room: workers declared dead by heartbeat silence. */
    std::size_t failovers = 0;
    /** Frames from another epoch, discarded. */
    std::size_t orphanFrames = 0;
    /** Frames that failed to decode. */
    std::size_t corruptFrames = 0;
    /** Retransmissions sent (both phases). */
    std::size_t retries = 0;
    /** Rack: checkpoints sent upstream. */
    std::size_t checkpointsSent = 0;
    /** Room: checkpoints received and stored. */
    std::size_t checkpointsStored = 0;
    /** Room: Rehome frames sent to re-homing racks. */
    std::size_t rehomesSent = 0;
    /** Rack: Rehome checkpoints replayed into the local plant. */
    std::size_t rehomesApplied = 0;
    /** Rack: Rehome frames declined (local state already intact). */
    std::size_t rehomesDeclined = 0;
    /** Rack: periods ridden on the Pcap_min clamp after a replay. */
    std::size_t clampedPeriods = 0;
    /** Room: dead or reincarnated rack instances detected. */
    std::size_t restartsDetected = 0;
    /** Room: racks promoted back to Live after a checkpoint ack. */
    std::size_t rehomed = 0;
    /** Aggregator: subtree summaries forwarded to the parent. */
    std::size_t summariesSent = 0;
    /** Aggregator: SubBudget frames accepted from the parent. */
    std::size_t subBudgetsApplied = 0;
    /** Aggregator: trees whose SubBudget never arrived (nothing was
     *  sent down; the subtree rides its Pcap_min defaults). */
    std::size_t subBudgetsMissed = 0;
    /** Root: MembershipDelta broadcasts sent. */
    std::size_t membershipDeltasSent = 0;
    /** Non-root: MembershipAck frames sent back to the root. */
    std::size_t membershipAcksSent = 0;
    /** Non-root: MembershipDelta snapshots adopted into the replica. */
    std::size_t membershipDeltasApplied = 0;
    /** Root: two-phase transitions committed (join or drain). */
    std::size_t membershipCommits = 0;
    /** Rack: periods ridden on the Pcap_min clamp while Joining or
     *  Draining (the shadow window of the adopt protocol). */
    std::size_t shadowPeriods = 0;
    /** Host: periods closed immediately (degraded) because frames from
     *  a future epoch proved the fleet had already moved past this
     *  process — the laggard fast-forwards back into sync instead of
     *  riding deadlines ever further behind. */
    std::size_t catchUpPeriods = 0;
};

/** Room-side liveness state of one rack worker. */
enum class RackState { Live, Dead, Rehoming };

/** How the period schedule is driven. */
enum class Pacing {
    /** Sleep to wall-clock windows; runPeriods() drives (daemons). */
    Wall,
    /** The caller drives phases explicitly via step*() (harnesses). */
    Lockstep,
};

} // namespace capmaestro::rt

#endif // CAPMAESTRO_RT_STATS_HH
