#include "rt/chaos.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/json.hh"
#include "util/logging.hh"

namespace capmaestro::rt {

namespace {

/** Slack on the safety comparisons: absorbs f64 summation error only. */
constexpr double kSafetyEps = 1e-6;

/** Raw IEEE-754 pattern of a double, for bit-exact log lines. */
std::string
bitsOf(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

} // namespace

const char *
chaosKindName(ChaosEvent::Kind kind)
{
    switch (kind) {
    case ChaosEvent::Kind::Kill:
        return "kill";
    case ChaosEvent::Kind::Restart:
        return "restart";
    case ChaosEvent::Kind::Partition:
        return "partition";
    case ChaosEvent::Kind::Heal:
        return "heal";
    case ChaosEvent::Kind::Join:
        return "join";
    case ChaosEvent::Kind::Drain:
        return "drain";
    case ChaosEvent::Kind::Upgrade:
        return "upgrade";
    }
    return "?";
}

void
ChaosScheduler::at(std::uint32_t epoch, ChaosEvent::Kind kind,
                   std::uint32_t a, std::uint32_t b)
{
    events_.push_back({epoch, kind, a, b});
}

void
ChaosScheduler::randomKillRestarts(std::size_t rack_count,
                                   std::uint32_t first_epoch,
                                   std::uint32_t last_epoch,
                                   std::size_t kills,
                                   std::uint32_t down_periods)
{
    if (rack_count == 0 || last_epoch < first_epoch)
        util::fatal("chaos: empty kill schedule domain");
    // A rack must finish its previous re-homing handshake (restart,
    // replay, ack — plus slack for lost frames) before it may be
    // killed again, or recovery accounting loses its anchor.
    const std::uint32_t spacing = down_periods + 8;
    std::map<std::size_t, std::uint32_t> busy_until;
    for (std::size_t i = 0; i < kills; ++i) {
        const auto rack = static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(rack_count) - 1));
        auto epoch = static_cast<std::uint32_t>(rng_.uniformInt(
            first_epoch, last_epoch));
        const auto busy = busy_until.find(rack);
        if (busy != busy_until.end() && epoch < busy->second)
            epoch = busy->second;
        at(epoch, ChaosEvent::Kind::Kill, static_cast<std::uint32_t>(rack));
        at(epoch + down_periods, ChaosEvent::Kind::Restart,
           static_cast<std::uint32_t>(rack));
        busy_until[rack] = epoch + spacing;
    }
}

std::vector<ChaosEvent>
ChaosScheduler::eventsAt(std::uint32_t epoch) const
{
    std::vector<ChaosEvent> out;
    for (const ChaosEvent &event : events_) {
        if (event.epoch == epoch)
            out.push_back(event);
    }
    return out;
}

LockstepDeployment::LockstepDeployment(
    std::string scenario_json, ChaosBackend backend,
    net::TransportConfig sim_faults, std::uint64_t seed,
    std::vector<std::uint32_t> agg_levels)
    : scenarioJson_(std::move(scenario_json)), backend_(backend),
      seed_(seed), scenario_(makeScenario()),
      aggLevels_(std::move(agg_levels)), chaos_(seed)
{
    plan_ = core::TreePlan::build(*scenario_.system, aggLevels_);
    rackCount_ = plan_.leafWorkers;
    const auto workers =
        static_cast<std::uint32_t>(plan_.workers.size());

    peers_.periodMs = 1000.0;
    peers_.originMs = 1; // unused in lockstep, but kept well-formed
    peers_.aggLevels = aggLevels_;
    for (std::uint32_t e = 0; e < workers; ++e)
        peers_.peers[e] = net::UdpPeer{"127.0.0.1", 0};

    if (backend_ == ChaosBackend::Sim) {
        inner_ = std::make_unique<net::SimTransport>(sim_faults);
    } else {
        // One shared socket set for the whole deployment: every
        // endpoint binds an ephemeral loopback port, and the shared
        // peer table resolves them — a restarted runtime reuses the
        // role's socket, so no re-advertising dance is needed.
        inner_ = std::make_unique<net::UdpTransport>(
            net::UdpConfig::loopback(workers));
    }
    chaosNet_ = std::make_unique<net::ChaosTransport>(
        *inner_,
        static_cast<net::Transport::Endpoint>(plan_.rootEndpoint()));

    for (std::uint32_t r = 0; r < rackCount_; ++r)
        racks_.push_back(makeRuntime(r));
    for (std::uint32_t e = static_cast<std::uint32_t>(rackCount_);
         e < plan_.rootEndpoint(); ++e)
        aggs_.push_back(makeRuntime(e));
    room_ = makeRuntime(plan_.rootEndpoint());
}

LockstepDeployment::~LockstepDeployment() = default;

config::LoadedScenario
LockstepDeployment::makeScenario() const
{
    return config::loadScenario(util::parseJson(scenarioJson_));
}

std::unique_ptr<WorkerRuntime>
LockstepDeployment::makeRuntime(std::uint32_t role)
{
    auto runtime = std::make_unique<WorkerRuntime>(
        makeScenario(), peers_, role, seed_, *chaosNet_,
        Pacing::Lockstep);
    runtime->setTelemetry(&registry_);
    const auto v = wireVersionOf_.find(role);
    if (v != wireVersionOf_.end())
        runtime->setWireVersion(v->second);
    return runtime;
}

void
LockstepDeployment::scriptJoiner(std::uint32_t rack)
{
    if (nextEpoch_ != 1)
        util::fatal("chaos: scriptJoiner() must precede run()");
    if (rack >= rackCount_)
        util::fatal("chaos: joiner %u is not a rack role", rack);
    racks_[rack].reset();
    room_->membershipMarkAbsent(rack);
}

void
LockstepDeployment::setWorkerWireVersion(std::uint32_t role,
                                         std::uint8_t version)
{
    wireVersionOf_[role] = version;
    WorkerRuntime *runtime = nullptr;
    if (role < rackCount_)
        runtime = racks_[role].get();
    else if (role < plan_.rootEndpoint())
        runtime = aggs_[role - rackCount_].get();
    else
        runtime = room_.get();
    if (runtime != nullptr)
        runtime->setWireVersion(version);
}

void
LockstepDeployment::apply(const ChaosEvent &event, std::uint32_t epoch)
{
    switch (event.kind) {
    case ChaosEvent::Kind::Kill:
        if (event.a < rackCount_)
            racks_[event.a].reset();
        else if (event.a < plan_.rootEndpoint())
            aggs_[event.a - rackCount_].reset();
        break;
    case ChaosEvent::Kind::Restart:
        if (event.a < rackCount_ && !racks_[event.a]) {
            racks_[event.a] = makeRuntime(event.a);
            // Deep plans run no re-homing handshake: recovery-latency
            // accounting is a 2-level (room liveness) property.
            if (plan_.tiers() == 2)
                pendingRecovery_[event.a] = epoch;
        } else if (event.a < plan_.rootEndpoint()
                   && !aggs_[event.a - rackCount_]) {
            aggs_[event.a - rackCount_] = makeRuntime(event.a);
        }
        break;
    case ChaosEvent::Kind::Partition:
        chaosNet_->setPartition(event.a, event.b, true);
        break;
    case ChaosEvent::Kind::Heal:
        chaosNet_->heal();
        break;
    case ChaosEvent::Kind::Join:
        if (event.a < rackCount_ && !racks_[event.a]) {
            // The process boots shadowed (empty replica, clamped to
            // its floor) and the root announces it Joining; the
            // protocol's own broadcast/ack/commit takes it Live.
            racks_[event.a] = makeRuntime(event.a);
            racks_[event.a]->beginShadow();
            room_->membershipBeginJoin(event.a);
        }
        break;
    case ChaosEvent::Kind::Drain:
        room_->membershipBeginDrain(event.a);
        break;
    case ChaosEvent::Kind::Upgrade:
        setWorkerWireVersion(event.a, net::kWireVersion);
        break;
    }
}

std::string
LockstepDeployment::auditSafety() const
{
    const auto &system = *scenario_.system;
    std::vector<Watts> tree_totals(system.trees().size(), 0.0);
    for (std::size_t r = 0; r < rackCount_; ++r) {
        if (!racks_[r])
            continue;
        for (const auto &[key, budget] : racks_[r]->lastEdgeBudgets()) {
            const auto [tree, node] = key;
            const Watts limit = system.tree(tree).node(node).limit();
            if (limit != topo::kUnlimited
                && budget > limit + kSafetyEps) {
                return "rack" + std::to_string(r) + " edge "
                       + system.tree(tree).name() + "."
                       + system.tree(tree).node(node).name + " budget "
                       + std::to_string(budget) + " W over device limit "
                       + std::to_string(limit) + " W";
            }
            tree_totals[tree] += budget;
        }
    }
    for (std::size_t t = 0; t < tree_totals.size(); ++t) {
        if (tree_totals[t] > scenario_.rootBudgets[t] + kSafetyEps) {
            return "tree " + system.tree(t).name() + " total "
                   + std::to_string(tree_totals[t])
                   + " W over root budget "
                   + std::to_string(scenario_.rootBudgets[t]) + " W";
        }
    }
    return "";
}

std::string
LockstepDeployment::logLine(std::uint32_t epoch) const
{
    std::string line = "e=" + std::to_string(epoch) + " st=";
    for (std::size_t r = 0; r < rackCount_; ++r) {
        if (!racks_[r]) {
            line += 'K';
            continue;
        }
        // Membership overrides liveness in the state column. On a
        // static table every rack is Live and none of these fire, so
        // the line stays bit-identical to a pre-elasticity run.
        switch (room_->membership().state(static_cast<std::uint16_t>(r))) {
        case membership::UnitState::Joining:
            line += 'J';
            continue;
        case membership::UnitState::Draining:
            line += 'G';
            continue;
        case membership::UnitState::Left:
            line += 'X';
            continue;
        case membership::UnitState::Live:
            break;
        }
        if (plan_.tiers() > 2) {
            // Deep plans keep no room-side liveness; alive is alive.
            line += 'L';
            continue;
        }
        switch (room_->rackState(r)) {
        case RackState::Live:
            line += 'L';
            break;
        case RackState::Dead:
            line += 'D';
            break;
        case RackState::Rehoming:
            line += 'R';
            break;
        }
    }
    if (!aggs_.empty()) {
        line += " ag=";
        for (const auto &agg : aggs_)
            line += agg ? 'L' : 'K';
    }
    // Generation suffix only when the table ever moved, so static
    // runs keep their exact pre-elasticity log format.
    if (room_->membershipGeneration() > 1) {
        line += " g=" + std::to_string(room_->membershipGeneration());
    }
    const auto &rs = room_->stats();
    line += " fo=" + std::to_string(rs.failovers)
            + " rd=" + std::to_string(rs.restartsDetected)
            + " rh=" + std::to_string(rs.rehomed);
    for (std::size_t r = 0; r < rackCount_; ++r) {
        line += " | r" + std::to_string(r);
        if (!racks_[r]) {
            line += " killed";
            continue;
        }
        const auto &system = *scenario_.system;
        for (const auto &[key, budget] : racks_[r]->lastEdgeBudgets()) {
            const auto [tree, node] = key;
            line += " " + system.tree(tree).name() + "."
                    + system.tree(tree).node(node).name + "="
                    + bitsOf(budget);
        }
    }
    return line;
}

ChaosRunReport
LockstepDeployment::run(std::uint32_t epochs)
{
    ChaosRunReport report;
    for (std::uint32_t i = 0; i < epochs; ++i) {
        const std::uint32_t epoch = nextEpoch_++;
        for (const ChaosEvent &event : chaos_.eventsAt(epoch))
            apply(event, epoch);

        // One lockstep period in tier order: metrics climb leaf ->
        // aggregators (bottom-up, endpoint order == tier order) ->
        // room, budgets descend the same path mirrored. A killed
        // runtime simply stays silent; its parents ride the stale ->
        // reserve ladder.
        for (auto &rack : racks_) {
            if (rack)
                rack->stepUpstream(epoch);
        }
        for (auto &agg : aggs_) {
            if (agg)
                agg->stepAggregatorUp(epoch);
        }
        room_->stepRoom(epoch);
        for (auto it = aggs_.rbegin(); it != aggs_.rend(); ++it) {
            if (*it)
                (*it)->stepAggregatorDown(epoch);
        }
        for (auto &rack : racks_) {
            if (rack)
                rack->stepDownstream(epoch);
        }

        // Reap drained racks: a runtime whose replica shows itself
        // committed Left has already sent the Left-generation ack (the
        // adopt path acks before this step returns) and applies zero
        // watts — the process exits. Matches a Wall-paced worker's
        // requestStop() on the same condition.
        for (std::size_t r = 0; r < rackCount_; ++r) {
            if (racks_[r] && racks_[r]->membershipLeft()) {
                racks_[r].reset();
                ++report.drained;
            }
        }

        for (auto it = pendingRecovery_.begin();
             it != pendingRecovery_.end();) {
            if (racks_[it->first]
                && room_->rackState(it->first) == RackState::Live) {
                const std::uint32_t took = epoch - it->second + 1;
                report.maxRecoveryPeriods =
                    std::max(report.maxRecoveryPeriods, took);
                ++report.recoveries;
                it = pendingRecovery_.erase(it);
            } else {
                ++it;
            }
        }

        const std::string violation = auditSafety();
        if (!violation.empty()) {
            ++report.violations;
            if (report.firstViolation.empty()) {
                report.firstViolation =
                    "epoch " + std::to_string(epoch) + ": " + violation;
            }
        }
        report.log.push_back(logLine(epoch));
        ++report.epochsRun;
    }
    report.unrecovered = pendingRecovery_.size();
    return report;
}

} // namespace capmaestro::rt
