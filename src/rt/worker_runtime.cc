#include "rt/worker_runtime.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/wire.hh"
#include "policy/policy.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace capmaestro::rt {

namespace {

/** Stop-flag poll granularity while waiting for a period boundary. */
constexpr std::uint64_t kSleepSliceMs = 25;

/** Receive-poll granularity inside a protocol phase, milliseconds. */
constexpr double kPollSliceMs = 2.0;

} // namespace

WorkerRuntime::WorkerRuntime(config::LoadedScenario scenario,
                             config::WorkerPeers peers,
                             std::uint32_t role, std::uint64_t seed)
    : scenario_(std::move(scenario)), peers_(std::move(peers)),
      role_(role)
{
    if (!scenario_.system)
        util::fatal("rt: scenario has no power system");
    rackCount_ =
        core::DistributedControlPlane::rackWorkerCountFor(*scenario_.system);
    if (role_ > rackCount_) {
        util::fatal("rt: role %u out of range (racks 0..%zu, room %zu)",
                    role_, rackCount_ - 1, rackCount_);
    }
    if (peers_.peers.size() != rackCount_ + 1) {
        util::fatal("rt: peer table has %zu endpoints; topology needs "
                    "%zu (racks) + 1 (room)",
                    peers_.peers.size(), rackCount_);
    }
    if (peers_.originMs == 0)
        util::fatal("rt: peers.originMs must be set (shared epoch origin)");
    const auto &proto = scenario_.service.protocol;
    if (peers_.periodMs
        <= proto.gatherDeadlineMs + proto.budgetDeadlineMs) {
        util::fatal("rt: periodMs %.0f must exceed gather+budget "
                    "deadlines (%.0f ms)",
                    peers_.periodMs,
                    proto.gatherDeadlineMs + proto.budgetDeadlineMs);
    }
    if (epochAt(unixNowMs()) > 1000000) {
        util::fatal("rt: peers.originMs is too far in the past; "
                    "regenerate the peer table");
    }

    net::UdpConfig udp;
    udp.peers = peers_.peers;
    udp.local.push_back(role_);
    transport_ = std::make_unique<net::UdpTransport>(std::move(udp));

    if (isRoom())
        buildRoom();
    else
        buildRack(seed);
}

WorkerRuntime::~WorkerRuntime() = default;

void
WorkerRuntime::buildRack(std::uint64_t seed)
{
    const auto &system = *scenario_.system;
    const auto partition =
        core::DistributedControlPlane::partitionEdges(system);
    const auto policy = policy::treePolicy(scenario_.service.policy);

    rack_ = std::make_unique<core::RackWorker>(system, policy);
    myEdges_ = partition[role_];
    for (const auto &[tree, node] : myEdges_)
        rack_->addEdge(tree, node);

    // Which rack each server's leaves land on; a server split across
    // racks cannot have its plant homed in one process.
    std::map<std::size_t, std::set<std::size_t>> server_racks;
    for (std::size_t r = 0; r < partition.size(); ++r) {
        for (const auto &[tree, node] : partition[r]) {
            for (const topo::NodeId c :
                 system.tree(tree).node(node).children) {
                const auto &ref = *system.tree(tree).node(c).supplyRef;
                server_racks[static_cast<std::size_t>(ref.server)]
                    .insert(r);
            }
        }
    }

    // Fork the per-server sensor-noise streams in server-id order so a
    // server's stream is the same no matter which process hosts it.
    util::Rng rng(seed);
    for (std::size_t sid = 0; sid < scenario_.servers.size(); ++sid) {
        util::Rng server_rng = rng.fork();
        const auto racks = server_racks.find(sid);
        if (racks == server_racks.end()
            || !racks->second.count(role_)) {
            continue;
        }
        if (racks->second.size() > 1) {
            util::fatal("rt: server %zu has supplies on %zu rack "
                        "workers; its plant cannot be homed in one "
                        "process",
                        sid, racks->second.size());
        }

        Plant plant;
        plant.serverId = sid;
        plant.server = std::make_unique<dev::ServerModel>(
            std::move(scenario_.servers[sid].spec));
        plant.nm = std::make_unique<dev::NodeManager>(*plant.server);
        plant.sensors = std::make_unique<dev::SensorEmulator>(
            *plant.server, *plant.nm, std::move(server_rng),
            dev::SensorConfig{});
        plant.workload = std::move(scenario_.servers[sid].workload);
        if (!plant.workload)
            util::fatal("rt: server %zu has no workload", sid);
        plant.controller = std::make_unique<ctrl::CappingController>(
            *plant.server, *plant.nm, *plant.sensors,
            scenario_.service.capping);
        for (const auto &[tree, node] : myEdges_) {
            for (const topo::NodeId c :
                 system.tree(tree).node(node).children) {
                const auto &ref = *system.tree(tree).node(c).supplyRef;
                if (static_cast<std::size_t>(ref.server) == sid)
                    plant.leaves.emplace_back(tree, ref);
            }
        }
        plant.server->setUtilization(plant.workload->utilizationAt(0));
        plants_.push_back(std::move(plant));
    }
}

void
WorkerRuntime::buildRoom()
{
    const auto &system = *scenario_.system;
    const auto partition =
        core::DistributedControlPlane::partitionEdges(system);
    std::vector<std::set<topo::NodeId>> edge_nodes(
        system.trees().size());
    for (std::size_t r = 0; r < partition.size(); ++r) {
        for (const auto &[tree, node] : partition[r]) {
            edge_nodes[tree].insert(node);
            edgeOwner_[{tree, node}] = r;
        }
    }
    room_ = std::make_unique<core::RoomWorker>(
        system, std::move(edge_nodes),
        policy::treePolicy(scenario_.service.policy));
    missedHeartbeats_.assign(rackCount_, 0);
    rackDeclaredDead_.assign(rackCount_, false);
}

std::uint64_t
WorkerRuntime::unixNowMs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::uint32_t
WorkerRuntime::epochAt(std::uint64_t unix_ms) const
{
    if (unix_ms < peers_.originMs)
        return 0;
    return static_cast<std::uint32_t>(
               static_cast<double>(unix_ms - peers_.originMs)
               / peers_.periodMs)
           + 1;
}

bool
WorkerRuntime::sleepUntil(std::uint64_t unix_ms)
{
    for (;;) {
        if (stop_.load(std::memory_order_relaxed))
            return false;
        const std::uint64_t now = unixNowMs();
        if (now >= unix_ms)
            return true;
        const std::uint64_t wait =
            std::min<std::uint64_t>(unix_ms - now, kSleepSliceMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
}

std::size_t
WorkerRuntime::runPeriods(std::size_t max_periods)
{
    std::size_t done = 0;
    while (done < max_periods
           && !stop_.load(std::memory_order_relaxed)) {
        // The next epoch that has not yet begun; its window start is
        // the shared wall-clock boundary every process sleeps to.
        const std::uint32_t epoch = epochAt(unixNowMs()) + 1;
        const std::uint64_t start =
            peers_.originMs
            + static_cast<std::uint64_t>(
                  static_cast<double>(epoch - 1) * peers_.periodMs);
        if (!sleepUntil(start))
            break;
        if (isRoom())
            runRoomPeriod(epoch);
        else
            runRackPeriod(epoch);
        lastEpoch_ = epoch;
        ++stats_.periodsRun;
        ++done;
    }
    return done;
}

void
WorkerRuntime::runRackPeriod(std::uint32_t epoch)
{
    const auto &system = *scenario_.system;
    const auto &proto = scenario_.service.protocol;
    net::UdpTransport &tp = *transport_;

    // ---- plant: one control period of 1 Hz sensing and actuation.
    // Wall pacing is per period, not per tick: the protocol deadlines
    // below are what consume the period's wall budget.
    for (Seconds tick = 0; tick < scenario_.service.controlPeriod;
         ++tick) {
        for (Plant &plant : plants_) {
            plant.server->setUtilization(
                plant.workload->utilizationAt(simNow_));
        }
        for (Plant &plant : plants_)
            plant.controller->senseTick();
        for (Plant &plant : plants_)
            plant.nm->step(1.0);
        ++simNow_;
    }

    // ---- close controller periods and refresh the edge leaf inputs.
    for (Plant &plant : plants_) {
        const auto report = plant.controller->closePeriod();
        ctrl::ServerAllocInput in;
        const auto &spec = plant.server->spec();
        in.priority = spec.priority;
        in.capMin = spec.capMin;
        in.capMax = spec.capMax;
        in.demand = report.demandEstimate;
        in.supplies.resize(report.shares.size());
        for (std::size_t i = 0; i < report.shares.size(); ++i) {
            in.supplies[i].share = std::max(report.shares[i], 1e-9);
            in.supplies[i].live = report.shares[i] > 0.0;
        }
        const auto shares = ctrl::effectiveSupplyShares(
            system, in, static_cast<std::int32_t>(plant.serverId));
        for (const auto &[tree, ref] : plant.leaves) {
            const auto sup = static_cast<std::size_t>(ref.supply);
            const Fraction r =
                sup < shares.size() ? shares[sup] : 0.0;
            rack_->setLeafInput(tree, ref,
                                ctrl::scaledLeafInput(in, r));
        }
    }

    // ---- upstream: heartbeat + one metrics frame per edge, with
    // blind bounded retransmission (no ACK channel exists; the room
    // dedups by (tree, edge) map overwrite).
    const double start = tp.nowMs();
    const double gather_deadline = start + proto.gatherDeadlineMs;
    const double budget_deadline =
        gather_deadline + proto.budgetDeadlineMs;
    const auto room_ep =
        static_cast<net::Transport::Endpoint>(rackCount_);

    std::vector<std::vector<std::uint8_t>> up;
    up.push_back(net::encodeHeartbeat(
        {static_cast<std::uint16_t>(role_), epoch, seq_++}));
    for (const auto &[tree, node] : myEdges_) {
        net::MetricsMsg msg;
        msg.tree = static_cast<std::uint16_t>(tree);
        msg.edgeNode = static_cast<std::uint32_t>(node);
        msg.metrics = rack_->computeMetrics(tree, node);
        up.push_back(net::encodeMetrics(
            {static_cast<std::uint16_t>(role_), epoch, seq_++}, msg));
    }
    for (const auto &frame : up)
        tp.send(role_, room_ep, frame);
    for (int attempt = 1; attempt < proto.maxAttempts; ++attempt) {
        const double next = start + attempt * proto.retryTimeoutMs;
        if (next >= gather_deadline)
            break;
        tp.advanceTo(next);
        for (const auto &frame : up) {
            tp.send(role_, room_ep, frame);
            ++stats_.retries;
        }
    }

    // ---- downstream: collect budgets until the deadline; a budget's
    // arrival is the implicit end of this edge's exchange.
    std::set<std::pair<std::size_t, topo::NodeId>> applied;
    for (;;) {
        for (const auto &bytes : tp.poll(role_)) {
            const auto frame = net::decodeFrame(bytes);
            if (!frame) {
                ++stats_.corruptFrames;
                continue;
            }
            if (frame->epoch != epoch
                || frame->type != net::MsgType::Budget) {
                ++stats_.orphanFrames;
                continue;
            }
            const std::size_t tree = frame->budget.tree;
            const auto node =
                static_cast<topo::NodeId>(frame->budget.edgeNode);
            const auto mine = myEdges_.find(tree);
            if (mine == myEdges_.end() || mine->second != node) {
                ++stats_.orphanFrames;
                continue;
            }
            if (applied.count({tree, node}))
                continue; // duplicate delivery
            rack_->applyBudget(tree, node, frame->budget.budget);
            applied.insert({tree, node});
            ++stats_.budgetsApplied;
        }
        if (applied.size() == myEdges_.size())
            break;
        const double remaining = budget_deadline - tp.nowMs();
        if (remaining <= 0.0)
            break;
        tp.advanceBy(std::min(remaining, kPollSliceMs));
    }

    // ---- §4.5 default budgets for edges the room never reached.
    for (const auto &[tree, node] : myEdges_) {
        if (applied.count({tree, node}))
            continue;
        const Watts fallback = rack_->defaultBudget(tree, node);
        rack_->applyBudget(tree, node, fallback);
        ++stats_.defaultBudgets;
        events_.record(static_cast<Seconds>(epoch),
                       core::EventKind::DefaultBudgetApplied,
                       system.tree(tree).name() + "."
                           + system.tree(tree).node(node).name,
                       fallback);
    }

    // ---- per-server caps through the PI loops.
    for (Plant &plant : plants_) {
        std::vector<Watts> budgets(plant.server->supplyCount(), 0.0);
        for (const auto &[tree, ref] : plant.leaves) {
            const auto sup = static_cast<std::size_t>(ref.supply);
            if (sup < budgets.size())
                budgets[sup] = rack_->leafBudget(tree, ref);
        }
        plant.controller->applyBudgets(budgets);
        plant.lastBudgets = std::move(budgets);
    }
}

void
WorkerRuntime::runRoomPeriod(std::uint32_t epoch)
{
    const auto &system = *scenario_.system;
    const auto &proto = scenario_.service.protocol;
    net::UdpTransport &tp = *transport_;

    const double start = tp.nowMs();
    const double gather_deadline = start + proto.gatherDeadlineMs;

    // ---- gather: drain metrics until the deadline (or until every
    // edge of every live rack has reported — finishing early only
    // shortens the racks' wait for budgets).
    std::map<std::pair<std::size_t, topo::NodeId>, ctrl::NodeMetrics>
        fresh;
    std::set<std::size_t> heard;
    std::size_t expected = 0;
    for (const auto &[key, rack] : edgeOwner_) {
        if (!rackDeclaredDead_[rack])
            ++expected;
    }
    for (;;) {
        for (const auto &bytes : tp.poll(role_)) {
            const auto frame = net::decodeFrame(bytes);
            if (!frame) {
                ++stats_.corruptFrames;
                continue;
            }
            if (frame->epoch != epoch) {
                ++stats_.orphanFrames;
                continue;
            }
            if (frame->sender < rackCount_)
                heard.insert(frame->sender);
            if (frame->type == net::MsgType::Metrics) {
                fresh[{frame->metrics.tree,
                       static_cast<topo::NodeId>(
                           frame->metrics.edgeNode)}] =
                    frame->metrics.metrics;
            }
        }
        if (fresh.size() >= expected)
            break;
        const double remaining = gather_deadline - tp.nowMs();
        if (remaining <= 0.0)
            break;
        tp.advanceBy(std::min(remaining, kPollSliceMs));
    }

    // ---- heartbeat liveness: any frame this epoch counts. A worker
    // declared dead here stays dead — its plant lives in the dead
    // process, so unlike the in-process plane there is no adopter to
    // re-home its edge controllers onto (value -1 marks that).
    for (std::size_t r = 0; r < rackCount_; ++r) {
        if (rackDeclaredDead_[r])
            continue;
        if (heard.count(r)) {
            missedHeartbeats_[r] = 0;
        } else if (++missedHeartbeats_[r] >= proto.heartbeatFailAfter) {
            rackDeclaredDead_[r] = true;
            ++stats_.failovers;
            events_.record(static_cast<Seconds>(epoch),
                           core::EventKind::WorkerFailover,
                           "worker" + std::to_string(r), -1.0);
        }
    }

    // ---- assemble per-tree edge metrics with the §4.5 stale cache.
    std::vector<std::map<topo::NodeId, ctrl::NodeMetrics>> tree_metrics(
        system.trees().size());
    for (const auto &[key, rack] : edgeOwner_) {
        const auto [tree, node] = key;
        const auto got = fresh.find(key);
        if (got != fresh.end()) {
            tree_metrics[tree][node] = got->second;
            metricCache_[key] = {got->second, epoch, true};
            continue;
        }
        const std::string subject =
            system.tree(tree).name() + "."
            + system.tree(tree).node(node).name;
        const auto cached = metricCache_.find(key);
        const std::uint32_t age =
            cached != metricCache_.end() && cached->second.valid
                ? epoch - cached->second.epoch
                : 0;
        if (cached != metricCache_.end() && cached->second.valid
            && age <= static_cast<std::uint32_t>(
                   proto.staleAgeCapPeriods)) {
            tree_metrics[tree][node] = cached->second.metrics;
            ++stats_.staleReuses;
            events_.record(static_cast<Seconds>(epoch),
                           core::EventKind::StaleMetricsReused, subject,
                           static_cast<double>(age));
        } else {
            ++stats_.metricsLost;
            events_.record(static_cast<Seconds>(epoch),
                           core::EventKind::MetricsLost, subject,
                           static_cast<double>(age));
        }
    }

    // ---- upper-tree compute + downstream budgets, blind bounded
    // retransmission (racks dedup by the applied set).
    struct PendingDown
    {
        std::size_t rack;
        std::vector<std::uint8_t> frame;
    };
    std::vector<PendingDown> pending;
    for (std::size_t t = 0; t < system.trees().size(); ++t) {
        const auto edge_budgets = room_->iterate(
            t, tree_metrics[t], scenario_.rootBudgets[t]);
        for (const auto &[node, budget] : edge_budgets) {
            const std::size_t rack = edgeOwner_.at({t, node});
            if (rackDeclaredDead_[rack])
                continue; // nobody home to receive it
            net::BudgetMsg msg;
            msg.tree = static_cast<std::uint16_t>(t);
            msg.edgeNode = static_cast<std::uint32_t>(node);
            msg.budget = budget;
            pending.push_back(
                {rack, net::encodeBudget(
                           {net::kRoomSender, epoch, seq_++}, msg)});
        }
    }

    const double budget_start = tp.nowMs();
    const double budget_deadline =
        budget_start + proto.budgetDeadlineMs;
    for (const PendingDown &down : pending) {
        tp.send(role_, static_cast<net::Transport::Endpoint>(down.rack),
                down.frame);
    }
    for (int attempt = 1; attempt < proto.maxAttempts; ++attempt) {
        const double next =
            budget_start + attempt * proto.retryTimeoutMs;
        if (next >= budget_deadline)
            break;
        tp.advanceTo(next);
        for (const PendingDown &down : pending) {
            tp.send(role_,
                    static_cast<net::Transport::Endpoint>(down.rack),
                    down.frame);
            ++stats_.retries;
        }
    }
}

std::vector<Watts>
WorkerRuntime::lastServerBudgets(std::size_t server_id) const
{
    for (const Plant &plant : plants_) {
        if (plant.serverId == server_id)
            return plant.lastBudgets;
    }
    return {};
}

} // namespace capmaestro::rt
