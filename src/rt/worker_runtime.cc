#include "rt/worker_runtime.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "net/wire.hh"
#include "policy/policy.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace capmaestro::rt {

namespace {

/** Stop-flag poll granularity while waiting for a period boundary. */
constexpr std::uint64_t kSleepSliceMs = 25;

/** Receive-poll granularity inside a protocol phase, milliseconds. */
constexpr double kPollSliceMs = 2.0;

/**
 * Lockstep pacing: longest a collect loop waits (transport-clock ms)
 * for frames that may never come. Virtual (instant) on SimTransport;
 * a real bounded sleep on UdpTransport. Generous against loopback
 * latency, short enough that a chaos script with losses still runs in
 * test time.
 */
constexpr double kLockstepWaitMs = 150.0;

/** Hop spans recorded per period before the rest only feed the
 *  histogram — keeps retransmission storms from bloating traces. */
constexpr std::size_t kMaxHopSpansPerPeriod = 256;

/** Completed period traces the /tracez endpoint serves. */
constexpr std::size_t kTracezPeriods = 32;

/** Minimum shadow periods between a join announcement and its commit:
 *  one full broadcast/ack round trip plus one settled period, so the
 *  unit demonstrably holds the clamp before its first real grant. */
constexpr std::uint32_t kShadowPeriodsMin = 2;

/** Unix realtime in fractional milliseconds — the cross-process hop
 *  clock (UdpTransport's nowMs() is per-process-relative). */
double
unixRealMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

const char *
hopKindName(net::MsgType type)
{
    switch (type) {
    case net::MsgType::Metrics:   return "metrics";
    case net::MsgType::Budget:    return "budget";
    case net::MsgType::Summary:   return "summary";
    case net::MsgType::SubBudget: return "sub_budget";
    case net::MsgType::Heartbeat: return "heartbeat";
    default:                      return "other";
    }
}

/** Tier label for hop metrics (0xFF is the 2-level room's marker). */
std::string
tierLabel(std::uint8_t tier)
{
    return tier == 0xFF ? "room" : std::to_string(tier);
}

} // namespace

WorkerRuntime::WorkerRuntime(config::LoadedScenario scenario,
                             config::WorkerPeers peers,
                             std::uint32_t role, std::uint64_t seed)
    : scenario_(std::move(scenario)), peers_(std::move(peers)),
      role_(role)
{
    init(seed);

    net::UdpConfig udp;
    udp.peers = peers_.peers;
    udp.local.push_back(role_);
    ownedTransport_ = std::make_unique<net::UdpTransport>(std::move(udp));
    transport_ = ownedTransport_.get();
}

WorkerRuntime::WorkerRuntime(config::LoadedScenario scenario,
                             config::WorkerPeers peers,
                             std::uint32_t role, std::uint64_t seed,
                             net::Transport &transport, Pacing pacing)
    : scenario_(std::move(scenario)), peers_(std::move(peers)),
      role_(role), pacing_(pacing), transport_(&transport)
{
    init(seed);
}

void
WorkerRuntime::init(std::uint64_t seed)
{
    if (!scenario_.system)
        util::fatal("rt: scenario has no power system");
    plan_ = core::TreePlan::build(*scenario_.system, peers_.aggLevels);
    rackCount_ = plan_.leafWorkers;
    if (role_ >= plan_.workers.size()) {
        util::fatal("rt: role %u out of range (plan has %zu workers)",
                    role_, plan_.workers.size());
    }
    if (peers_.peers.size() != plan_.workers.size()) {
        util::fatal("rt: peer table has %zu endpoints; the worker plan "
                    "needs %zu (%zu leaves + %zu aggregators + root)",
                    peers_.peers.size(), plan_.workers.size(),
                    plan_.leafWorkers,
                    plan_.workers.size() - plan_.leafWorkers - 1);
    }
    if (!isRoom())
        parentEp_ = plan_.workers[role_].parent;
    if (pacing_ == Pacing::Wall) {
        // Lockstep runtimes have no wall-clock schedule: the harness
        // owns the epochs, so the origin/deadline checks do not apply.
        if (peers_.originMs == 0) {
            util::fatal(
                "rt: peers.originMs must be set (shared epoch origin)");
        }
        const auto &proto = scenario_.service.protocol;
        // One gather + one budget window per tier hop: the tier-k
        // receiver's gather closes at start + k x gather, and the leaf
        // budget deadline sits a symmetric cascade later.
        const auto hops = static_cast<double>(plan_.tiers() - 1);
        if (peers_.periodMs
            <= hops * (proto.gatherDeadlineMs + proto.budgetDeadlineMs)) {
            util::fatal("rt: periodMs %.0f must exceed the %u-tier "
                        "gather+budget cascade (%.0f ms)",
                        peers_.periodMs, plan_.tiers(),
                        hops * (proto.gatherDeadlineMs
                                + proto.budgetDeadlineMs));
        }
        if (epochAt(unixNowMs()) > 1000000) {
            util::fatal("rt: peers.originMs is too far in the past; "
                        "regenerate the peer table");
        }
    }

    // Before buildRack moves the server specs into the plants: the
    // floors are read straight from the config so every process agrees
    // bit for bit.
    computeNominalFloors();

    membership_ = membership::MembershipTable::allLive(
        plan_.workers.size());

    if (role_ < rackCount_)
        buildRack(seed);
    else if (isRoom() && plan_.tiers() == 2)
        buildRoom();
    else
        buildAggregator();
}

void
WorkerRuntime::computeNominalFloors()
{
    nominalFloor_ = nominalEdgeFloors(*scenario_.system, scenario_);
}

WorkerRuntime::~WorkerRuntime() = default;

std::string
WorkerRuntime::roleName() const
{
    if (isRoom())
        return "room";
    if (isAggregator())
        return "agg" + std::to_string(role_);
    return "rack" + std::to_string(role_);
}

void
WorkerRuntime::buildRack(std::uint64_t seed)
{
    const auto &system = *scenario_.system;
    const auto partition =
        core::DistributedControlPlane::partitionEdges(system);
    const auto policy = policy::treePolicy(scenario_.service.policy);

    rack_ = std::make_unique<core::RackWorker>(system, policy);
    myEdges_ = partition[role_];
    for (const auto &[tree, node] : myEdges_)
        rack_->addEdge(tree, node);

    std::map<std::size_t, std::map<std::size_t, topo::NodeId>> want;
    want[role_] = myEdges_;
    auto built = buildPlants(scenario_, system, want, seed);
    plants_ = std::move(built[role_]);
}

void
WorkerRuntime::buildAggregator()
{
    agg_ = std::make_unique<AggregatorRole>(
        *scenario_.system, plan_, role_,
        policy::treePolicy(scenario_.service.policy), nominalFloor_,
        scenario_.service.protocol,
        isRoom() ? scenario_.rootBudgets : std::vector<Watts>{});
}

void
WorkerRuntime::buildRoom()
{
    const auto &system = *scenario_.system;
    const auto partition =
        core::DistributedControlPlane::partitionEdges(system);
    std::vector<std::set<topo::NodeId>> edge_nodes(
        system.trees().size());
    for (std::size_t r = 0; r < partition.size(); ++r) {
        for (const auto &[tree, node] : partition[r]) {
            edge_nodes[tree].insert(node);
            edgeOwner_[{tree, node}] = r;
        }
    }
    room_ = std::make_unique<core::RoomWorker>(
        system, std::move(edge_nodes),
        policy::treePolicy(scenario_.service.policy));
    rackHealth_.assign(rackCount_, RackHealth{});
}

std::uint64_t
WorkerRuntime::unixNowMs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::uint32_t
WorkerRuntime::epochAt(std::uint64_t unix_ms) const
{
    if (unix_ms < peers_.originMs)
        return 0;
    return static_cast<std::uint32_t>(
               static_cast<double>(unix_ms - peers_.originMs)
               / peers_.periodMs)
           + 1;
}

bool
WorkerRuntime::sleepUntil(std::uint64_t unix_ms)
{
    for (;;) {
        if (stop_.load(std::memory_order_relaxed))
            return false;
        // Scrapes are answered from the idle slice between period
        // windows — the bulk of a wall-paced daemon's time.
        if (http_.listening())
            http_.poll();
        const std::uint64_t now = unixNowMs();
        if (now >= unix_ms)
            return true;
        const std::uint64_t wait =
            std::min<std::uint64_t>(unix_ms - now, kSleepSliceMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    }
}

std::size_t
WorkerRuntime::runPeriods(std::size_t max_periods)
{
    if (pacing_ != Pacing::Wall) {
        util::fatal("rt: runPeriods() needs Wall pacing; lockstep "
                    "runtimes are driven via step*()");
    }
    std::size_t done = 0;
    while (done < max_periods
           && !stop_.load(std::memory_order_relaxed)) {
        if (reload_.exchange(false, std::memory_order_relaxed)
            && reloadHandler_) {
            reloadHandler_();
        }
        // The next epoch that has not yet begun; its window start is
        // the shared wall-clock boundary every process sleeps to.
        const std::uint32_t epoch = epochAt(unixNowMs()) + 1;
        const std::uint64_t start =
            peers_.originMs
            + static_cast<std::uint64_t>(
                  static_cast<double>(epoch - 1) * peers_.periodMs);
        if (!sleepUntil(start))
            break;
        if (tracer_) {
            // Wall mode owns its period traces (lockstep harnesses
            // drive the tracer themselves). One trace per epoch,
            // stitchable across processes by {epoch, traceId}.
            tracer_->noteSimTime(static_cast<double>(simNow_));
            tracer_->beginPeriod(epoch);
            tracer_->periodStr("role", roleName());
            tracer_->periodNum("epoch", static_cast<double>(epoch));
            tracer_->periodNum("traceId",
                               static_cast<double>(epoch & 0xFFFF));
        }
        if (role_ < rackCount_)
            runRackPeriod(epoch);
        else if (room_)
            runRoomPeriod(epoch);
        else
            runAggregatorPeriod(epoch);
        finishPeriod(epoch);
        if (tracer_)
            tracer_->endPeriod();
        if (http_.listening())
            http_.poll();
        ++done;
    }
    return done;
}

void
WorkerRuntime::finishPeriod(std::uint32_t epoch)
{
    lastEpoch_ = epoch;
    ++stats_.periodsRun;
    mPeriods_.inc();
    hopSpans_ = 0;
}

// ===================================================================
// Observability plane
// ===================================================================

double
WorkerRuntime::hopClockMs() const
{
    return ownedTransport_ ? unixRealMs() : transport_->nowMs();
}

net::FrameMeta
WorkerRuntime::stampMeta(std::uint16_t sender, std::uint32_t epoch)
{
    net::FrameMeta meta(sender, epoch, seq_++);
    meta.wireVersion = wireVersion_;
    if (obs_) {
        net::TraceContext ctx;
        ctx.traceId = static_cast<std::uint16_t>(epoch & 0xFFFF);
        ctx.originTier =
            room_ ? std::uint8_t{0xFF}
                  : static_cast<std::uint8_t>(plan_.workers[role_].tier);
        ctx.sendMs = hopClockMs();
        meta.trace = ctx;
    }
    return meta;
}

void
WorkerRuntime::recordHop(const net::Frame &frame)
{
    if (!obs_ || !frame.trace)
        return;
    const net::TraceContext &ctx = *frame.trace;
    const double latency = std::max(0.0, hopClockMs() - ctx.sendMs);
    const std::pair<std::uint8_t, std::uint8_t> key{
        static_cast<std::uint8_t>(frame.type), ctx.originTier};
    auto hist = hopHist_.find(key);
    if (hist == hopHist_.end() && registry_) {
        hist =
            hopHist_
                .emplace(
                    key,
                    registry_->histogram(
                        "capmaestro_hop_latency_ms", 0.0, 100.0, 64,
                        {{"role", roleName()},
                         {"kind", hopKindName(frame.type)},
                         {"from_tier", tierLabel(ctx.originTier)},
                         {"to_tier",
                          tierLabel(room_
                                        ? std::uint8_t{0xFF}
                                        : static_cast<std::uint8_t>(
                                              plan_.workers[role_]
                                                  .tier))},
                         {"process", "rt"}},
                        "Per-hop frame latency from the sender's "
                        "trace stamp to receipt"))
                .first;
    }
    if (hist != hopHist_.end())
        hist->second.observe(latency);
    if (tracer_ && tracer_->inPeriod()
        && hopSpans_ < kMaxHopSpansPerPeriod) {
        ++hopSpans_;
        const auto span = tracer_->begin("hop");
        tracer_->str(span, "kind", hopKindName(frame.type));
        tracer_->str(span, "from_tier", tierLabel(ctx.originTier));
        tracer_->num(span, "latencyMs", latency);
        tracer_->num(span, "traceId",
                     static_cast<double>(ctx.traceId));
        tracer_->end(span);
    }
}

void
WorkerRuntime::auditDowns(
    std::uint32_t epoch,
    const std::vector<AggregatorRole::DownMsg> &downs)
{
    if (!obs_ || !agg_)
        return;
    std::map<std::size_t, Watts> committed;
    for (const AggregatorRole::DownMsg &down : downs)
        committed[down.msg.tree] += down.msg.budget;
    const auto &reserved = agg_->reservedFloors();
    for (const auto &[tree, top] : agg_->stations()) {
        (void)top;
        Watts granted = 0.0;
        if (agg_->isRoot()) {
            granted = agg_->rootBudgets()[tree];
        } else {
            const auto sub = agg_->receivedBudget(tree);
            if (!sub)
                continue; // no grant arrived: nothing was split
            granted = *sub;
        }
        const Watts floor =
            tree < reserved.size() ? reserved[tree] : 0.0;
        const std::string subject =
            scenario_.system->tree(tree).name() + "@" + roleName();
        if (!auditor_.audit(epoch, subject, granted, committed[tree],
                            floor)) {
            events_.record(static_cast<Seconds>(epoch),
                           core::EventKind::SafetyViolation, subject,
                           committed[tree] + floor - granted);
        }
    }
}

void
WorkerRuntime::reportStationHealth(std::uint32_t epoch)
{
    if (!obs_ || !agg_)
        return;
    // Worst station state per child worker: a child is only as healthy
    // as its most degraded station.
    std::map<std::uint32_t, telemetry::UnitHealth> worst;
    for (const auto &[key, health] : agg_->stationHealth()) {
        const auto owner = agg_->childStations().find(key);
        if (owner == agg_->childStations().end())
            continue;
        telemetry::UnitHealth uh = telemetry::UnitHealth::Live;
        if (health == AggregatorRole::StationHealth::Stale)
            uh = telemetry::UnitHealth::Stale;
        else if (health == AggregatorRole::StationHealth::Lost)
            uh = telemetry::UnitHealth::Lost;
        auto [it, inserted] = worst.emplace(owner->second, uh);
        if (!inserted && static_cast<std::uint8_t>(uh)
                             > static_cast<std::uint8_t>(it->second))
            it->second = uh;
    }
    for (const auto &[child, uh] : worst)
        fleetHealth_.report("w" + std::to_string(child), uh, epoch);
}

std::uint16_t
WorkerRuntime::serveHttp(std::uint16_t port)
{
    http_.handle("/metrics", [this] {
        net::HttpResponse resp;
        resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = registry_ ? registry_->renderPrometheus() : "";
        return resp;
    });
    http_.handle("/healthz", [this] {
        net::HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = util::serializeJson(healthJson(), 0) + "\n";
        return resp;
    });
    http_.handle("/tracez", [this] {
        net::HttpResponse resp;
        resp.contentType = "application/json";
        resp.body =
            (tracer_
                 ? util::serializeJson(
                       tracer_->lastJson(kTracezPeriods), 0)
                 : std::string("[]"))
            + "\n";
        return resp;
    });
    if (!http_.listen(port))
        return 0;
    return http_.port();
}

util::Json
WorkerRuntime::healthJson() const
{
    util::Json::Object obj;
    obj.emplace("ok", util::Json(auditor_.violations() == 0));
    obj.emplace("role", util::Json(roleName()));
    obj.emplace("tier",
                util::Json(room_ ? -1.0
                                 : static_cast<double>(
                                       plan_.workers[role_].tier)));
    obj.emplace("lastEpoch",
                util::Json(static_cast<double>(lastEpoch_)));
    obj.emplace("periods",
                util::Json(static_cast<double>(stats_.periodsRun)));
    util::Json::Object st;
    st.emplace("budgetsApplied",
               util::Json(static_cast<double>(stats_.budgetsApplied)));
    st.emplace("defaultBudgets",
               util::Json(static_cast<double>(stats_.defaultBudgets)));
    st.emplace("staleReuses",
               util::Json(static_cast<double>(stats_.staleReuses)));
    st.emplace("metricsLost",
               util::Json(static_cast<double>(stats_.metricsLost)));
    st.emplace("failovers",
               util::Json(static_cast<double>(stats_.failovers)));
    st.emplace("rehomed",
               util::Json(static_cast<double>(stats_.rehomed)));
    st.emplace("orphanFrames",
               util::Json(static_cast<double>(stats_.orphanFrames)));
    st.emplace("corruptFrames",
               util::Json(static_cast<double>(stats_.corruptFrames)));
    st.emplace("retries",
               util::Json(static_cast<double>(stats_.retries)));
    st.emplace(
        "summariesSent",
        util::Json(static_cast<double>(stats_.summariesSent)));
    st.emplace(
        "subBudgetsApplied",
        util::Json(static_cast<double>(stats_.subBudgetsApplied)));
    obj.emplace("stats", util::Json(std::move(st)));
    obj.emplace("generation",
                util::Json(static_cast<double>(
                    membership_.generation())));
    util::Json::Object mem;
    mem.emplace("generation",
                util::Json(static_cast<double>(
                    membership_.generation())));
    mem.emplace("self",
                util::Json(std::string(membership::unitStateName(
                    membership_.state(
                        static_cast<std::uint16_t>(role_))))));
    mem.emplace("joining",
                util::Json(static_cast<double>(membership_.countOf(
                    membership::UnitState::Joining))));
    mem.emplace("draining",
                util::Json(static_cast<double>(membership_.countOf(
                    membership::UnitState::Draining))));
    mem.emplace("left",
                util::Json(static_cast<double>(membership_.countOf(
                    membership::UnitState::Left))));
    mem.emplace("shadowPeriods",
                util::Json(static_cast<double>(stats_.shadowPeriods)));
    obj.emplace("membership", util::Json(std::move(mem)));
    if (room_ || agg_) {
        obj.emplace("fleet", fleetHealth_.toJson());
        obj.emplace("safety", auditor_.toJson());
    }
    return util::Json(std::move(obj));
}

// ===================================================================
// Rack phases
// ===================================================================

void
WorkerRuntime::rackAdvancePlant(std::uint32_t)
{
    replayedThisPeriod_ = false;

    // One control period of 1 Hz sensing and actuation, then close the
    // controller periods, refresh the edge leaf inputs, and snapshot
    // the recoverable plant state into this period's checkpoint.
    advancePlants(plants_, scenario_.service.controlPeriod, simNow_);
    lastCheckpoint_ = net::CheckpointMsg{};
    lastCheckpoint_.simNow = static_cast<double>(simNow_);
    lastCheckpoint_.rehomeAckEpoch = rehomeAckEpoch_;
    closePlantPeriods(plants_, *scenario_.system, *rack_,
                      lastCheckpoint_);
}

std::vector<std::vector<std::uint8_t>>
WorkerRuntime::buildUpstreamFrames(std::uint32_t epoch)
{
    std::vector<std::vector<std::uint8_t>> up;
    const auto me = static_cast<std::uint16_t>(role_);
    up.push_back(net::encodeHeartbeat(stampMeta(me, epoch)));
    for (const auto &[tree, node] : myEdges_) {
        net::MetricsMsg msg;
        msg.tree = static_cast<std::uint16_t>(tree);
        msg.edgeNode = static_cast<std::uint32_t>(node);
        msg.metrics = rack_->computeMetrics(tree, node);
        up.push_back(net::encodeMetrics(stampMeta(me, epoch), msg));
    }
    lastCheckpoint_.rehomeAckEpoch = rehomeAckEpoch_;
    up.push_back(
        net::encodeCheckpoint(stampMeta(me, epoch), lastCheckpoint_));
    ++stats_.checkpointsSent;
    mCheckpoints_.inc();
    return up;
}

bool
WorkerRuntime::processDownFrame(
    const net::Frame &frame, std::uint32_t epoch,
    std::set<std::pair<std::size_t, topo::NodeId>> &applied)
{
    // The membership plane is epoch-free — the generation is its clock
    // — so snapshots straddling a period boundary still land.
    if (frame.type == net::MsgType::MembershipDelta) {
        adoptMembershipDelta(frame);
        return false;
    }
    if (frame.type == net::MsgType::MembershipAck) {
        ++stats_.orphanFrames; // acks flow to the root, not to racks
        return false;
    }
    if (frame.epoch != epoch) {
        ++stats_.orphanFrames;
        return false;
    }
    if (frame.type == net::MsgType::Rehome) {
        if (frame.sender != net::kRoomSender) {
            ++stats_.orphanFrames;
            return false;
        }
        // The room retransmits the Rehome like any downstream frame;
        // one replay (or decline) per epoch is the whole handshake.
        if (rehomeAckEpoch_ == epoch)
            return true;
        // An intact instance that merely rode out a partition has
        // newer state than the room's checkpoint of it: decline the
        // replay but still ack, so the room stops re-sending. Only a
        // young instance (restarted less than a failure-detection
        // window ago) accepts.
        if (stats_.periodsRun
            >= static_cast<std::size_t>(
                   scenario_.service.protocol.heartbeatFailAfter)) {
            rehomeAckEpoch_ = epoch;
            ++stats_.rehomesDeclined;
            mRehomesDeclined_.inc();
            events_.record(static_cast<Seconds>(epoch),
                           core::EventKind::RehomeDeclined,
                           "worker" + std::to_string(role_),
                           static_cast<double>(epoch));
        } else {
            replayCheckpoint(frame.checkpoint, epoch);
        }
        return true;
    }
    if (frame.type != net::MsgType::Budget) {
        ++stats_.orphanFrames;
        return false;
    }
    const std::size_t tree = frame.budget.tree;
    const auto node = static_cast<topo::NodeId>(frame.budget.edgeNode);
    const auto mine = myEdges_.find(tree);
    if (mine == myEdges_.end() || mine->second != node) {
        ++stats_.orphanFrames;
        return false;
    }
    if (applied.count({tree, node}))
        return false; // duplicate delivery
    rack_->applyBudget(tree, node, frame.budget.budget);
    lastEdgeBudgets_[{tree, node}] = frame.budget.budget;
    applied.insert({tree, node});
    ++stats_.budgetsApplied;
    return false;
}

void
WorkerRuntime::replayCheckpoint(const net::CheckpointMsg &msg,
                                std::uint32_t epoch)
{
    for (const net::CheckpointServer &rec : msg.servers) {
        Plant *plant = nullptr;
        for (Plant &p : plants_) {
            if (p.serverId == rec.serverId) {
                plant = &p;
                break;
            }
        }
        if (!plant)
            continue; // not homed here (partition changed?) — skip

        ctrl::CappingControllerState state;
        state.integratorDc = rec.integratorDc;
        state.integratorPrimed = rec.integratorPrimed;
        state.report.demandEstimate = rec.demandEstimate;
        state.report.avgThrottle = rec.avgThrottle;
        state.report.supplyAvgAc.resize(rec.supplies.size());
        state.report.shares.resize(rec.supplies.size());
        std::size_t working = 0;
        for (std::size_t s = 0; s < rec.supplies.size(); ++s) {
            state.report.supplyAvgAc[s] = rec.supplies[s].avgAc;
            state.report.shares[s] = rec.supplies[s].share;
            if (rec.supplies[s].share > 0.0)
                ++working;
        }
        state.report.workingSupplies = working;
        plant->controller->restoreState(state);

        plant->lastBudgets.resize(plant->server->supplyCount(), 0.0);
        for (std::size_t s = 0;
             s < rec.supplies.size() && s < plant->lastBudgets.size();
             ++s) {
            plant->lastBudgets[s] = rec.supplies[s].lastBudget;
        }
    }
    // Never rewind the plant clock: a replay onto an instance that
    // already ran periods must not repeat workload history.
    simNow_ = std::max(simNow_,
                       static_cast<Seconds>(msg.simNow));
    rehomeAckEpoch_ = epoch;
    replayedThisPeriod_ = true;
    ++stats_.rehomesApplied;
    mRehomesApplied_.inc();
    events_.record(static_cast<Seconds>(epoch),
                   core::EventKind::CheckpointReplayed,
                   "worker" + std::to_string(role_),
                   static_cast<double>(msg.servers.size()));
}

void
WorkerRuntime::finishRackPeriod(
    std::uint32_t epoch,
    const std::set<std::pair<std::size_t, topo::NodeId>> &applied)
{
    const auto &system = *scenario_.system;

    // ---- §4.5 default budgets for edges the room never reached.
    // Clamped to the config-nominal floor: the live defaultBudget is
    // built from measured shares, and sensor noise must not let a
    // unilateral fallback creep above the floor the room reserves for
    // this edge when it stops budgeting us (see roomComputeAndSend).
    for (const auto &[tree, node] : myEdges_) {
        if (applied.count({tree, node}))
            continue;
        const Watts fallback =
            std::min(rack_->defaultBudget(tree, node),
                     nominalFloor_.at({tree, node}));
        rack_->applyBudget(tree, node, fallback);
        lastEdgeBudgets_[{tree, node}] = fallback;
        ++stats_.defaultBudgets;
        mDefaultBudgets_.inc();
        events_.record(static_cast<Seconds>(epoch),
                       core::EventKind::DefaultBudgetApplied,
                       system.tree(tree).name() + "."
                           + system.tree(tree).node(node).name,
                       fallback);
    }

    // ---- post-replay / shadow clamp: until the room trusts fresh
    // metrics from this instance again (replay), or while this worker
    // is not a committed member (Joining/Draining shadow periods),
    // ride the conservative Pcap_min floor even if a stray budget
    // frame slipped through. A worker the root committed *out*
    // (Left) applies zero: the ack it sends for that snapshot is its
    // promise that no watts flow from this period on, which is what
    // lets the root release the reserved floor.
    const auto selfState =
        membership_.state(static_cast<std::uint16_t>(role_));
    const bool shadow = selfState != membership::UnitState::Live;
    if (replayedThisPeriod_ || shadow) {
        const bool left = selfState == membership::UnitState::Left;
        for (const auto &[tree, node] : myEdges_) {
            const Watts floor =
                left ? 0.0
                     : std::min(rack_->defaultBudget(tree, node),
                                nominalFloor_.at({tree, node}));
            const auto cur = lastEdgeBudgets_.find({tree, node});
            const Watts clamped =
                cur != lastEdgeBudgets_.end()
                    ? std::min(cur->second, floor)
                    : floor;
            rack_->applyBudget(tree, node, clamped);
            lastEdgeBudgets_[{tree, node}] = clamped;
        }
        if (shadow) {
            ++stats_.shadowPeriods;
            mShadowPeriods_.inc();
        } else {
            ++stats_.clampedPeriods;
            mClampedPeriods_.inc();
        }
    }

    // ---- per-server caps through the PI loops.
    applyPlantBudgets(plants_, *rack_);
}

void
WorkerRuntime::runRackPeriod(std::uint32_t epoch)
{
    const auto &proto = scenario_.service.protocol;
    net::Transport &tp = *transport_;

    rackAdvancePlant(epoch);

    // ---- upstream: heartbeat + one metrics frame per edge + the
    // plant-state checkpoint, with blind bounded retransmission (no
    // ACK channel exists; the receiver dedups by map overwrite). In a
    // deep plan the retransmit window runs to the parent tier's gather
    // close, and the budget deadline sits at the end of the full
    // down-cascade; with 2 tiers both degenerate to the flat schedule.
    const double start = tp.nowMs();
    const auto tiers = static_cast<double>(plan_.tiers());
    const double gather_deadline =
        start
        + static_cast<double>(plan_.workers[parentEp_].tier)
              * proto.gatherDeadlineMs;
    const double budget_deadline =
        start
        + (tiers - 1.0)
              * (proto.gatherDeadlineMs + proto.budgetDeadlineMs);

    const auto up = buildUpstreamFrames(epoch);
    for (const auto &frame : up)
        tp.send(role_, parentEp_, frame);
    for (int attempt = 1; attempt < proto.maxAttempts; ++attempt) {
        const double next = start + attempt * proto.retryTimeoutMs;
        if (next >= gather_deadline)
            break;
        tp.advanceTo(next);
        for (const auto &frame : up) {
            tp.send(role_, parentEp_, frame);
            ++stats_.retries;
        }
    }

    // ---- downstream: collect budgets (or a Rehome) until the
    // deadline; a budget's arrival is the implicit end of this edge's
    // exchange.
    std::set<std::pair<std::size_t, topo::NodeId>> applied;
    for (;;) {
        for (const auto &bytes : tp.poll(role_)) {
            const auto frame = net::decodeFrame(bytes);
            if (!frame) {
                ++stats_.corruptFrames;
                continue;
            }
            recordHop(*frame);
            processDownFrame(*frame, epoch, applied);
        }
        if (applied.size() == myEdges_.size())
            break;
        const double remaining = budget_deadline - tp.nowMs();
        if (remaining <= 0.0)
            break;
        tp.advanceBy(std::min(remaining, kPollSliceMs));
    }

    finishRackPeriod(epoch, applied);
}

void
WorkerRuntime::stepUpstream(std::uint32_t epoch)
{
    if (pacing_ != Pacing::Lockstep || role_ >= rackCount_)
        util::fatal("rt: stepUpstream() needs a lockstep rack runtime");
    rackAdvancePlant(epoch);
    // Single-shot sends: lockstep has no deadline schedule to pace
    // retransmissions against, and a chaos harness wants injected loss
    // to actually cost a frame.
    for (const auto &frame : buildUpstreamFrames(epoch))
        transport_->send(role_, parentEp_, frame);
}

void
WorkerRuntime::stepDownstream(std::uint32_t epoch)
{
    if (pacing_ != Pacing::Lockstep || role_ >= rackCount_)
        util::fatal("rt: stepDownstream() needs a lockstep rack runtime");
    net::Transport &tp = *transport_;
    std::set<std::pair<std::size_t, topo::NodeId>> applied;
    const double start = tp.nowMs();
    bool rehomed = false;
    for (;;) {
        for (const auto &bytes : tp.poll(role_)) {
            const auto frame = net::decodeFrame(bytes);
            if (!frame) {
                ++stats_.corruptFrames;
                continue;
            }
            recordHop(*frame);
            rehomed |= processDownFrame(*frame, epoch, applied);
        }
        // A Rehome ends the period: the room withholds budgets from a
        // re-homing rack, so there is nothing further to wait for.
        if (rehomed || applied.size() == myEdges_.size())
            break;
        if (tp.nowMs() - start >= kLockstepWaitMs)
            break;
        tp.advanceBy(kPollSliceMs);
    }
    finishRackPeriod(epoch, applied);
    finishPeriod(epoch);
}

// ===================================================================
// Room phases
// ===================================================================

void
WorkerRuntime::noteRackFrame(std::size_t rack, std::uint32_t seq,
                             std::uint32_t epoch)
{
    heard_.insert(rack);
    RackHealth &h = rackHealth_[rack];
    const auto ms = membership_.state(static_cast<std::uint16_t>(rack));
    if (ms == membership::UnitState::Joining
        || ms == membership::UnitState::Left) {
        // Shadow traffic: seen, but outside the liveness contract.
        // Drop the sequence baseline so the commit starts a fresh
        // instance view instead of mis-reading the joiner's early
        // frames as a restart.
        h.seqSeen = false;
        return;
    }
    if (!h.seqSeen) {
        h.seqSeen = true;
        h.maxSeq = seq;
        return;
    }
    // A restarted process begins again at sequence 0. A regression no
    // larger than one upstream batch (heartbeat + one metrics frame
    // per edge + checkpoint) is normal: the rack's blind bounded
    // retransmission re-sends the whole batch with the *same*
    // sequence numbers, and reordered duplicates from an earlier send
    // sit at most a batch below the newest frame. Only a regression
    // deeper than the batch means a new instance — caught even when
    // the restart fit inside one epoch window and no heartbeat was
    // ever missed. (A restart after a single period is below the
    // detection threshold; it is picked up one period later once the
    // old instance's higher sequence numbers dominate.)
    if (seq + rackBatchSize(rack) < h.maxSeq) {
        if (h.state == RackState::Live)
            beginRehoming(rack, epoch);
        h.maxSeq = seq;
        return;
    }
    h.maxSeq = std::max(h.maxSeq, seq);
}

std::uint32_t
WorkerRuntime::rackBatchSize(std::size_t rack) const
{
    std::uint32_t edges = 0;
    for (const auto &[key, owner] : edgeOwner_) {
        if (owner == rack)
            ++edges;
    }
    return edges + 2;
}

void
WorkerRuntime::beginRehoming(std::size_t rack, std::uint32_t epoch)
{
    RackHealth &h = rackHealth_[rack];
    h.state = RackState::Rehoming;
    h.missed = 0;
    h.rehomeEpoch = 0;
    // Acks recorded so far came from the dead instance; the new one
    // must ack a Rehome sent this round.
    h.lastAckEpoch = 0;
    ++stats_.restartsDetected;
    mRestartsDetected_.inc();
    events_.record(static_cast<Seconds>(epoch),
                   core::EventKind::WorkerRestartDetected,
                   "worker" + std::to_string(rack),
                   static_cast<double>(epoch));
}

std::size_t
WorkerRuntime::deadOrRehomingCount() const
{
    std::size_t n = 0;
    for (const RackHealth &h : rackHealth_) {
        if (h.state != RackState::Live)
            ++n;
    }
    return n;
}

void
WorkerRuntime::roomGather(std::uint32_t epoch, bool paced)
{
    const auto &proto = scenario_.service.protocol;
    net::Transport &tp = *transport_;
    heard_.clear();
    fresh_.clear();

    // Dead racks send nothing; neither do racks committed out of the
    // membership (Left). Everyone else (including re-homing racks,
    // whose plants run on default budgets, and Joining/Draining racks
    // in their shadow periods) is expected.
    std::size_t expected = 0;
    for (const auto &[key, rack] : edgeOwner_) {
        if (rackHealth_[rack].state == RackState::Dead)
            continue;
        if (membership_.state(static_cast<std::uint16_t>(rack))
            == membership::UnitState::Left)
            continue;
        ++expected;
    }

    const double start = tp.nowMs();
    const double gather_deadline = start + proto.gatherDeadlineMs;
    for (;;) {
        for (const auto &bytes : tp.poll(role_)) {
            const auto frame = net::decodeFrame(bytes);
            if (!frame) {
                ++stats_.corruptFrames;
                continue;
            }
            // Membership frames ride ahead of the epoch check: the
            // generation, not the epoch, orders that plane.
            if (frame->type == net::MsgType::MembershipAck) {
                noteMembershipAck(*frame);
                continue;
            }
            if (frame->type == net::MsgType::MembershipDelta) {
                ++stats_.orphanFrames; // the root owns the table
                continue;
            }
            if (frame->epoch != epoch) {
                ++stats_.orphanFrames;
                continue;
            }
            recordHop(*frame);
            if (frame->sender < rackCount_)
                noteRackFrame(frame->sender, frame->seq, epoch);
            if (frame->type == net::MsgType::Metrics) {
                fresh_[{frame->metrics.tree,
                        static_cast<topo::NodeId>(
                            frame->metrics.edgeNode)}] =
                    frame->metrics.metrics;
            } else if (frame->type == net::MsgType::Checkpoint
                       && frame->sender < rackCount_) {
                RackHealth &h = rackHealth_[frame->sender];
                h.lastAckEpoch = std::max(
                    h.lastAckEpoch, frame->checkpoint.rehomeAckEpoch);
                checkpoints_[frame->sender] = frame->checkpoint;
                ++stats_.checkpointsStored;
                persistCheckpoint(frame->sender);
            }
        }
        if (fresh_.size() >= expected)
            break;
        const double now = tp.nowMs();
        if (paced) {
            if (now >= gather_deadline)
                break;
            tp.advanceBy(std::min(gather_deadline - now, kPollSliceMs));
        } else {
            if (now - start >= kLockstepWaitMs)
                break;
            tp.advanceBy(kPollSliceMs);
        }
    }
}

void
WorkerRuntime::roomLiveness(std::uint32_t epoch)
{
    const auto &proto = scenario_.service.protocol;
    for (std::size_t r = 0; r < rackCount_; ++r) {
        RackHealth &h = rackHealth_[r];
        const auto ms =
            membership_.state(static_cast<std::uint16_t>(r));
        if (ms == membership::UnitState::Joining
            || ms == membership::UnitState::Left) {
            // Held in reset: a joiner is not yet a liveness subject
            // (its silence must not burn failover credit before the
            // commit) and a Left unit never will be again.
            h.missed = 0;
            continue;
        }
        const bool heard = heard_.count(r) != 0;
        switch (h.state) {
        case RackState::Live:
            if (heard) {
                h.missed = 0;
            } else if (++h.missed >= proto.heartbeatFailAfter) {
                h.state = RackState::Dead;
                ++stats_.failovers;
                mFailovers_.inc();
                events_.record(static_cast<Seconds>(epoch),
                               core::EventKind::WorkerFailover,
                               "worker" + std::to_string(r), -1.0);
            }
            break;
        case RackState::Dead:
            // Any frame means a (restarted) instance is back.
            if (heard)
                beginRehoming(r, epoch);
            break;
        case RackState::Rehoming:
            if (h.rehomeEpoch > 0
                && h.lastAckEpoch >= h.rehomeEpoch) {
                h.state = RackState::Live;
                h.missed = 0;
                h.rehomeEpoch = 0;
                ++stats_.rehomed;
                mRehomed_.inc();
                events_.record(static_cast<Seconds>(epoch),
                               core::EventKind::WorkerRehomed,
                               "worker" + std::to_string(r),
                               static_cast<double>(epoch));
            } else if (!heard) {
                if (++h.missed >= proto.heartbeatFailAfter) {
                    h.state = RackState::Dead;
                    ++stats_.failovers;
                    mFailovers_.inc();
                    events_.record(static_cast<Seconds>(epoch),
                                   core::EventKind::WorkerFailover,
                                   "worker" + std::to_string(r), -1.0);
                }
            } else {
                h.missed = 0;
            }
            break;
        }
    }
    mDeadRacks_.set(static_cast<double>(deadOrRehomingCount()));

    // ---- fleet rollup: the liveness ladder as operational health.
    // A Live rack that went unheard this period is riding the stale
    // cache — visibly degraded even before the failover threshold.
    if (obs_) {
        for (std::size_t r = 0; r < rackCount_; ++r) {
            const auto ms =
                membership_.state(static_cast<std::uint16_t>(r));
            if (ms == membership::UnitState::Joining
                || ms == membership::UnitState::Left)
                continue; // not a liveness subject; see above
            telemetry::UnitHealth uh = telemetry::UnitHealth::Live;
            switch (rackHealth_[r].state) {
            case RackState::Live:
                uh = heard_.count(r) ? telemetry::UnitHealth::Live
                                     : telemetry::UnitHealth::Stale;
                break;
            case RackState::Dead:
                uh = telemetry::UnitHealth::Lost;
                break;
            case RackState::Rehoming:
                uh = telemetry::UnitHealth::Rehoming;
                break;
            }
            fleetHealth_.report("rack" + std::to_string(r), uh, epoch);
        }
    }
}

void
WorkerRuntime::roomComputeAndSend(std::uint32_t epoch, bool paced)
{
    const auto &system = *scenario_.system;
    const auto &proto = scenario_.service.protocol;
    net::Transport &tp = *transport_;

    // ---- assemble per-tree edge metrics with the §4.5 stale cache.
    // Fresh metrics are trusted only from racks the room considers
    // Live: a reincarnated instance's fresh-plant numbers would poison
    // the allocation, and its liveness must not be double-counted as
    // both the dead instance (stale) and the new one (fresh) within
    // the same epoch window.
    // A non-Live rack's edges are excluded from the allocation
    // entirely (their nominal floor is reserved out of the tree budget
    // below instead), but they still ride the stale -> lost event
    // accounting so the degradation is visible in the audit trail.
    std::vector<std::map<topo::NodeId, ctrl::NodeMetrics>> tree_metrics(
        system.trees().size());
    std::vector<Watts> reserved(system.trees().size(), 0.0);
    for (const auto &[key, rack] : edgeOwner_) {
        const auto [tree, node] = key;
        // A rack outside the committed membership (Joining, Draining,
        // or Left) is excluded from allocation *by design*, not by
        // degradation: no stale/lost events, just the conservative
        // floor reservation that covers its unilateral clamp — unless
        // the unit acked its Left commit (or was never deployed), in
        // which case no watts flow there and nothing is reserved.
        if (!membership_.isLive(static_cast<std::uint16_t>(rack))) {
            if (!membershipFloorReleased(
                    static_cast<std::uint16_t>(rack)))
                reserved[tree] += nominalFloor_.at(key);
            continue;
        }
        const bool trusted =
            rackHealth_[rack].state == RackState::Live;
        const auto got = fresh_.find(key);
        if (got != fresh_.end() && trusted) {
            tree_metrics[tree][node] = got->second;
            metricCache_[key] = {got->second, epoch, true};
            continue;
        }
        const std::string subject =
            system.tree(tree).name() + "."
            + system.tree(tree).node(node).name;
        const auto cached = metricCache_.find(key);
        const std::uint32_t age =
            cached != metricCache_.end() && cached->second.valid
                ? epoch - cached->second.epoch
                : 0;
        const bool stale_ok =
            cached != metricCache_.end() && cached->second.valid
            && age <= static_cast<std::uint32_t>(
                   proto.staleAgeCapPeriods);
        if (stale_ok) {
            if (trusted)
                tree_metrics[tree][node] = cached->second.metrics;
            ++stats_.staleReuses;
            events_.record(static_cast<Seconds>(epoch),
                           core::EventKind::StaleMetricsReused, subject,
                           static_cast<double>(age));
        } else {
            ++stats_.metricsLost;
            events_.record(static_cast<Seconds>(epoch),
                           core::EventKind::MetricsLost, subject,
                           static_cast<double>(age));
        }
        // No allocation will be computed for this edge — either its
        // rack is untrusted (dead, partitioned, or replaying) or even
        // the stale cache ran dry. The rack rides its unilateral
        // Pcap_min fallback in both cases, so its nominal floor comes
        // out of the tree budget before the Live edges divide it.
        if (!trusted || !stale_ok)
            reserved[tree] += nominalFloor_.at(key);
    }

    // ---- upper-tree compute + downstream budgets, blind bounded
    // retransmission (racks dedup by the applied set). Dead and
    // re-homing racks get no budgets: their edges ride the Pcap_min
    // defaults until the room trusts their metrics again.
    struct PendingDown
    {
        std::size_t rack;
        std::vector<std::uint8_t> frame;
    };
    std::vector<PendingDown> pending;
    std::vector<Watts> committed(system.trees().size(), 0.0);
    for (std::size_t t = 0; t < system.trees().size(); ++t) {
        // Reserve the nominal Pcap_min floor of every edge the room is
        // not budgeting this period: that rack may be riding exactly
        // that fallback right now (killed-but-enforcing, partitioned,
        // or replaying a checkpoint), and the sum of its unilateral
        // floor plus what we hand the Live edges must never exceed the
        // tree's supply budget.
        const Watts usable = std::max(
            0.0, scenario_.rootBudgets[t] - reserved[t]);
        const auto edge_budgets =
            room_->iterate(t, tree_metrics[t], usable);
        for (const auto &[node, budget] : edge_budgets) {
            const std::size_t rack = edgeOwner_.at({t, node});
            if (rackHealth_[rack].state != RackState::Live
                || !membership_.isLive(
                       static_cast<std::uint16_t>(rack)))
                continue;
            net::BudgetMsg msg;
            msg.tree = static_cast<std::uint16_t>(t);
            msg.edgeNode = static_cast<std::uint32_t>(node);
            msg.budget = budget;
            committed[t] += budget;
            pending.push_back(
                {rack, net::encodeBudget(
                           stampMeta(net::kRoomSender, epoch), msg)});
        }
    }

    // ---- online §4.5 audit: what flowed down plus the reserved
    // floors must never exceed the tree's supply budget. The allocator
    // enforces this by construction; the auditor re-checks the
    // committed numbers so a bookkeeping regression surfaces as a
    // counter, not a breaker overdraw.
    if (obs_) {
        for (std::size_t t = 0; t < system.trees().size(); ++t) {
            const std::string subject = system.tree(t).name() + "@room";
            if (!auditor_.audit(epoch, subject,
                                scenario_.rootBudgets[t], committed[t],
                                reserved[t])) {
                events_.record(static_cast<Seconds>(epoch),
                               core::EventKind::SafetyViolation,
                               subject,
                               committed[t] + reserved[t]
                                   - scenario_.rootBudgets[t]);
            }
        }
    }

    // ---- Rehome frames for re-homing racks heard this epoch: replay
    // the stored checkpoint into the new instance. An empty checkpoint
    // (none ever stored) still completes the handshake — the rack
    // simply keeps its fresh plant.
    for (std::size_t r = 0; r < rackCount_; ++r) {
        RackHealth &h = rackHealth_[r];
        if (h.state != RackState::Rehoming || !heard_.count(r))
            continue;
        if (!membership_.isLive(static_cast<std::uint16_t>(r)))
            continue; // shadow units get no replay until committed
        const auto stored = checkpoints_.find(r);
        const net::CheckpointMsg msg = stored != checkpoints_.end()
                                           ? stored->second
                                           : net::CheckpointMsg{};
        pending.push_back(
            {r, net::encodeRehome(stampMeta(net::kRoomSender, epoch),
                                  msg)});
        if (h.rehomeEpoch == 0)
            h.rehomeEpoch = epoch;
        ++stats_.rehomesSent;
        mRehomesSent_.inc();
    }

    // ---- membership snapshots ride the same down window, single-shot
    // per period (ack-gated: a lost broadcast is repaired next period).
    broadcastMembership(epoch);

    const double budget_start = tp.nowMs();
    const double budget_deadline =
        budget_start + proto.budgetDeadlineMs;
    for (const PendingDown &down : pending) {
        tp.send(role_, static_cast<net::Transport::Endpoint>(down.rack),
                down.frame);
    }
    if (!paced)
        return;
    for (int attempt = 1; attempt < proto.maxAttempts; ++attempt) {
        const double next =
            budget_start + attempt * proto.retryTimeoutMs;
        if (next >= budget_deadline)
            break;
        tp.advanceTo(next);
        for (const PendingDown &down : pending) {
            tp.send(role_,
                    static_cast<net::Transport::Endpoint>(down.rack),
                    down.frame);
            ++stats_.retries;
        }
    }
}

void
WorkerRuntime::runRoomPeriod(std::uint32_t epoch)
{
    roomGather(epoch, /*paced=*/true);
    roomLiveness(epoch);
    membershipTick(epoch);
    roomComputeAndSend(epoch, /*paced=*/true);
}

void
WorkerRuntime::stepRoom(std::uint32_t epoch)
{
    if (pacing_ != Pacing::Lockstep || !isRoom())
        util::fatal("rt: stepRoom() needs the lockstep room runtime");
    if (agg_) {
        // Deep root: one step covers both halves — by the lockstep
        // driving order every aggregator below has already stepped up,
        // and will step down after.
        net::Transport &tp = *transport_;
        const auto span = tracer_ ? tracer_->begin("rt.room")
                                  : telemetry::PeriodTracer::kNoSpan;
        agg_->beginEpoch(epoch);
        const double start = tp.nowMs();
        for (;;) {
            aggDrainOnce(/*down_phase=*/false);
            if (agg_->upComplete())
                break;
            if (tp.nowMs() - start >= kLockstepWaitMs)
                break;
            tp.advanceBy(kPollSliceMs);
        }
        agg_->closeGather(stats_, events_);
        reportStationHealth(epoch);
        membershipTick(epoch);
        for (const auto &[child, frame] :
             encodeDownFrames(epoch, agg_->computeDown(stats_))) {
            tp.send(role_, child, frame);
        }
        broadcastMembership(epoch);
        if (tracer_) {
            tracer_->num(span, "epoch", static_cast<double>(epoch));
            tracer_->end(span);
        }
        finishPeriod(epoch);
        return;
    }
    const auto span = tracer_ ? tracer_->begin("rt.room")
                              : telemetry::PeriodTracer::kNoSpan;
    roomGather(epoch, /*paced=*/false);
    roomLiveness(epoch);
    membershipTick(epoch);
    roomComputeAndSend(epoch, /*paced=*/false);
    if (tracer_) {
        tracer_->num(span, "epoch", static_cast<double>(epoch));
        tracer_->num(span, "freshEdges",
                     static_cast<double>(fresh_.size()));
        tracer_->num(span, "degradedRacks",
                     static_cast<double>(deadOrRehomingCount()));
        std::string states;
        for (const RackHealth &h : rackHealth_) {
            states += h.state == RackState::Live
                          ? 'L'
                          : (h.state == RackState::Dead ? 'D' : 'R');
        }
        tracer_->str(span, "rackStates", std::move(states));
        tracer_->end(span);
    }
    finishPeriod(epoch);
}

// ===================================================================
// Aggregator phases (deep plans)
// ===================================================================

void
WorkerRuntime::aggDrainOnce(bool down_phase)
{
    const std::uint16_t parent_sender =
        parentEp_ == plan_.rootEndpoint()
            ? net::kRoomSender
            : static_cast<std::uint16_t>(parentEp_);
    for (const auto &bytes : transport_->poll(role_)) {
        const auto frame = net::decodeFrame(bytes);
        if (!frame) {
            ++stats_.corruptFrames;
            continue;
        }
        recordHop(*frame);
        // Membership frames never reach the aggregator state machine:
        // the replica plane is epoch-free and root-addressed.
        if (frame->type == net::MsgType::MembershipDelta) {
            adoptMembershipDelta(*frame);
            continue;
        }
        if (frame->type == net::MsgType::MembershipAck) {
            noteMembershipAck(*frame);
            continue;
        }
        // Late child retransmissions during the down phase are still
        // absorbed (and deduped) by the gather side rather than counted
        // as orphans; the boundary for this epoch is already closed.
        if (down_phase && frame->type == net::MsgType::SubBudget)
            agg_->noteDownFrame(*frame, parent_sender, stats_);
        else
            agg_->noteUpFrame(*frame, stats_);
    }
}

std::vector<std::vector<std::uint8_t>>
WorkerRuntime::encodeUpFrames(
    std::uint32_t epoch, const std::vector<net::MetricsMsg> &summaries)
{
    std::vector<std::vector<std::uint8_t>> up;
    const auto me = static_cast<std::uint16_t>(role_);
    up.push_back(net::encodeHeartbeat(stampMeta(me, epoch)));
    for (const auto &msg : summaries) {
        up.push_back(net::encodeSummary(stampMeta(me, epoch), msg));
        ++stats_.summariesSent;
    }
    return up;
}

std::vector<std::pair<net::Transport::Endpoint, std::vector<std::uint8_t>>>
WorkerRuntime::encodeDownFrames(
    std::uint32_t epoch,
    const std::vector<AggregatorRole::DownMsg> &downs)
{
    const std::uint16_t sender =
        isRoom() ? net::kRoomSender
                 : static_cast<std::uint16_t>(role_);
    auditDowns(epoch, downs);
    std::vector<
        std::pair<net::Transport::Endpoint, std::vector<std::uint8_t>>>
        out;
    for (const AggregatorRole::DownMsg &down : downs) {
        auto bytes =
            down.leafChild
                ? net::encodeBudget(stampMeta(sender, epoch), down.msg)
                : net::encodeSubBudget(stampMeta(sender, epoch),
                                       down.msg);
        out.emplace_back(
            static_cast<net::Transport::Endpoint>(down.child),
            std::move(bytes));
    }
    return out;
}

void
WorkerRuntime::runAggregatorPeriod(std::uint32_t epoch)
{
    const auto &proto = scenario_.service.protocol;
    net::Transport &tp = *transport_;
    const double start = tp.nowMs();
    const auto tiers = static_cast<double>(plan_.tiers());
    const auto my_tier =
        static_cast<double>(plan_.workers[role_].tier);
    // Tier-staggered §4.5 schedule: the tier-k receiver's gather
    // closes at start + k x gather; SubBudgets cascade back down one
    // budget window per hop after every gather has closed. With two
    // tiers this is exactly the flat room schedule.
    const double gather_close =
        start + my_tier * proto.gatherDeadlineMs;
    const double gather_all_end =
        start + (tiers - 1.0) * proto.gatherDeadlineMs;

    agg_->beginEpoch(epoch);
    for (;;) {
        aggDrainOnce(/*down_phase=*/false);
        if (agg_->upComplete())
            break;
        const double remaining = gather_close - tp.nowMs();
        if (remaining <= 0.0)
            break;
        tp.advanceBy(std::min(remaining, kPollSliceMs));
    }
    const auto summaries = agg_->closeGather(stats_, events_);
    reportStationHealth(epoch);
    if (isRoom())
        membershipTick(epoch);

    if (!isRoom()) {
        // ---- forward this subtree's summaries, blind bounded
        // retransmission until the parent's gather closes.
        const double parent_close =
            start
            + static_cast<double>(plan_.workers[parentEp_].tier)
                  * proto.gatherDeadlineMs;
        const auto up = encodeUpFrames(epoch, summaries);
        const double sent_at = tp.nowMs();
        for (const auto &frame : up)
            tp.send(role_, parentEp_, frame);
        for (int attempt = 1; attempt < proto.maxAttempts; ++attempt) {
            const double next = sent_at + attempt * proto.retryTimeoutMs;
            if (next >= parent_close)
                break;
            tp.advanceTo(next);
            for (const auto &frame : up) {
                tp.send(role_, parentEp_, frame);
                ++stats_.retries;
            }
        }

        // ---- collect SubBudgets until this tier's down deadline.
        const double down_close =
            gather_all_end
            + (tiers - 1.0 - my_tier) * proto.budgetDeadlineMs;
        for (;;) {
            aggDrainOnce(/*down_phase=*/true);
            if (agg_->downComplete())
                break;
            const double remaining = down_close - tp.nowMs();
            if (remaining <= 0.0)
                break;
            tp.advanceBy(std::min(remaining, kPollSliceMs));
        }
    }

    // ---- split down, blind bounded retransmission until the direct
    // children's own down deadline (their tier is ours minus one).
    const auto downs =
        encodeDownFrames(epoch, agg_->computeDown(stats_));
    const double child_close =
        gather_all_end + (tiers - my_tier) * proto.budgetDeadlineMs;
    const double down_start = tp.nowMs();
    if (isRoom())
        broadcastMembership(epoch);
    for (const auto &[child, frame] : downs)
        tp.send(role_, child, frame);
    for (int attempt = 1; attempt < proto.maxAttempts; ++attempt) {
        const double next = down_start + attempt * proto.retryTimeoutMs;
        if (next >= child_close)
            break;
        tp.advanceTo(next);
        for (const auto &[child, frame] : downs) {
            tp.send(role_, child, frame);
            ++stats_.retries;
        }
    }
}

void
WorkerRuntime::stepAggregatorUp(std::uint32_t epoch)
{
    if (pacing_ != Pacing::Lockstep || !isAggregator()) {
        util::fatal(
            "rt: stepAggregatorUp() needs a lockstep aggregator");
    }
    net::Transport &tp = *transport_;
    agg_->beginEpoch(epoch);
    const double start = tp.nowMs();
    for (;;) {
        aggDrainOnce(/*down_phase=*/false);
        if (agg_->upComplete())
            break;
        if (tp.nowMs() - start >= kLockstepWaitMs)
            break;
        tp.advanceBy(kPollSliceMs);
    }
    // Single-shot sends, mirroring stepUpstream(): injected loss in a
    // chaos script must actually cost the frame.
    for (const auto &frame :
         encodeUpFrames(epoch, agg_->closeGather(stats_, events_)))
        tp.send(role_, parentEp_, frame);
    reportStationHealth(epoch);
}

void
WorkerRuntime::stepAggregatorDown(std::uint32_t epoch)
{
    if (pacing_ != Pacing::Lockstep || !isAggregator()) {
        util::fatal(
            "rt: stepAggregatorDown() needs a lockstep aggregator");
    }
    net::Transport &tp = *transport_;
    const double start = tp.nowMs();
    for (;;) {
        aggDrainOnce(/*down_phase=*/true);
        if (agg_->downComplete())
            break;
        if (tp.nowMs() - start >= kLockstepWaitMs)
            break;
        tp.advanceBy(kPollSliceMs);
    }
    for (const auto &[child, frame] :
         encodeDownFrames(epoch, agg_->computeDown(stats_)))
        tp.send(role_, child, frame);
    finishPeriod(epoch);
}

// ===================================================================
// Membership / elasticity plane
// ===================================================================

void
WorkerRuntime::setWireVersion(std::uint8_t version)
{
    if (version != net::kWireVersion
        && version != net::kWireCompatVersion) {
        util::fatal("rt: unsupported wire version %u",
                    static_cast<unsigned>(version));
    }
    wireVersion_ = version;
}

bool
WorkerRuntime::membershipBeginJoin(std::uint32_t endpoint)
{
    if (!isRoom())
        util::fatal("rt: membershipBeginJoin() needs the root runtime");
    if (endpoint >= plan_.workers.size() || endpoint == role_)
        return false;
    const auto ep = static_cast<std::uint16_t>(endpoint);
    if (!membership_.beginJoin(ep))
        return false;
    // Acks recorded so far belong to a previous incarnation of the
    // slot; the joiner must ack its own announcement.
    memberAckGen_.erase(ep);
    joinAnnounceEpoch_[ep] = lastEpoch_;
    if (endpoint < rackHealth_.size())
        rackHealth_[endpoint] = RackHealth{};
    events_.record(static_cast<Seconds>(lastEpoch_),
                   core::EventKind::MembershipJoinBegan,
                   "worker" + std::to_string(endpoint),
                   static_cast<double>(membership_.generation()));
    return true;
}

bool
WorkerRuntime::membershipBeginDrain(std::uint32_t endpoint)
{
    if (!isRoom())
        util::fatal("rt: membershipBeginDrain() needs the root runtime");
    if (endpoint >= plan_.workers.size() || endpoint == role_)
        return false;
    if (!membership_.beginDrain(static_cast<std::uint16_t>(endpoint)))
        return false;
    events_.record(static_cast<Seconds>(lastEpoch_),
                   core::EventKind::MembershipDrainBegan,
                   "worker" + std::to_string(endpoint),
                   static_cast<double>(membership_.generation()));
    return true;
}

void
WorkerRuntime::membershipMarkAbsent(std::uint32_t endpoint)
{
    if (!isRoom())
        util::fatal("rt: membershipMarkAbsent() needs the root runtime");
    if (stats_.periodsRun > 0)
        util::fatal("rt: membershipMarkAbsent() is pre-run "
                    "configuration; use membershipBeginDrain() online");
    if (endpoint >= plan_.workers.size() || endpoint == role_)
        util::fatal("rt: cannot mark endpoint %u absent", endpoint);
    membership_.markAbsent(static_cast<std::uint16_t>(endpoint));
}

void
WorkerRuntime::beginShadow()
{
    if (isRoom())
        util::fatal("rt: beginShadow() is for non-root workers");
    if (stats_.periodsRun > 0)
        util::fatal("rt: beginShadow() must precede the first period");
    // Empty replica: this worker treats itself as a non-member (the
    // Pcap_min clamp every period) until a root broadcast shows it
    // Live. Any snapshot at or ahead of generation 1 is adopted.
    membership_ = membership::MembershipTable();
}

bool
WorkerRuntime::membershipLeft() const
{
    const auto me = static_cast<std::uint16_t>(role_);
    return !isRoom()
           && membership_.state(me) == membership::UnitState::Left
           && membership_.sinceGeneration(me) > 0;
}

bool
WorkerRuntime::membershipFloorReleased(std::uint16_t endpoint) const
{
    if (membership_.state(endpoint) != membership::UnitState::Left)
        return false;
    const std::uint32_t since = membership_.sinceGeneration(endpoint);
    if (since == 0)
        return true; // never deployed: nothing ever drew this floor
    const auto it = memberAckGen_.find(endpoint);
    return it != memberAckGen_.end() && it->second >= since;
}

bool
WorkerRuntime::membershipBroadcastTarget(std::uint16_t endpoint) const
{
    if (endpoint == role_)
        return false;
    if (membership_.state(endpoint) == membership::UnitState::Left) {
        const std::uint32_t since =
            membership_.sinceGeneration(endpoint);
        if (since == 0)
            return false; // never deployed: nobody is listening
        const auto acked = memberAckGen_.find(endpoint);
        if (acked != memberAckGen_.end() && acked->second >= since)
            return false; // leave acked: the unit is gone
    }
    const auto it = memberAckGen_.find(endpoint);
    return it == memberAckGen_.end()
           || it->second < membership_.generation();
}

void
WorkerRuntime::broadcastMembership(std::uint32_t epoch)
{
    // Generation 1 is the static deployment: the machinery stays idle
    // — no frames, no sequence numbers — so a run that never touches
    // membership is bit-identical to a pre-elasticity build.
    if (membership_.generation() <= 1)
        return;
    if (wireVersion_ != net::kWireVersion)
        return; // a compat-stamped root cannot announce; upgrade first
    const net::MembershipDeltaMsg delta = membership_.toDelta();
    for (std::size_t ep = 0; ep < plan_.workers.size(); ++ep) {
        if (!membershipBroadcastTarget(static_cast<std::uint16_t>(ep)))
            continue;
        transport_->send(
            role_, static_cast<net::Transport::Endpoint>(ep),
            net::encodeMembershipDelta(
                stampMeta(net::kRoomSender, epoch), delta));
        ++stats_.membershipDeltasSent;
        mMembershipDeltas_.inc();
    }
}

void
WorkerRuntime::membershipTick(std::uint32_t epoch)
{
    // Phase two of the adopt protocol: commit every transition whose
    // gate is satisfied. Joins additionally hold the minimum shadow
    // window so the unit demonstrably rides the clamp before its first
    // real grant; drains commit on the ack alone (the floor stays
    // reserved until the *Left* generation is acked, checked by
    // membershipFloorReleased()).
    std::vector<std::uint16_t> ready;
    for (const auto &[ep, entry] : membership_.entries()) {
        const auto acked = memberAckGen_.find(ep);
        const bool ackCurrent = acked != memberAckGen_.end()
                                && acked->second >= entry.sinceGeneration;
        if (!ackCurrent)
            continue;
        if (entry.state == membership::UnitState::Joining) {
            const auto announce = joinAnnounceEpoch_.find(ep);
            if (announce == joinAnnounceEpoch_.end()
                || epoch >= announce->second + kShadowPeriodsMin)
                ready.push_back(ep);
        } else if (entry.state == membership::UnitState::Draining) {
            ready.push_back(ep);
        }
    }
    for (const std::uint16_t ep : ready) {
        if (!membership_.commit(ep))
            continue;
        ++stats_.membershipCommits;
        mMembershipCommits_.inc();
        events_.record(static_cast<Seconds>(epoch),
                       core::EventKind::MembershipCommitted,
                       "worker" + std::to_string(ep),
                       static_cast<double>(membership_.generation()));
        if (membership_.isLive(ep)) {
            joinAnnounceEpoch_.erase(ep);
            // Fresh liveness ledger: the adopted unit starts Live with
            // a clean sequence baseline and zero failover credit.
            if (ep < rackHealth_.size())
                rackHealth_[ep] = RackHealth{};
        }
    }
    mMembershipGen_.set(static_cast<double>(membership_.generation()));
    mMembershipPending_.set(static_cast<double>(
        membership_.countOf(membership::UnitState::Joining)
        + membership_.countOf(membership::UnitState::Draining)));

    // Context for the safety auditor: how many units the reserved
    // floors cover for elasticity (shadow) reasons this period.
    std::uint64_t shadowed = 0;
    for (const auto &[ep, entry] : membership_.entries()) {
        if (entry.state == membership::UnitState::Joining
            || entry.state == membership::UnitState::Draining
            || (entry.state == membership::UnitState::Left
                && !membershipFloorReleased(ep)))
            ++shadowed;
    }
    auditor_.noteShadowUnits(shadowed);
}

void
WorkerRuntime::adoptMembershipDelta(const net::Frame &frame)
{
    if (isRoom()) {
        ++stats_.orphanFrames; // the root owns the table
        return;
    }
    if (frame.sender != net::kRoomSender) {
        ++stats_.orphanFrames; // only the root announces membership
        return;
    }
    if (membership_.applyDelta(frame.membershipDelta)) {
        ++stats_.membershipDeltasApplied;
        events_.record(static_cast<Seconds>(frame.epoch),
                       core::EventKind::MembershipAdopted, roleName(),
                       static_cast<double>(membership_.generation()));
        // Committed out: this period applies zero watts (see
        // finishRackPeriod), the ack below is the promise, and a
        // wall-paced daemon exits so the supervisor can retire it.
        if (membershipLeft() && pacing_ == Pacing::Wall)
            requestStop();
    }
    // Ack even the idempotent re-broadcast: a lost ack is what keeps
    // the root re-sending in the first place.
    sendMembershipAck(frame.epoch);
}

void
WorkerRuntime::sendMembershipAck(std::uint32_t epoch)
{
    if (wireVersion_ != net::kWireVersion)
        return; // compat-stamped workers cannot speak membership; the
                // root keeps broadcasting until this unit is upgraded
    const auto me = static_cast<std::uint16_t>(role_);
    net::MembershipAckMsg ack;
    ack.generation = membership_.generation();
    ack.endpoint = me;
    ack.state =
        static_cast<net::WireUnitState>(membership_.state(me));
    transport_->send(
        role_,
        static_cast<net::Transport::Endpoint>(plan_.rootEndpoint()),
        net::encodeMembershipAck(stampMeta(me, epoch), ack));
    ++stats_.membershipAcksSent;
    mMembershipAcks_.inc();
}

void
WorkerRuntime::noteMembershipAck(const net::Frame &frame)
{
    if (!isRoom()) {
        ++stats_.orphanFrames; // acks are addressed to the root
        return;
    }
    const net::MembershipAckMsg &ack = frame.membershipAck;
    if (ack.endpoint != frame.sender) {
        ++stats_.orphanFrames;
        return;
    }
    std::uint32_t &gen = memberAckGen_[ack.endpoint];
    gen = std::max(gen, ack.generation);
}

// ===================================================================
// Accessors, telemetry, persistence
// ===================================================================

std::vector<Watts>
WorkerRuntime::lastServerBudgets(std::size_t server_id) const
{
    for (const Plant &plant : plants_) {
        if (plant.serverId == server_id)
            return plant.lastBudgets;
    }
    return {};
}

RackState
WorkerRuntime::rackState(std::size_t r) const
{
    if (!isRoom() || r >= rackHealth_.size())
        util::fatal("rt: rackState() needs the room runtime");
    return rackHealth_[r].state;
}

void
WorkerRuntime::setTelemetry(telemetry::Registry *registry,
                            telemetry::PeriodTracer *tracer)
{
    registry_ = registry;
    tracer_ = tracer;
    obs_ = registry_ != nullptr || tracer_ != nullptr;
    transport_->setTelemetry(registry);
    if (!registry_) {
        hopHist_.clear();
        mPeriods_ = {};
        mCheckpoints_ = {};
        mRehomesSent_ = {};
        mRehomesApplied_ = {};
        mRehomesDeclined_ = {};
        mClampedPeriods_ = {};
        mFailovers_ = {};
        mRestartsDetected_ = {};
        mRehomed_ = {};
        mDefaultBudgets_ = {};
        mDeadRacks_ = {};
        mMembershipDeltas_ = {};
        mMembershipAcks_ = {};
        mMembershipCommits_ = {};
        mShadowPeriods_ = {};
        mMembershipGen_ = {};
        mMembershipPending_ = {};
        return;
    }
    const telemetry::Labels ls{
        {"role", roleName()},
        {"tier", std::to_string(plan_.workers[role_].tier)}};
    if (room_ || agg_) {
        fleetHealth_.setTelemetry(registry_, ls);
        auditor_.setTelemetry(registry_, ls);
    }
    mPeriods_ = registry_->counter(
        "capmaestro_rt_periods_total", ls,
        "Control periods completed by this worker");
    mCheckpoints_ = registry_->counter(
        "capmaestro_rt_checkpoints_sent_total", ls,
        "Plant-state checkpoints sent upstream");
    mRehomesSent_ = registry_->counter(
        "capmaestro_rt_rehomes_sent_total", ls,
        "Rehome frames sent to re-homing racks");
    mRehomesApplied_ = registry_->counter(
        "capmaestro_rt_rehomes_applied_total", ls,
        "Rehome checkpoints replayed into the local plant");
    mRehomesDeclined_ = registry_->counter(
        "capmaestro_rt_rehomes_declined_total", ls,
        "Rehome frames declined (local state already intact)");
    mClampedPeriods_ = registry_->counter(
        "capmaestro_rt_clamped_periods_total", ls,
        "Periods ridden on the Pcap_min clamp after a replay");
    mFailovers_ = registry_->counter(
        "capmaestro_rt_failovers_total", ls,
        "Rack workers declared dead by heartbeat silence");
    mRestartsDetected_ = registry_->counter(
        "capmaestro_rt_restarts_detected_total", ls,
        "Dead or reincarnated rack instances detected");
    mRehomed_ = registry_->counter(
        "capmaestro_rt_rehomed_total", ls,
        "Racks promoted back to Live after a checkpoint ack");
    mDefaultBudgets_ = registry_->counter(
        "capmaestro_rt_default_budgets_total", ls,
        "Edges that fell back to the Pcap_min default budget");
    mDeadRacks_ = registry_->gauge(
        "capmaestro_rt_degraded_racks", ls,
        "Racks currently Dead or Rehoming (room view)");
    mMembershipDeltas_ = registry_->counter(
        "capmaestro_membership_deltas_sent_total", ls,
        "Membership snapshots broadcast by the root");
    mMembershipAcks_ = registry_->counter(
        "capmaestro_membership_acks_sent_total", ls,
        "Membership generations acked back to the root");
    mMembershipCommits_ = registry_->counter(
        "capmaestro_membership_commits_total", ls,
        "Two-phase membership transitions committed (root view)");
    mShadowPeriods_ = registry_->counter(
        "capmaestro_membership_shadow_periods_total", ls,
        "Periods ridden on the Pcap_min clamp while Joining/Draining");
    mMembershipGen_ = registry_->gauge(
        "capmaestro_membership_generation", ls,
        "Current membership table generation");
    mMembershipPending_ = registry_->gauge(
        "capmaestro_membership_pending_units", ls,
        "Units with an uncommitted transition (Joining or Draining)");
}

std::string
WorkerRuntime::checkpointPath(std::size_t rack) const
{
    return stateDir_ + "/rack" + std::to_string(rack) + ".ckpt";
}

void
WorkerRuntime::setStateDir(const std::string &dir)
{
    if (!isRoom())
        util::fatal("rt: setStateDir() needs the room runtime");
    stateDir_ = dir;
    loadPersistedCheckpoints();
}

void
WorkerRuntime::persistCheckpoint(std::size_t rack)
{
    if (stateDir_.empty())
        return;
    // The on-disk format is simply the encoded Checkpoint frame: it
    // reuses the codec's CRC and version checks, so a torn or stale
    // file is rejected on load exactly like a corrupt frame.
    const auto bytes = net::encodeCheckpoint(
        {static_cast<std::uint16_t>(rack), lastEpoch_, 0},
        checkpoints_.at(rack));
    const std::string path = checkpointPath(rack);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            util::warn("rt: cannot write checkpoint %s", tmp.c_str());
            return;
        }
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        util::warn("rt: cannot install checkpoint %s", path.c_str());
}

void
WorkerRuntime::loadPersistedCheckpoints()
{
    for (std::size_t r = 0; r < rackCount_; ++r) {
        std::ifstream is(checkpointPath(r), std::ios::binary);
        if (!is)
            continue;
        std::vector<std::uint8_t> bytes(
            (std::istreambuf_iterator<char>(is)),
            std::istreambuf_iterator<char>());
        const auto frame = net::decodeFrame(bytes);
        if (!frame || frame->type != net::MsgType::Checkpoint) {
            util::warn("rt: ignoring corrupt checkpoint for rack %zu",
                       r);
            continue;
        }
        checkpoints_[r] = frame->checkpoint;
    }
}

} // namespace capmaestro::rt
