#include "control/shifting.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace capmaestro::ctrl {

std::vector<Watts>
waterfill(Watts amount, const std::vector<Watts> &caps,
          const std::vector<Watts> &weights)
{
    if (caps.size() != weights.size())
        util::panic("waterfill: caps/weights size mismatch");
    std::vector<Watts> alloc(caps.size(), 0.0);
    if (amount <= 0.0)
        return alloc;

    std::vector<bool> frozen(caps.size(), false);
    Watts remaining = amount;

    // Each pass either exhausts the remainder or freezes at least one item,
    // so this terminates in at most caps.size() passes.
    for (std::size_t pass = 0; pass < caps.size() + 1; ++pass) {
        double weight_sum = 0.0;
        double headroom_sum = 0.0;
        for (std::size_t i = 0; i < caps.size(); ++i) {
            if (frozen[i])
                continue;
            const double headroom = caps[i] - alloc[i];
            if (headroom <= 1e-12) {
                frozen[i] = true;
                continue;
            }
            weight_sum += std::max(0.0, weights[i]);
            headroom_sum += headroom;
        }
        if (headroom_sum <= 1e-12 || remaining <= 1e-12)
            break;

        bool clipped = false;
        Watts granted_total = 0.0;
        for (std::size_t i = 0; i < caps.size(); ++i) {
            if (frozen[i])
                continue;
            const double headroom = caps[i] - alloc[i];
            double share;
            if (weight_sum > 1e-12) {
                share = remaining * std::max(0.0, weights[i]) / weight_sum;
            } else {
                share = remaining * headroom / headroom_sum;
            }
            if (share >= headroom - 1e-12) {
                share = headroom;
                frozen[i] = true;
                clipped = true;
            }
            alloc[i] += share;
            granted_total += share;
        }
        remaining -= granted_total;
        if (!clipped || remaining <= 1e-12)
            break;
    }
    return alloc;
}

NodeMetrics
gatherMetrics(const std::vector<NodeMetrics> &children, Watts limit,
              bool report_by_priority)
{
    NodeMetrics out;

    // Aggregate raw sums by priority (classes stay priority-descending).
    for (const auto &child : children) {
        for (const auto &c : child.classes())
            out.accumulate(c.priority, c.capMin, c.demand, c.request);
    }

    // Pconstraint = min(limit, sum of child constraints).
    Watts child_constraint_sum = 0.0;
    for (const auto &child : children)
        child_constraint_sum += child.constraint();
    out.setConstraint(std::min(limit, child_constraint_sum));

    // Recompute Prequest per priority with the allowable-request rule.
    // Classes are in descending priority order; walk them accumulating the
    // higher-priority requests and lower-priority floors.
    auto &classes = out.classes();
    Watts lower_capmin_sum = 0.0;
    for (const auto &c : classes)
        lower_capmin_sum += c.capMin;

    Watts higher_request_sum = 0.0;
    const Watts request_ceiling = out.constraint();
    for (auto &c : classes) {
        lower_capmin_sum -= c.capMin; // now the sum over strictly lower
        const Watts allowable =
            request_ceiling - higher_request_sum - lower_capmin_sum;
        c.request = std::min(allowable, c.request);
        // The floor is owed regardless of limits; never request below it.
        c.request = std::max(c.request, c.capMin);
        higher_request_sum += c.request;
    }

    return report_by_priority ? out : out.collapsed();
}

namespace {

/** Per-child, per-priority view used by the budgeting phase. */
struct ChildClassView
{
    Watts capMin = 0.0;
    Watts demand = 0.0;
    Watts request = 0.0;
};

} // namespace

BudgetSplit
budgetChildren(Watts budget, const std::vector<NodeMetrics> &children,
               bool budget_by_priority)
{
    BudgetSplit result;
    result.childBudgets.assign(children.size(), 0.0);
    if (children.empty()) {
        result.unallocated = budget;
        return result;
    }

    // Optionally merge each child's classes (No-Priority behavior), then
    // collect the union of priority levels in descending order.
    std::vector<NodeMetrics> merged;
    const std::vector<NodeMetrics> *view = &children;
    if (!budget_by_priority) {
        merged.reserve(children.size());
        for (const auto &child : children)
            merged.push_back(child.collapsed());
        view = &merged;
    }

    std::set<Priority, std::greater<>> priorities;
    for (const auto &child : *view) {
        for (const auto &c : child.classes())
            priorities.insert(c.priority);
    }

    auto class_of = [](const NodeMetrics &m, Priority p) -> ChildClassView {
        const ClassMetrics *c = m.findClass(p);
        if (!c)
            return {};
        return {c->capMin, c->demand, c->request};
    };

    // Step 1: Pcap_min floors.
    Watts floor_sum = 0.0;
    for (std::size_t k = 0; k < view->size(); ++k) {
        result.childBudgets[k] = (*view)[k].totalCapMin();
        floor_sum += result.childBudgets[k];
    }

    if (floor_sum > budget + 1e-9) {
        // Infeasible: not even the floors fit. Scale floors proportionally
        // (best-effort) and report infeasibility to the caller.
        result.feasible = false;
        const double scale = floor_sum > 0.0 ? budget / floor_sum : 0.0;
        for (auto &b : result.childBudgets)
            b = std::max(0.0, b * scale);
        result.unallocated = 0.0;
        return result;
    }

    Watts remaining = budget - floor_sum;

    // Step 2 (+3): per priority level, grant extra requests; when a level
    // does not fit, water-fill by (Pdemand - Pcap_min) and stop.
    for (Priority p : priorities) {
        std::vector<Watts> need(view->size(), 0.0);
        std::vector<Watts> weight(view->size(), 0.0);
        Watts need_sum = 0.0;
        for (std::size_t k = 0; k < view->size(); ++k) {
            const ChildClassView c = class_of((*view)[k], p);
            need[k] = std::max(0.0, c.request - c.capMin);
            weight[k] = std::max(0.0, c.demand - c.capMin);
            need_sum += need[k];
        }
        if (need_sum <= remaining + 1e-9) {
            for (std::size_t k = 0; k < view->size(); ++k)
                result.childBudgets[k] += need[k];
            remaining -= std::min(need_sum, remaining);
        } else {
            // Step 3: the contested level.
            const auto alloc = waterfill(remaining, need, weight);
            for (std::size_t k = 0; k < view->size(); ++k)
                result.childBudgets[k] += alloc[k];
            remaining = 0.0;
            break;
        }
    }

    // Step 4: leftover up to each child's constraint.
    if (remaining > 1e-9) {
        std::vector<Watts> headroom(view->size(), 0.0);
        for (std::size_t k = 0; k < view->size(); ++k) {
            headroom[k] = std::max(
                0.0, (*view)[k].constraint() - result.childBudgets[k]);
        }
        const auto alloc = waterfill(remaining, headroom, headroom);
        Watts granted = 0.0;
        for (std::size_t k = 0; k < view->size(); ++k) {
            result.childBudgets[k] += alloc[k];
            granted += alloc[k];
        }
        remaining -= granted;
    }

    result.unallocated = util::snapNonNegative(remaining);
    return result;
}

} // namespace capmaestro::ctrl
