#include "control/control_tree.hh"

#include <algorithm>

#include "util/logging.hh"

namespace capmaestro::ctrl {

ControlTree::ControlTree(const topo::PowerTree &tree, TreePolicy policy)
    : tree_(tree), policy_(policy)
{
    nodes_.resize(tree_.size());
    tree_.forEach([this](const topo::TopoNode &tn) {
        CtrlNode &cn = nodes_[static_cast<std::size_t>(tn.id)];
        cn.limit = tn.limit();
        cn.isLeaf = tn.kind == topo::NodeKind::SupplyPort;
        if (cn.isLeaf) {
            cn.leaf.live = false; // dead until the first setLeafInput()
            leafIndex_[{tn.supplyRef->server, tn.supplyRef->supply}] = tn.id;
        }
        // A leaf-parent is a node with at least one supply-port child.
        bool leaf_parent = false;
        for (topo::NodeId c : tn.children) {
            if (tree_.node(c).kind == topo::NodeKind::SupplyPort)
                leaf_parent = true;
        }
        if (leaf_parent) {
            cn.budgetByPriority = policy_.leafPriorityAware;
            cn.reportByPriority = policy_.upperPriorityAware;
        } else {
            cn.budgetByPriority = policy_.upperPriorityAware;
            cn.reportByPriority = policy_.upperPriorityAware;
        }
    });
}

void
ControlTree::setLeafInput(const topo::ServerSupplyRef &ref,
                          const LeafInput &input)
{
    auto it = leafIndex_.find({ref.server, ref.supply});
    if (it == leafIndex_.end()) {
        util::panic("ControlTree %s: no leaf for supply %d.%d",
                    tree_.name().c_str(), ref.server, ref.supply);
    }
    nodes_[static_cast<std::size_t>(it->second)].leaf = input;
}

void
ControlTree::clearAllLeaves()
{
    for (auto &[key, id] : leafIndex_)
        nodes_[static_cast<std::size_t>(id)].leaf.live = false;
}

void
ControlTree::gatherNode(topo::NodeId id)
{
    const topo::TopoNode &tn = tree_.node(id);
    CtrlNode &cn = nodes_[static_cast<std::size_t>(id)];

    if (cn.isLeaf) {
        cn.metrics.clear();
        if (cn.leaf.live) {
            const Watts demand = std::max(cn.leaf.demand, cn.leaf.capMin);
            const Watts constraint =
                std::min(cn.leaf.constraint, cn.limit);
            cn.metrics.accumulate(cn.leaf.priority, cn.leaf.capMin, demand,
                                  /*request=*/demand);
            cn.metrics.setConstraint(constraint);
        }
        return;
    }

    std::vector<NodeMetrics> child_metrics;
    child_metrics.reserve(tn.children.size());
    for (topo::NodeId c : tn.children) {
        gatherNode(c);
        child_metrics.push_back(nodes_[static_cast<std::size_t>(c)].metrics);
    }
    cn.metrics = gatherMetrics(child_metrics, cn.limit,
                               cn.reportByPriority);
}

void
ControlTree::gather()
{
    if (tree_.root() == topo::kNoNode)
        util::fatal("ControlTree %s: empty topology",
                    tree_.name().c_str());
    gatherNode(tree_.root());
}

void
ControlTree::budgetNode(topo::NodeId id, AllocationOutcome &outcome)
{
    const topo::TopoNode &tn = tree_.node(id);
    CtrlNode &cn = nodes_[static_cast<std::size_t>(id)];
    if (cn.isLeaf || tn.children.empty())
        return;

    std::vector<NodeMetrics> child_metrics;
    child_metrics.reserve(tn.children.size());
    for (topo::NodeId c : tn.children)
        child_metrics.push_back(nodes_[static_cast<std::size_t>(c)].metrics);

    // A controller never distributes more than its device can carry,
    // even if an (infeasible) parent handed it more: the breaker, not
    // the budget, is the physical constraint.
    const Watts usable = std::min(cn.budget, cn.limit);
    const BudgetSplit split =
        budgetChildren(usable, child_metrics, cn.budgetByPriority);
    if (!split.feasible)
        outcome.feasible = false;
    if (id == tree_.root())
        outcome.unallocatedAtRoot = split.unallocated;

    for (std::size_t i = 0; i < tn.children.size(); ++i) {
        const topo::NodeId c = tn.children[i];
        nodes_[static_cast<std::size_t>(c)].budget = split.childBudgets[i];
        budgetNode(c, outcome);
    }
}

AllocationOutcome
ControlTree::allocate(Watts root_budget)
{
    AllocationOutcome outcome;
    const topo::NodeId root = tree_.root();
    CtrlNode &rn = nodes_[static_cast<std::size_t>(root)];
    rn.budget = std::min(root_budget, rn.limit);
    budgetNode(root, outcome);
    return outcome;
}

Watts
ControlTree::leafBudget(const topo::ServerSupplyRef &ref) const
{
    auto it = leafIndex_.find({ref.server, ref.supply});
    if (it == leafIndex_.end()) {
        util::panic("ControlTree %s: no leaf for supply %d.%d",
                    tree_.name().c_str(), ref.server, ref.supply);
    }
    return nodes_[static_cast<std::size_t>(it->second)].budget;
}

Watts
ControlTree::nodeBudget(topo::NodeId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
        util::panic("ControlTree %s: bad node id %d", tree_.name().c_str(),
                    id);
    return nodes_[static_cast<std::size_t>(id)].budget;
}

const NodeMetrics &
ControlTree::nodeMetrics(topo::NodeId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
        util::panic("ControlTree %s: bad node id %d", tree_.name().c_str(),
                    id);
    return nodes_[static_cast<std::size_t>(id)].metrics;
}

const NodeMetrics &
ControlTree::rootMetrics() const
{
    return nodeMetrics(tree_.root());
}

std::vector<topo::ServerSupplyRef>
ControlTree::leafRefs() const
{
    std::vector<topo::ServerSupplyRef> out;
    out.reserve(leafIndex_.size());
    for (const auto &[key, id] : leafIndex_)
        out.push_back({key.first, key.second});
    return out;
}

std::size_t
ControlTree::messagesPerIteration() const
{
    // Each edge carries one metrics message up and one budget message down.
    return 2 * (tree_.size() - 1);
}

} // namespace capmaestro::ctrl
