/**
 * @file
 * The per-server capping controller (paper §4.2, Figure 4).
 *
 * Closed loop, once per control period (default 8 s):
 *
 *   1. Average the 1 Hz sensor readings taken during the period.
 *   2. error_s = budget_s - measured_s for every working supply;
 *      e = min_s error_s            (most conservative correction)
 *   3. e_dc = e x k x M             (AC->DC via supply efficiency k,
 *                                    scaled by working-supply count M)
 *   4. integrator += e_dc; clip to [Pcap_min_dc, Pcap_max_dc];
 *      send to the node manager.
 *
 * The controller also produces the per-supply metrics (LeafInput) the
 * shifting controllers consume, using the measured load split r-hat and a
 * regression-based demand estimate (§5).
 */

#ifndef CAPMAESTRO_CONTROL_CAPPING_CONTROLLER_HH
#define CAPMAESTRO_CONTROL_CAPPING_CONTROLLER_HH

#include <vector>

#include "control/control_tree.hh"
#include "control/demand_estimator.hh"
#include "device/node_manager.hh"
#include "device/sensor.hh"
#include "device/server.hh"
#include "telemetry/registry.hh"
#include "util/units.hh"

namespace capmaestro::ctrl {

/** Tunables for the capping controller. */
struct CappingControllerConfig
{
    /** Loop gain multiplier on the integrator update (1.0 = paper). */
    double gain = 1.0;
    /** EWMA weight for the measured load-split estimate r-hat. */
    double shareSmoothing = 0.5;
    DemandEstimatorConfig estimator;
};

/** Per-control-period summary the controller reports upstream. */
struct ServerPeriodReport
{
    /** Average AC power per supply over the period. */
    std::vector<Watts> supplyAvgAc;
    /** Average throttle level over the period. */
    double avgThrottle = 0.0;
    /** Estimated uncapped AC demand (total server). */
    Watts demandEstimate = 0.0;
    /** Estimated load split r-hat per supply (sums to 1 over working). */
    std::vector<Fraction> shares;
    /** Number of working supplies M. */
    std::size_t workingSupplies = 0;
};

/**
 * Checkpointable cross-period state of a CappingController: everything
 * that must survive a process restart for the control loop to resume
 * where it left off (the period accumulators deliberately excluded —
 * they re-warm within one period).
 */
struct CappingControllerState
{
    /** Integrator value (the desired DC cap when primed). */
    Watts integratorDc = 0.0;
    bool integratorPrimed = false;
    /** Last closed period's report (shares re-seed the r-hat EWMA). */
    ServerPeriodReport report;
};

/** Closed-loop capping controller for one server. */
class CappingController
{
  public:
    /**
     * @param server  physical plant (not owned)
     * @param nm      actuator (not owned)
     * @param sensors sensor stack (not owned)
     * @param config  tunables
     */
    CappingController(const dev::ServerModel &server, dev::NodeManager &nm,
                      dev::SensorEmulator &sensors,
                      CappingControllerConfig config = {});

    /** Take one 1 Hz sensor sample; call every simulated second. */
    void senseTick();

    /**
     * Close a control period: average the period's samples, refresh the
     * demand estimate and the r-hat split, and return the report. Resets
     * the period accumulators.
     */
    ServerPeriodReport closePeriod();

    /**
     * Produce the LeafInput for supply @p s from the latest report
     * (scaled by r-hat, per §4.3.1 level-1 formulas).
     */
    LeafInput leafInputFor(std::size_t s) const;

    /**
     * Apply new per-supply AC budgets: run the PI update and push the
     * resulting DC cap to the node manager.
     */
    void applyBudgets(const std::vector<Watts> &supply_budgets_ac);

    /** The controller's current DC cap integrator value. */
    Watts desiredDcCap() const { return integratorDc_; }

    /** Latest period report (valid after the first closePeriod()). */
    const ServerPeriodReport &lastReport() const { return report_; }

    /** Snapshot the cross-period state (for failover checkpoints). */
    CappingControllerState exportState() const;

    /**
     * Replay a checkpointed state: restores the integrator, re-seeds
     * the r-hat EWMA from the report's shares, and — when the
     * integrator was primed — re-actuates the DC cap immediately, so a
     * restarted server does not wait a full period uncapped.
     */
    void restoreState(const CappingControllerState &state);

    /** Server spec convenience accessor. */
    const dev::ServerSpec &spec() const { return server_.spec(); }

    /**
     * Attach a metrics registry (nullptr detaches). Registers the
     * per-server series once, labeled {server=<name>}; the per-period
     * updates are plain slot writes.
     */
    void setTelemetry(telemetry::Registry *registry);

  private:
    const dev::ServerModel &server_;
    dev::NodeManager &nm_;
    dev::SensorEmulator &sensors_;
    CappingControllerConfig config_;
    DemandEstimator estimator_;

    /** Period accumulators. */
    std::vector<double> supplyAcSum_;
    double throttleSum_ = 0.0;
    std::size_t samples_ = 0;

    ServerPeriodReport report_;
    std::vector<Fraction> shareEwma_;
    Watts integratorDc_ = 0.0;
    bool integratorPrimed_ = false;

    /** Telemetry handles (null-safe no-ops when detached). */
    telemetry::Registry *registry_ = nullptr;
    telemetry::Gauge mErrorWatts_;
    telemetry::Gauge mThrottle_;
    telemetry::Gauge mDemandWatts_;
    telemetry::Gauge mDcCapWatts_;
    telemetry::Gauge mSettlePeriods_;
    telemetry::Counter mPeriods_;
    /** Consecutive periods with |min error| inside the settle band. */
    std::size_t settlePeriods_ = 0;
};

} // namespace capmaestro::ctrl

#endif // CAPMAESTRO_CONTROL_CAPPING_CONTROLLER_HH
