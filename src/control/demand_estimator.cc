#include "control/demand_estimator.hh"

#include <algorithm>
#include <cmath>

#include "util/numeric.hh"

namespace capmaestro::ctrl {

DemandEstimator::DemandEstimator(DemandEstimatorConfig config)
    : config_(config), window_(config.windowLength)
{
}

void
DemandEstimator::addSample(double throttle_level, Watts total_ac_power)
{
    window_.add(throttle_level, total_ac_power);
    maxObserved_ = primed_ ? std::max(maxObserved_, total_ac_power)
                           : total_ac_power;
    primed_ = true;
    refresh();
}

void
DemandEstimator::refresh()
{
    if (config_.mode == DemandEstimatorMode::LastMeasured) {
        sticky_ = util::clamp(window_.meanY(), config_.minEstimate,
                              config_.maxEstimate);
        return;
    }

    const double mean_throttle = window_.meanX();
    const double spread = window_.stddevX();

    if (mean_throttle < config_.unthrottledLevel) {
        // Unthrottled: measured power *is* the demand. This regime tracks
        // decreases, so light workloads release their budgets.
        sticky_ = window_.meanY();
    } else if (spread >= config_.minThrottleSpread) {
        // Throttled with enough excitation for a fit: extrapolate to 0 %
        // throttle. Never estimate below power the window actually saw.
        const auto fit = window_.fit();
        if (fit)
            sticky_ = std::max(fit->intercept, window_.maxY());
    } else {
        // Steady capped state: the window carries no information about the
        // uncapped demand, so hold the last good estimate. Raise it if the
        // capped draw itself exceeds it (estimate was stale-low).
        sticky_ = std::max(sticky_, window_.maxY());
    }
    sticky_ = util::clamp(sticky_, config_.minEstimate,
                          config_.maxEstimate);
}

Watts
DemandEstimator::estimate() const
{
    if (!primed_)
        return config_.minEstimate;
    return sticky_;
}

void
DemandEstimator::reset()
{
    window_.clear();
    sticky_ = 0.0;
    maxObserved_ = 0.0;
    primed_ = false;
}

} // namespace capmaestro::ctrl
