#include "control/capping_controller.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace capmaestro::ctrl {

CappingController::CappingController(const dev::ServerModel &server,
                                     dev::NodeManager &nm,
                                     dev::SensorEmulator &sensors,
                                     CappingControllerConfig config)
    : server_(server), nm_(nm), sensors_(sensors), config_(config),
      estimator_([&] {
          DemandEstimatorConfig c = config.estimator;
          c.minEstimate = server.spec().idle;
          c.maxEstimate = server.spec().capMax;
          return c;
      }())
{
    const std::size_t n = server_.supplyCount();
    supplyAcSum_.assign(n, 0.0);
    shareEwma_.assign(n, 0.0);
    // Seed r-hat from the spec's nominal shares.
    for (std::size_t s = 0; s < n; ++s)
        shareEwma_[s] = server_.spec().supplies[s].loadShare;
}

void
CappingController::setTelemetry(telemetry::Registry *registry)
{
    registry_ = registry;
    if (registry_ == nullptr) {
        mErrorWatts_ = {};
        mThrottle_ = {};
        mDemandWatts_ = {};
        mDcCapWatts_ = {};
        mSettlePeriods_ = {};
        mPeriods_ = {};
        return;
    }
    const telemetry::Labels labels = {{"server", server_.spec().name}};
    mErrorWatts_ =
        registry_->gauge("capmaestro_server_error_watts", labels,
                         "Most conservative per-supply budget error");
    mThrottle_ = registry_->gauge("capmaestro_server_throttle", labels,
                                  "Average throttle level last period");
    mDemandWatts_ =
        registry_->gauge("capmaestro_server_demand_watts", labels,
                         "Estimated uncapped AC demand");
    mDcCapWatts_ = registry_->gauge("capmaestro_server_dc_cap_watts",
                                    labels, "Actuated DC cap");
    mSettlePeriods_ = registry_->gauge(
        "capmaestro_server_settle_periods", labels,
        "Consecutive periods with |error| inside the settle band");
    mPeriods_ =
        registry_->counter("capmaestro_server_periods_total", labels,
                           "Control periods actuated for this server");
}

void
CappingController::senseTick()
{
    const dev::SensorReading r = sensors_.read();
    for (std::size_t s = 0; s < r.supplyAc.size(); ++s)
        supplyAcSum_[s] += r.supplyAc[s];
    throttleSum_ += r.throttleLevel;
    ++samples_;
    estimator_.addSample(r.throttleLevel, r.totalAc);
}

ServerPeriodReport
CappingController::closePeriod()
{
    const std::size_t n = server_.supplyCount();
    ServerPeriodReport rep;
    rep.supplyAvgAc.assign(n, 0.0);
    rep.shares.assign(n, 0.0);

    if (samples_ == 0) {
        // Sensor dropout: raising the cap on zero information would be
        // unsafe (a dead meter would read as an idle server). Hold the
        // previous period's report so budgets and caps stay put.
        util::warn("capping controller %s: control period with no sensor "
                   "samples; holding last state",
                   server_.spec().name.c_str());
        return report_;
    }

    double total = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
        rep.supplyAvgAc[s] = supplyAcSum_[s] / static_cast<double>(samples_);
        total += rep.supplyAvgAc[s];
    }
    rep.avgThrottle = throttleSum_ / static_cast<double>(samples_);
    rep.demandEstimate = estimator_.estimate();
    rep.workingSupplies = server_.workingSupplies();

    // Measured load split r-hat, EWMA-smoothed, zero for dead supplies.
    for (std::size_t s = 0; s < n; ++s) {
        Fraction measured;
        if (server_.supplyState(s) != dev::SupplyState::Ok) {
            measured = 0.0;
        } else if (total > 1e-6) {
            measured = rep.supplyAvgAc[s] / total;
        } else {
            measured = shareEwma_[s];
        }
        shareEwma_[s] = (1.0 - config_.shareSmoothing) * shareEwma_[s]
                        + config_.shareSmoothing * measured;
    }
    // Renormalize over working supplies so shares sum to exactly 1.
    double live_sum = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
        if (server_.supplyState(s) == dev::SupplyState::Ok)
            live_sum += shareEwma_[s];
    }
    for (std::size_t s = 0; s < n; ++s) {
        rep.shares[s] =
            (server_.supplyState(s) == dev::SupplyState::Ok
             && live_sum > 1e-9)
                ? shareEwma_[s] / live_sum
                : 0.0;
    }

    // Reset period accumulators.
    std::fill(supplyAcSum_.begin(), supplyAcSum_.end(), 0.0);
    throttleSum_ = 0.0;
    samples_ = 0;

    report_ = rep;
    if (registry_ != nullptr) {
        mThrottle_.set(report_.avgThrottle);
        mDemandWatts_.set(report_.demandEstimate);
    }
    return report_;
}

CappingControllerState
CappingController::exportState() const
{
    CappingControllerState state;
    state.integratorDc = integratorDc_;
    state.integratorPrimed = integratorPrimed_;
    state.report = report_;
    return state;
}

void
CappingController::restoreState(const CappingControllerState &state)
{
    const dev::ServerSpec &spec = server_.spec();
    const std::size_t n = server_.supplyCount();

    report_ = state.report;
    report_.supplyAvgAc.resize(n, 0.0);
    report_.shares.resize(n, 0.0);
    // Re-seed r-hat from the checkpointed split; a pre-first-period
    // checkpoint carries all-zero shares, in which case the nominal
    // seed from construction stays in place.
    double share_sum = 0.0;
    for (const Fraction r : report_.shares)
        share_sum += r;
    if (share_sum > 1e-9)
        shareEwma_ = report_.shares;

    integratorPrimed_ = state.integratorPrimed;
    if (integratorPrimed_) {
        const double k = server_.blendedEfficiency();
        integratorDc_ = util::clamp(state.integratorDc,
                                    spec.capMin * k, spec.capMax * k);
        nm_.setDcCap(integratorDc_);
    } else {
        integratorDc_ = state.integratorDc;
    }
}

LeafInput
CappingController::leafInputFor(std::size_t s) const
{
    const dev::ServerSpec &spec = server_.spec();
    LeafInput leaf;
    const Fraction r =
        s < report_.shares.size() ? report_.shares[s] : 0.0;
    if (r <= 0.0) {
        leaf.live = false;
        return leaf;
    }
    const Watts demand_eff =
        std::max(report_.demandEstimate, spec.capMin);
    leaf.live = true;
    leaf.priority = spec.priority;
    leaf.capMin = r * spec.capMin;
    leaf.demand = r * std::min(demand_eff, spec.capMax);
    leaf.constraint = r * spec.capMax;
    return leaf;
}

void
CappingController::applyBudgets(const std::vector<Watts> &budgets_ac)
{
    const dev::ServerSpec &spec = server_.spec();
    const std::size_t n = server_.supplyCount();
    if (budgets_ac.size() != n) {
        util::panic("capping controller %s: %zu budgets for %zu supplies",
                    spec.name.c_str(), budgets_ac.size(), n);
    }

    // Step 1 (Fig. 4): per-supply error; keep the most conservative one.
    double min_error = topo::kUnlimited;
    std::size_t working = 0;
    for (std::size_t s = 0; s < n; ++s) {
        if (server_.supplyState(s) != dev::SupplyState::Ok)
            continue;
        ++working;
        const double measured =
            s < report_.supplyAvgAc.size() ? report_.supplyAvgAc[s] : 0.0;
        min_error = std::min(min_error, budgets_ac[s] - measured);
    }
    if (working == 0)
        return; // dark server: nothing to actuate

    // Step 2: scale AC error to the DC domain and to the whole server.
    const double k = server_.blendedEfficiency();
    const double e_dc =
        min_error * k * static_cast<double>(working) * config_.gain;

    // Step 3: integrate (the integrator stores the desired DC cap).
    const Watts cap_min_dc = spec.capMin * k;
    const Watts cap_max_dc = spec.capMax * k;
    if (!integratorPrimed_) {
        integratorDc_ = cap_max_dc;
        integratorPrimed_ = true;
    }
    integratorDc_ += e_dc;

    // Step 4: clip to the controllable range and actuate.
    integratorDc_ = util::clamp(integratorDc_, cap_min_dc, cap_max_dc);
    nm_.setDcCap(integratorDc_);

    if (registry_ != nullptr) {
        // "Settled" = the conservative error stayed within a small band;
        // count consecutive such periods as a convergence indicator.
        constexpr double kSettleBandWatts = 2.0;
        settlePeriods_ = std::abs(min_error) <= kSettleBandWatts
                             ? settlePeriods_ + 1
                             : 0;
        mErrorWatts_.set(min_error);
        mDcCapWatts_.set(integratorDc_);
        mSettlePeriods_.set(static_cast<double>(settlePeriods_));
        mPeriods_.inc();
    }
}

} // namespace capmaestro::ctrl
