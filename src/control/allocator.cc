#include "control/allocator.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "util/logging.hh"
#include "util/numeric.hh"

namespace capmaestro::ctrl {

FleetAllocator::FleetAllocator(const topo::PowerSystem &system,
                               TreePolicy policy)
    : system_(system)
{
    trees_.reserve(system_.trees().size());
    for (const auto &t : system_.trees())
        trees_.push_back(std::make_unique<ControlTree>(*t, policy));
}

const ControlTree &
FleetAllocator::tree(std::size_t index) const
{
    if (index >= trees_.size())
        util::panic("FleetAllocator: bad tree index %zu", index);
    return *trees_[index];
}

std::vector<Fraction>
effectiveSupplyShares(const topo::PowerSystem &system,
                      const ServerAllocInput &server,
                      std::int32_t server_id)
{
    std::vector<Fraction> shares(server.supplies.size(), 0.0);
    const auto live_ports = system.livePortsOf(server_id);

    double live_sum = 0.0;
    for (std::size_t s = 0; s < server.supplies.size(); ++s) {
        const auto port =
            live_ports.find(static_cast<std::int32_t>(s));
        const bool feed_live = port != live_ports.end();
        if (feed_live && server.supplies[s].live)
            live_sum += server.supplies[s].share;
    }
    if (live_sum <= 0.0)
        return shares; // server is dark

    for (std::size_t s = 0; s < server.supplies.size(); ++s) {
        const auto port =
            live_ports.find(static_cast<std::int32_t>(s));
        const bool feed_live = port != live_ports.end();
        if (feed_live && server.supplies[s].live)
            shares[s] = server.supplies[s].share / live_sum;
    }
    return shares;
}

LeafInput
scaledLeafInput(const ServerAllocInput &server, Fraction r)
{
    LeafInput leaf;
    if (r <= 0.0) {
        leaf.live = false;
        return leaf;
    }
    const Watts demand_eff = std::max(server.demand, server.capMin);
    leaf.live = true;
    leaf.priority = server.priority;
    leaf.capMin = r * server.capMin;
    leaf.demand = r * std::min(demand_eff, server.capMax);
    leaf.constraint = r * server.capMax;
    return leaf;
}

void
deriveServerCapsFrom(
    const topo::PowerSystem &system,
    const std::vector<ServerAllocInput> &servers,
    const std::vector<std::vector<Fraction>> &shares,
    const std::function<Watts(std::size_t tree,
                              const topo::ServerSupplyRef &ref)>
        &budget_of,
    FleetAllocation &out)
{
    out.servers.assign(servers.size(), ServerAllocation{});
    for (std::size_t i = 0; i < servers.size(); ++i) {
        const ServerAllocInput &in = servers[i];
        ServerAllocation &alloc = out.servers[i];
        alloc.supplyBudget.assign(in.supplies.size(), 0.0);
        alloc.effectiveDemand =
            util::clamp(std::max(in.demand, in.capMin), in.capMin,
                        in.capMax);

        const auto live_ports =
            system.livePortsOf(static_cast<std::int32_t>(i));
        Watts binding = topo::kUnlimited;
        bool any_live = false;
        for (const auto &[sup, loc] : live_ports) {
            const auto s = static_cast<std::size_t>(sup);
            const Fraction r = s < shares[i].size() ? shares[i][s] : 0.0;
            if (r <= 0.0)
                continue;
            const Watts budget = budget_of(
                loc.tree, {static_cast<std::int32_t>(i), sup});
            alloc.supplyBudget[s] = budget;
            binding = std::min(binding, budget / r);
            any_live = true;
        }

        if (!any_live) {
            alloc.enforceableCapAc = 0.0;
            alloc.capped = true;
            continue;
        }

        alloc.enforceableCapAc =
            util::clamp(binding, in.capMin, in.capMax);
        alloc.capped =
            alloc.enforceableCapAc < alloc.effectiveDemand - 1e-6;
    }
}

std::vector<SpoPin>
detectStrandedSupplies(const topo::PowerSystem &system,
                      const std::vector<ServerAllocInput> &servers,
                      const std::vector<std::vector<Fraction>> &shares,
                      const FleetAllocation &current,
                      Watts spo_threshold)
{
    std::vector<SpoPin> pins;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        const ServerAllocation &alloc = current.servers[i];
        if (!alloc.capped)
            continue;
        const Watts usable_total =
            std::min(alloc.enforceableCapAc, alloc.effectiveDemand);
        for (std::size_t s = 0; s < alloc.supplyBudget.size(); ++s) {
            const Fraction r = shares[i][s];
            if (r <= 0.0)
                continue;
            const Watts consumption = r * usable_total;
            const Watts stranded = alloc.supplyBudget[s] - consumption;
            if (stranded <= spo_threshold)
                continue;
            const auto ports =
                system.livePortsOf(static_cast<std::int32_t>(i));
            const auto it = ports.find(static_cast<std::int32_t>(s));
            if (it == ports.end())
                continue; // unreachable: r > 0 implies a live port
            SpoPin pin;
            pin.ref = {static_cast<std::int32_t>(i),
                       static_cast<std::int32_t>(s)};
            pin.tree = it->second.tree;
            pin.consumption = consumption;
            pin.stranded = stranded;
            pin.priority = servers[i].priority;
            pins.push_back(pin);
        }
    }
    return pins;
}

void
recordAllocationTelemetry(telemetry::Registry *registry,
                          const std::vector<ServerAllocInput> &servers,
                          const FleetAllocation &alloc)
{
    if (registry == nullptr)
        return;

    // Aggregate grants and unmet demand by priority class.
    std::map<Priority, Watts> granted;
    std::map<Priority, Watts> denied;
    for (std::size_t i = 0; i < servers.size(); ++i) {
        const ServerAllocation &server = alloc.servers[i];
        granted[servers[i].priority] += server.enforceableCapAc;
        denied[servers[i].priority] += std::max(
            0.0, server.effectiveDemand - server.enforceableCapAc);
    }
    for (const auto &[priority, watts] : granted) {
        registry
            ->gauge("capmaestro_alloc_granted_watts",
                    {{"priority", std::to_string(priority)}},
                    "Enforceable AC cap granted, by priority class")
            .set(watts);
    }
    for (const auto &[priority, watts] : denied) {
        registry
            ->gauge("capmaestro_alloc_denied_watts",
                    {{"priority", std::to_string(priority)}},
                    "Demand above the granted cap, by priority class")
            .set(watts);
    }
    registry
        ->gauge("capmaestro_alloc_feasible", {},
                "1 when every tree covered its Pcap_min floors")
        .set(alloc.feasible ? 1.0 : 0.0);
    registry
        ->gauge("capmaestro_alloc_passes", {},
                "Allocation passes run last period (2+ = SPO re-run)")
        .set(static_cast<double>(alloc.passes));
    registry
        ->gauge("capmaestro_spo_reclaimed_watts", {},
                "Stranded watts reclaimed by SPO last period")
        .set(alloc.strandedReclaimed);
    registry
        ->counter("capmaestro_spo_reclaimed_watts_total", {},
                  "Cumulative stranded watts reclaimed by SPO")
        .inc(alloc.strandedReclaimed);
}

LeafInput
pinnedLeafInput(Priority priority, Watts consumption)
{
    LeafInput pinned;
    pinned.live = true;
    pinned.priority = priority;
    pinned.capMin = consumption;
    pinned.demand = consumption;
    pinned.constraint = consumption;
    return pinned;
}

std::vector<Fraction>
FleetAllocator::effectiveShares(const ServerAllocInput &server,
                                std::int32_t server_id) const
{
    return effectiveSupplyShares(system_, server, server_id);
}

void
FleetAllocator::pushLeafInputs(
    const std::vector<ServerAllocInput> &servers,
    const std::vector<std::vector<Fraction>> &shares)
{
    for (std::size_t t = 0; t < trees_.size(); ++t) {
        ControlTree &tree = *trees_[t];
        for (const auto &ref : tree.leafRefs()) {
            const auto sid = static_cast<std::size_t>(ref.server);
            if (sid >= servers.size()) {
                util::fatal("FleetAllocator: topology references server %d "
                            "but only %zu inputs given", ref.server,
                            servers.size());
            }
            const ServerAllocInput &in = servers[sid];
            const auto sup = static_cast<std::size_t>(ref.supply);
            const Fraction r =
                sup < shares[sid].size() ? shares[sid][sup] : 0.0;
            tree.setLeafInput(ref, scaledLeafInput(in, r));
        }
    }
}

void
FleetAllocator::runPass(const std::vector<Watts> &root_budgets,
                        FleetAllocation &out)
{
    for (std::size_t t = 0; t < trees_.size(); ++t) {
        if (system_.feedFailed(system_.tree(t).feed()))
            continue;
        trees_[t]->gather();
        const auto outcome = trees_[t]->allocate(root_budgets[t]);
        if (!outcome.feasible)
            out.feasible = false;
    }
}

void
FleetAllocator::deriveServerCaps(
    const std::vector<ServerAllocInput> &servers,
    const std::vector<std::vector<Fraction>> &shares,
    FleetAllocation &out) const
{
    deriveServerCapsFrom(
        system_, servers, shares,
        [this](std::size_t tree, const topo::ServerSupplyRef &ref) {
            return trees_[tree]->leafBudget(ref);
        },
        out);
}

FleetAllocation
FleetAllocator::allocate(const std::vector<ServerAllocInput> &servers,
                         const std::vector<Watts> &root_budgets,
                         bool enable_spo, Watts spo_threshold,
                         int max_passes)
{
    if (root_budgets.size() != trees_.size())
        util::fatal("FleetAllocator: %zu root budgets for %zu trees",
                    root_budgets.size(), trees_.size());
    if (max_passes < 1)
        util::fatal("FleetAllocator: max_passes must be >= 1");

    FleetAllocation out;

    std::vector<std::vector<Fraction>> shares(servers.size());
    for (std::size_t i = 0; i < servers.size(); ++i)
        shares[i] = effectiveShares(servers[i],
                                    static_cast<std::int32_t>(i));

    pushLeafInputs(servers, shares);
    runPass(root_budgets, out);
    deriveServerCaps(servers, shares, out);

    if (!enable_spo) {
        recordAllocationTelemetry(registry_, servers, out);
        return out;
    }

    // Stranded-power optimization: on capped servers, any live supply
    // whose budget exceeds what the binding supply lets the server draw
    // holds stranded power. Pin those supplies to their usable
    // consumption and re-run the allocation so the freed power reaches
    // capped servers. Reclaiming on one feed can shift another server's
    // binding supply and strand budget elsewhere, so iterate (up to
    // max_passes total) until no new stranded power appears; the paper's
    // configuration is exactly one re-run (max_passes = 2).
    std::vector<Watts> stranded_first_pass(servers.size(), 0.0);
    while (out.passes < max_passes) {
        const auto pins = detectStrandedSupplies(system_, servers, shares,
                                                 out, spo_threshold);
        for (const auto &pin : pins) {
            if (out.passes == 1)
                stranded_first_pass[static_cast<std::size_t>(
                    pin.ref.server)] += pin.stranded;
            out.strandedReclaimed += pin.stranded;
            // Pin this supply's next-pass metrics to consumption.
            trees_[pin.tree]->setLeafInput(
                pin.ref, pinnedLeafInput(pin.priority, pin.consumption));
        }
        if (pins.empty())
            break;

        runPass(root_budgets, out);
        deriveServerCaps(servers, shares, out);
        ++out.passes;
    }

    for (std::size_t i = 0; i < servers.size(); ++i)
        out.servers[i].strandedBeforeSpo = stranded_first_pass[i];
    recordAllocationTelemetry(registry_, servers, out);
    return out;
}

} // namespace capmaestro::ctrl
