/**
 * @file
 * Fleet-level budget allocation across all control trees, including the
 * stranded-power optimization (paper §4.4).
 *
 * The FleetAllocator runs the global priority-aware capping algorithm on
 * every live (feed, phase) control tree, derives each server's enforceable
 * total cap from its per-supply budgets (the most-constrained supply
 * binds), detects stranded power, and optionally re-runs the allocation
 * with stranded budgets released.
 *
 * It is used both by the large-scale capacity simulations (§6.4), which
 * feed it analytic demands, and by the closed-loop control plane, which
 * feeds it sensor-estimated demands.
 */

#ifndef CAPMAESTRO_CONTROL_ALLOCATOR_HH
#define CAPMAESTRO_CONTROL_ALLOCATOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "control/control_tree.hh"
#include "telemetry/registry.hh"
#include "topology/power_system.hh"
#include "util/units.hh"

namespace capmaestro::ctrl {

/** Per-supply allocation input. */
struct SupplyAllocInput
{
    /** Share of total server AC load on this supply (sums to 1 if live). */
    Fraction share = 0.5;
    /** False when the supply itself has failed. */
    bool live = true;
};

/** Per-server allocation input (AC totals). */
struct ServerAllocInput
{
    Priority priority = 0;
    Watts capMin = 0.0;
    Watts capMax = 0.0;
    /** Uncapped demand at the current workload. */
    Watts demand = 0.0;
    std::vector<SupplyAllocInput> supplies;
};

/** Per-server allocation result. */
struct ServerAllocation
{
    /** Budget per supply (0 for dead supplies / dead feeds). */
    std::vector<Watts> supplyBudget;
    /**
     * Total AC cap the server can actually enforce: the most-constrained
     * supply binds, i.e. min over live supplies of budget / share,
     * clamped to [capMin, capMax].
     */
    Watts enforceableCapAc = 0.0;
    /** Effective demand (demand raised to at least capMin). */
    Watts effectiveDemand = 0.0;
    /** True when the cap bites (enforceableCapAc < effectiveDemand). */
    bool capped = false;
    /** Stranded power detected before SPO (sum over supplies). */
    Watts strandedBeforeSpo = 0.0;
};

/** Result of a full fleet allocation. */
struct FleetAllocation
{
    std::vector<ServerAllocation> servers;
    /** False when any tree could not cover its Pcap_min floors. */
    bool feasible = true;
    /** Number of allocation passes run (2 when SPO triggered). */
    int passes = 1;
    /** Total stranded power reclaimed by SPO across the fleet. */
    Watts strandedReclaimed = 0.0;
};

/**
 * Effective per-supply shares of one server given the live feeds:
 * dead supplies/feeds get zero and the survivors are renormalized.
 * Shared by the FleetAllocator and the distributed message plane so
 * both produce identical leaf inputs.
 */
std::vector<Fraction>
effectiveSupplyShares(const topo::PowerSystem &system,
                      const ServerAllocInput &server,
                      std::int32_t server_id);

/**
 * The leaf input a capping controller reports for one supply carrying
 * share @p r of the server load (paper §4.3.1 level-1 formulas); a
 * non-positive share yields a dead leaf.
 */
LeafInput scaledLeafInput(const ServerAllocInput &server, Fraction r);

/** One §4.4 pinned supply: stranded power detected on a capped server. */
struct SpoPin
{
    /** Leaf to pin (server id + supply index). */
    topo::ServerSupplyRef ref{0, 0};
    /** Tree (indexed like PowerSystem::trees()) owning the leaf. */
    std::size_t tree = 0;
    /** Consumption the supply is pinned to: share x usable total. */
    Watts consumption = 0.0;
    /** Stranded watts the pin releases back to the pool. */
    Watts stranded = 0.0;
    /** Server priority, carried into the pinned leaf input. */
    Priority priority = 0;
};

/**
 * Detect stranded supplies (§4.4): on capped servers, any live supply
 * whose budget exceeds what the binding supply lets the server draw
 * (by more than @p spo_threshold watts) holds stranded power. Pins are
 * returned in deterministic order — servers ascending, supplies
 * ascending — so every consumer accumulates stranded sums in the same
 * float-op order. Shared by the monolithic FleetAllocator and the
 * distributed message plane so both pin identical leaves.
 */
std::vector<SpoPin>
detectStrandedSupplies(const topo::PowerSystem &system,
                       const std::vector<ServerAllocInput> &servers,
                       const std::vector<std::vector<Fraction>> &shares,
                       const FleetAllocation &current,
                       Watts spo_threshold);

/** The leaf input that pins a §4.4 supply to its usable consumption. */
LeafInput pinnedLeafInput(Priority priority, Watts consumption);

/**
 * Record fleet-allocation outcome metrics into @p registry (no-op when
 * nullptr): per-priority granted/denied watts, feasibility, pass count,
 * and SPO reclaimed watts. Shared by the monolithic FleetAllocator and
 * the distributed message plane so both modes export the same series.
 */
void recordAllocationTelemetry(telemetry::Registry *registry,
                               const std::vector<ServerAllocInput> &servers,
                               const FleetAllocation &alloc);

/**
 * Derive per-server enforceable caps from per-supply leaf budgets (the
 * most-constrained supply binds). @p budget_of returns the allocated
 * budget for a supply leaf given its tree index and reference; the
 * caller chooses whether budgets come from monolithic ControlTrees or
 * from the distributed plane.
 */
void deriveServerCapsFrom(
    const topo::PowerSystem &system,
    const std::vector<ServerAllocInput> &servers,
    const std::vector<std::vector<Fraction>> &shares,
    const std::function<Watts(std::size_t tree,
                              const topo::ServerSupplyRef &ref)>
        &budget_of,
    FleetAllocation &out);

/** Fleet-level allocator over a PowerSystem. */
class FleetAllocator
{
  public:
    /**
     * @param system  power system whose trees to control (not owned)
     * @param policy  priority-awareness flags for every tree
     */
    FleetAllocator(const topo::PowerSystem &system, TreePolicy policy);

    /**
     * Run the capping algorithm.
     *
     * @param servers       per-server inputs, indexed by server id matching
     *                      the ServerSupplyRefs in the power system
     * @param root_budgets  root budget per tree (indexed like
     *                      system.trees()); trees on failed feeds are
     *                      skipped regardless
     * @param enable_spo    run the stranded-power optimization second pass
     * @param spo_threshold minimum per-supply stranded watts to act on
     * @param max_passes    total allocation passes allowed: 2 is the
     *                      paper's design (one SPO re-run); higher values
     *                      iterate until no new stranded power appears,
     *                      catching cross-feed chains where reclaiming on
     *                      one feed shifts a server's binding supply and
     *                      strands budget elsewhere
     */
    FleetAllocation allocate(const std::vector<ServerAllocInput> &servers,
                             const std::vector<Watts> &root_budgets,
                             bool enable_spo = true,
                             Watts spo_threshold = 1.0,
                             int max_passes = 2);

    /** Access a control tree (e.g., to read interior node budgets). */
    const ControlTree &tree(std::size_t index) const;

    /** Number of trees. */
    std::size_t treeCount() const { return trees_.size(); }

    /**
     * Attach a metrics registry (nullptr detaches); allocate() then
     * records its outcome via recordAllocationTelemetry().
     */
    void setTelemetry(telemetry::Registry *registry)
    {
        registry_ = registry;
    }

  private:
    const topo::PowerSystem &system_;
    std::vector<std::unique_ptr<ControlTree>> trees_;
    telemetry::Registry *registry_ = nullptr;

    /** Effective per-supply shares for a server given live feeds. */
    std::vector<Fraction>
    effectiveShares(const ServerAllocInput &server,
                    std::int32_t server_id) const;

    void pushLeafInputs(const std::vector<ServerAllocInput> &servers,
                        const std::vector<std::vector<Fraction>> &shares);

    void runPass(const std::vector<Watts> &root_budgets,
                 FleetAllocation &out);

    void deriveServerCaps(const std::vector<ServerAllocInput> &servers,
                          const std::vector<std::vector<Fraction>> &shares,
                          FleetAllocation &out) const;
};

} // namespace capmaestro::ctrl

#endif // CAPMAESTRO_CONTROL_ALLOCATOR_HH
