/**
 * @file
 * A control tree mirroring one (feed, phase) power tree (paper §4.1).
 *
 * Interior topology nodes get shifting controllers; supply-port leaves get
 * the per-supply half of a capping controller. One full control iteration
 * is gather() (metrics flow upstream) followed by allocate() (budgets flow
 * downstream), after which every leaf holds the AC budget for its supply.
 *
 * Priority handling is configured per tree with two flags that implement
 * the three policies evaluated in the paper (§6.2):
 *
 *   Global Priority : leaf-parents and upper levels both priority-aware
 *   Local Priority  : leaf-parents priority-aware, hidden from upper levels
 *   No Priority     : priorities ignored everywhere
 */

#ifndef CAPMAESTRO_CONTROL_CONTROL_TREE_HH
#define CAPMAESTRO_CONTROL_CONTROL_TREE_HH

#include <map>
#include <vector>

#include "control/metrics.hh"
#include "control/shifting.hh"
#include "topology/power_tree.hh"
#include "util/units.hh"

namespace capmaestro::ctrl {

/** Priority-awareness configuration for a control tree. */
struct TreePolicy
{
    /** Leaf-parent controllers split budgets by priority. */
    bool leafPriorityAware = true;
    /** Upper-level controllers split by priority and see priorities. */
    bool upperPriorityAware = true;

    /** CapMaestro's Global Priority policy. */
    static TreePolicy globalPriority() { return {true, true}; }

    /** Dynamo-style Local Priority (leaf groups only). */
    static TreePolicy localPriority() { return {true, false}; }

    /** Priority-oblivious baseline. */
    static TreePolicy noPriority() { return {false, false}; }
};

/**
 * Input a capping controller reports for one supply leaf, already scaled
 * by the supply's share r of the server load (paper §4.3.1, level-1
 * formulas):
 *
 *   capMin     = r x Pcap_min(server)
 *   demand     = r x max(Pdemand(server), Pcap_min(server))
 *   constraint = r x Pcap_max(server)
 */
struct LeafInput
{
    Priority priority = 0;
    Watts capMin = 0.0;
    Watts demand = 0.0;
    Watts constraint = 0.0;
    /** False when the supply or its feed is dead; metrics become zero. */
    bool live = true;
};

/** Outcome of one allocate() pass. */
struct AllocationOutcome
{
    /**
     * True when every node could cover its children's Pcap_min floors.
     * When false, floors were scaled best-effort and servers may receive
     * unenforceable budgets.
     */
    bool feasible = true;
    /** Power left unallocated at the root (after step 4). */
    Watts unallocatedAtRoot = 0.0;
};

/** Control tree over one physical (feed, phase) power tree. */
class ControlTree
{
  public:
    /**
     * @param tree    physical tree to mirror (not owned; must outlive this)
     * @param policy  priority-awareness flags
     */
    ControlTree(const topo::PowerTree &tree, TreePolicy policy);

    /** Set (replace) a leaf's reported metrics by supply reference. */
    void setLeafInput(const topo::ServerSupplyRef &ref,
                      const LeafInput &input);

    /** Mark every leaf dead (used when this tree's feed fails). */
    void clearAllLeaves();

    /** Metrics-gathering phase: recompute all node metrics bottom-up. */
    void gather();

    /**
     * Budgeting phase: split @p root_budget down the tree. The effective
     * root budget is min(root_budget, root node limit). gather() must
     * have run since the last leaf-input change.
     */
    AllocationOutcome allocate(Watts root_budget);

    /** Budget assigned to the supply leaf for @p ref (after allocate()). */
    Watts leafBudget(const topo::ServerSupplyRef &ref) const;

    /** Budget assigned to any node by topo node id (after allocate()). */
    Watts nodeBudget(topo::NodeId id) const;

    /** Metrics of any node by topo node id (after gather()). */
    const NodeMetrics &nodeMetrics(topo::NodeId id) const;

    /** Root metrics (the whole tree's summary). */
    const NodeMetrics &rootMetrics() const;

    /** All supply refs with leaves in this tree. */
    std::vector<topo::ServerSupplyRef> leafRefs() const;

    /** The mirrored physical tree. */
    const topo::PowerTree &topoTree() const { return tree_; }

    /** Tree policy. */
    const TreePolicy &policy() const { return policy_; }

    /**
     * Number of parent->child metric/budget messages one full iteration
     * exchanges (for the scalability analysis of §5).
     */
    std::size_t messagesPerIteration() const;

  private:
    struct CtrlNode
    {
        Watts limit = topo::kUnlimited;
        bool isLeaf = false;
        bool budgetByPriority = true;
        bool reportByPriority = true;
        LeafInput leaf;
        NodeMetrics metrics;
        Watts budget = 0.0;
    };

    const topo::PowerTree &tree_;
    TreePolicy policy_;
    /** Indexed by topo::NodeId. */
    std::vector<CtrlNode> nodes_;
    /** (server, supply) -> topo node id. */
    std::map<std::pair<std::int32_t, std::int32_t>, topo::NodeId> leafIndex_;

    void gatherNode(topo::NodeId id);
    void budgetNode(topo::NodeId id, AllocationOutcome &outcome);
};

} // namespace capmaestro::ctrl

#endif // CAPMAESTRO_CONTROL_CONTROL_TREE_HH
