/**
 * @file
 * Per-priority power metrics exchanged between controllers (paper §4.3.1).
 *
 * Each node of a control tree summarizes the servers beneath it with, per
 * priority level j:
 *
 *   - Pcap_min(j):  minimum budget that must be allocated to priority-j
 *                   servers under the node,
 *   - Pdemand(j):   their total power demand,
 *   - Prequest(j):  the budget they are allowed to request given the node's
 *                   power limit and the needs of other priority levels,
 *
 * plus a single Pconstraint: the largest budget the node can usefully
 * absorb (its own limit and its children's constraints).
 *
 * Conveying only these per-priority summaries upstream — instead of
 * per-server data — is what makes the algorithm scale (§4.1).
 */

#ifndef CAPMAESTRO_CONTROL_METRICS_HH
#define CAPMAESTRO_CONTROL_METRICS_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace capmaestro::ctrl {

/** Metrics for one priority class at one node. */
struct ClassMetrics
{
    Priority priority = 0;
    /** Minimum total budget owed to this class (Pcap_min). */
    Watts capMin = 0.0;
    /** Total uncapped demand of this class (Pdemand). */
    Watts demand = 0.0;
    /** Budget this class requests given limits (Prequest). */
    Watts request = 0.0;
};

/**
 * The full metric summary a node reports to its parent: priority classes
 * in descending priority order, plus the node constraint.
 */
class NodeMetrics
{
  public:
    NodeMetrics() = default;

    /** Classes in strictly descending priority order. */
    const std::vector<ClassMetrics> &classes() const { return classes_; }

    /** Mutable access (keeps ordering responsibilities with the caller). */
    std::vector<ClassMetrics> &classes() { return classes_; }

    /** Pconstraint: maximum budget the node can absorb. */
    Watts constraint() const { return constraint_; }

    /** Set Pconstraint. */
    void setConstraint(Watts c) { constraint_ = c; }

    /**
     * Add (or merge into) the class for @p priority, accumulating capMin,
     * demand, and request. Keeps descending order.
     */
    void accumulate(Priority priority, Watts cap_min, Watts demand,
                    Watts request);

    /** Sum of capMin across classes. */
    Watts totalCapMin() const;

    /** Sum of demand across classes. */
    Watts totalDemand() const;

    /** Sum of request across classes. */
    Watts totalRequest() const;

    /** Lookup a class; nullptr when absent. */
    const ClassMetrics *findClass(Priority priority) const;

    /**
     * Collapse all classes into a single priority-0 class (used when a
     * controller is configured to hide priorities from its parent, i.e.,
     * the No-Priority and Local-Priority baselines). The merged request is
     * additionally clipped to the constraint.
     */
    NodeMetrics collapsed() const;

    /** True when there are no classes (dead/failed leaf). */
    bool empty() const { return classes_.empty(); }

    /** Reset to the empty state with zero constraint. */
    void clear();

    /** Debug rendering. */
    std::string toString() const;

  private:
    std::vector<ClassMetrics> classes_;
    Watts constraint_ = 0.0;
};

} // namespace capmaestro::ctrl

#endif // CAPMAESTRO_CONTROL_METRICS_HH
