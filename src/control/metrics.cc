#include "control/metrics.hh"

#include <algorithm>
#include <cstdio>

namespace capmaestro::ctrl {

void
NodeMetrics::accumulate(Priority priority, Watts cap_min, Watts demand,
                        Watts request)
{
    // Find insertion point keeping strictly descending priority order.
    auto it = std::lower_bound(
        classes_.begin(), classes_.end(), priority,
        [](const ClassMetrics &c, Priority p) { return c.priority > p; });
    if (it != classes_.end() && it->priority == priority) {
        it->capMin += cap_min;
        it->demand += demand;
        it->request += request;
    } else {
        classes_.insert(it, ClassMetrics{priority, cap_min, demand,
                                         request});
    }
}

Watts
NodeMetrics::totalCapMin() const
{
    Watts sum = 0.0;
    for (const auto &c : classes_)
        sum += c.capMin;
    return sum;
}

Watts
NodeMetrics::totalDemand() const
{
    Watts sum = 0.0;
    for (const auto &c : classes_)
        sum += c.demand;
    return sum;
}

Watts
NodeMetrics::totalRequest() const
{
    Watts sum = 0.0;
    for (const auto &c : classes_)
        sum += c.request;
    return sum;
}

const ClassMetrics *
NodeMetrics::findClass(Priority priority) const
{
    for (const auto &c : classes_) {
        if (c.priority == priority)
            return &c;
    }
    return nullptr;
}

NodeMetrics
NodeMetrics::collapsed() const
{
    NodeMetrics out;
    out.setConstraint(constraint_);
    if (classes_.empty())
        return out;
    const Watts request = std::min(totalRequest(), constraint_);
    out.accumulate(0, totalCapMin(), totalDemand(), request);
    return out;
}

void
NodeMetrics::clear()
{
    classes_.clear();
    constraint_ = 0.0;
}

std::string
NodeMetrics::toString() const
{
    std::string out = "{";
    char buf[128];
    for (const auto &c : classes_) {
        std::snprintf(buf, sizeof(buf),
                      " [p%d min=%.1f dem=%.1f req=%.1f]", c.priority,
                      c.capMin, c.demand, c.request);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), " constraint=%.1f }", constraint_);
    out += buf;
    return out;
}

} // namespace capmaestro::ctrl
