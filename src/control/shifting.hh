/**
 * @file
 * The shifting-controller algorithms of paper §4.3: per-priority metric
 * aggregation (metrics-gathering phase) and the four-step budget split
 * (budgeting phase). These are pure functions over child metrics so they
 * can be tested exhaustively in isolation; ControlTree wires them into the
 * hierarchy.
 */

#ifndef CAPMAESTRO_CONTROL_SHIFTING_HH
#define CAPMAESTRO_CONTROL_SHIFTING_HH

#include <vector>

#include "control/metrics.hh"
#include "util/units.hh"

namespace capmaestro::ctrl {

/**
 * Water-fill @p amount across items with upper bounds @p caps and
 * proportional weights @p weights. Items whose proportional share exceeds
 * their cap are clipped and the excess is redistributed among the rest.
 * When all weights are zero, capacity headroom is used as the weight.
 *
 * @return per-item allocation; sum <= amount; alloc[i] <= caps[i].
 */
std::vector<Watts> waterfill(Watts amount, const std::vector<Watts> &caps,
                             const std::vector<Watts> &weights);

/**
 * Metrics-gathering phase at one shifting controller.
 *
 * Aggregates child metrics by priority, then computes this node's
 * Prequest(j) top-down in priority order:
 *
 *   Prequest(j) = min( limit - sum_{h>j} Prequest(h) - sum_{l<j} Pcap_min(l),
 *                      sum_k Prequest_k(j) )
 *
 * clamped below at Pcap_min(j) (the floor is owed regardless), and
 * Pconstraint = min(limit, sum_k Pconstraint_k).
 *
 * @param children            metrics reported by each child
 * @param limit               this node's power limit (kUnlimited-safe)
 * @param report_by_priority  when false, the returned metrics are collapsed
 *                            to a single class (hides priorities upstream)
 */
NodeMetrics gatherMetrics(const std::vector<NodeMetrics> &children,
                          Watts limit, bool report_by_priority);

/** Result of the budgeting phase at one node. */
struct BudgetSplit
{
    /** Budget assigned to each child (same order as the input). */
    std::vector<Watts> childBudgets;
    /**
     * False when the budget could not even cover the children's Pcap_min
     * floors (the floors are then scaled proportionally).
     */
    bool feasible = true;
    /** Budget left unassigned after step 4 (children at constraint). */
    Watts unallocated = 0.0;
};

/**
 * Budgeting phase at one shifting controller (paper §4.3.2).
 *
 *  1. Give every child its Pcap_min floor (all classes).
 *  2. Priority levels in descending order: grant each child its extra
 *     request (Prequest - Pcap_min) while the budget lasts.
 *  3. At the first level that does not fit, water-fill the remainder
 *     proportionally to (Pdemand - Pcap_min).
 *  4. Any leftover is assigned up to each child's Pconstraint.
 *
 * @param budget              power available at this node
 * @param children            metrics reported by each child
 * @param budget_by_priority  when false, each child's classes are merged
 *                            before splitting (No-Priority behavior)
 */
BudgetSplit budgetChildren(Watts budget,
                           const std::vector<NodeMetrics> &children,
                           bool budget_by_priority);

} // namespace capmaestro::ctrl

#endif // CAPMAESTRO_CONTROL_SHIFTING_HH
