/**
 * @file
 * Server power-demand estimation from throttle/power telemetry (paper §5).
 *
 * The capping controller regresses per-second observations of total server
 * AC power against the node-manager throttle level over a 16-sample window
 * and extrapolates to 0 % throttle to estimate the uncapped demand. When
 * the server is observed unthrottled the measured power is used directly.
 * When the window is degenerate (steady capped state, no throttle spread)
 * the estimator holds its last good estimate rather than collapsing to the
 * capped power.
 */

#ifndef CAPMAESTRO_CONTROL_DEMAND_ESTIMATOR_HH
#define CAPMAESTRO_CONTROL_DEMAND_ESTIMATOR_HH

#include "util/regression.hh"
#include "util/units.hh"

namespace capmaestro::ctrl {

/** Estimation strategies (the paper's method plus ablation baselines). */
enum class DemandEstimatorMode {
    /** §5: regression vs. throttle, extrapolated to 0 % (default). */
    Regression,
    /**
     * Naive baseline: the demand estimate is simply the latest windowed
     * power measurement. Under a cap this ratchets the estimate down to
     * the capped power, so released budget is never re-requested — the
     * failure mode that motivates the paper's estimator (ablation A7).
     */
    LastMeasured,
};

/** Tunables for DemandEstimator. */
struct DemandEstimatorConfig
{
    DemandEstimatorMode mode = DemandEstimatorMode::Regression;
    /** Regression window length in samples (paper: 16 s at 1 Hz). */
    std::size_t windowLength = 16;
    /** Throttle below which the server counts as unthrottled. */
    double unthrottledLevel = 0.005;
    /** Minimum x-spread (throttle stddev proxy) for a usable fit. */
    double minThrottleSpread = 0.01;
    /** Hard bounds applied to every estimate (server capabilities). */
    Watts minEstimate = 0.0;
    Watts maxEstimate = 1e9;
};

/** Online demand estimator for one server. */
class DemandEstimator
{
  public:
    explicit DemandEstimator(DemandEstimatorConfig config = {});

    /** Feed one telemetry sample (typically once per second). */
    void addSample(double throttle_level, Watts total_ac_power);

    /**
     * Current demand estimate. Falls back to the last good estimate, and
     * before any good estimate exists, to the largest observed power.
     */
    Watts estimate() const;

    /** Drop all history (e.g., after a workload migration). */
    void reset();

    /** True once at least one sample has been observed. */
    bool primed() const { return primed_; }

  private:
    DemandEstimatorConfig config_;
    util::SlidingRegression window_;
    Watts sticky_ = 0.0;
    Watts maxObserved_ = 0.0;
    bool primed_ = false;

    /** Recompute sticky_ from the current window. */
    void refresh();
};

} // namespace capmaestro::ctrl

#endif // CAPMAESTRO_CONTROL_DEMAND_ESTIMATOR_HH
