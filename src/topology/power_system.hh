/**
 * @file
 * A complete power-delivery system: one PowerTree per (feed, phase), with
 * feed-level failure state and supply-port lookup.
 *
 * For an N+N redundant center with two feeds and three phases this holds
 * six trees (paper §4.1). Testbed topologies use a single feed and phase.
 */

#ifndef CAPMAESTRO_TOPOLOGY_POWER_SYSTEM_HH
#define CAPMAESTRO_TOPOLOGY_POWER_SYSTEM_HH

#include <map>
#include <memory>
#include <vector>

#include "topology/power_tree.hh"

namespace capmaestro::topo {

/** Location of a supply port: which tree and which node within it. */
struct SupplyPortLocation
{
    /** Index of the tree in PowerSystem::trees(). */
    std::size_t tree = 0;
    /** Node id within that tree. */
    NodeId node = kNoNode;
};

/** Collection of per-(feed, phase) power trees plus feed failure state. */
class PowerSystem
{
  public:
    /** @param feeds number of independent feeds (>= 1) */
    explicit PowerSystem(int feeds);

    /** Add a tree; its feed index must be < feeds(). Returns tree index. */
    std::size_t addTree(std::unique_ptr<PowerTree> tree);

    /** Number of feeds. */
    int feeds() const { return static_cast<int>(feedFailed_.size()); }

    /** All trees. */
    const std::vector<std::unique_ptr<PowerTree>> &trees() const
    {
        return trees_;
    }

    /** Tree accessor (checked). */
    const PowerTree &tree(std::size_t index) const;

    /** Mutable tree accessor (checked). */
    PowerTree &tree(std::size_t index);

    /** Mark an entire feed as failed (all its trees dead). */
    void failFeed(int feed);

    /** Restore a failed feed. */
    void restoreFeed(int feed);

    /** True when @p feed is failed. */
    bool feedFailed(int feed) const;

    /** Number of currently live feeds. */
    int liveFeeds() const;

    /**
     * Locations of every port of @p server across all live trees,
     * keyed by supply index. Failed feeds are excluded.
     */
    std::map<std::int32_t, SupplyPortLocation>
    livePortsOf(std::int32_t server) const;

    /**
     * Validate every tree and the cross-tree invariant that no
     * (server, supply) pair appears in two trees. Returns total ports.
     */
    std::size_t validate() const;

  private:
    std::vector<std::unique_ptr<PowerTree>> trees_;
    std::vector<bool> feedFailed_;
    /** (server, supply) -> location cache, built on insertion. */
    std::map<std::pair<std::int32_t, std::int32_t>, SupplyPortLocation>
        portIndex_;
};

} // namespace capmaestro::topo

#endif // CAPMAESTRO_TOPOLOGY_POWER_SYSTEM_HH
