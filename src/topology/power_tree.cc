#include "topology/power_tree.hh"

#include <set>

#include "util/logging.hh"

namespace capmaestro::topo {

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Contractual: return "contractual";
      case NodeKind::Ats:         return "ats";
      case NodeKind::Transformer: return "transformer";
      case NodeKind::Ups:         return "ups";
      case NodeKind::Rpp:         return "rpp";
      case NodeKind::Cdu:         return "cdu";
      case NodeKind::Breaker:     return "breaker";
      case NodeKind::SupplyPort:  return "supply-port";
    }
    return "unknown";
}

PowerTree::PowerTree(int feed, int phase, std::string name)
    : feed_(feed), phase_(phase), name_(std::move(name))
{
}

NodeId
PowerTree::allocate(NodeId parent, NodeKind kind, const std::string &name,
                    Watts rating, Fraction derate)
{
    TopoNode n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.parent = parent;
    n.kind = kind;
    n.name = name;
    n.rating = rating;
    n.derate = derate;
    nodes_.push_back(std::move(n));
    if (parent != kNoNode)
        node(parent).children.push_back(nodes_.back().id);
    return nodes_.back().id;
}

NodeId
PowerTree::makeRoot(NodeKind kind, const std::string &name, Watts rating,
                    Fraction derate)
{
    if (root_ != kNoNode)
        util::fatal("PowerTree %s: root already created", name_.c_str());
    root_ = allocate(kNoNode, kind, name, rating, derate);
    return root_;
}

NodeId
PowerTree::addChild(NodeId parent, NodeKind kind, const std::string &name,
                    Watts rating, Fraction derate)
{
    if (kind == NodeKind::SupplyPort)
        util::fatal("use addSupplyPort() for supply-port leaves");
    node(parent); // bounds check
    return allocate(parent, kind, name, rating, derate);
}

NodeId
PowerTree::addSupplyPort(NodeId parent, const std::string &name,
                         ServerSupplyRef ref, Watts rating, Fraction derate)
{
    node(parent); // bounds check
    const NodeId id =
        allocate(parent, NodeKind::SupplyPort, name, rating, derate);
    nodes_[static_cast<std::size_t>(id)].supplyRef = ref;
    return id;
}

const TopoNode &
PowerTree::node(NodeId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
        util::panic("PowerTree %s: bad node id %d", name_.c_str(), id);
    return nodes_[static_cast<std::size_t>(id)];
}

TopoNode &
PowerTree::node(NodeId id)
{
    return const_cast<TopoNode &>(
        static_cast<const PowerTree *>(this)->node(id));
}

void
PowerTree::forEach(const std::function<void(const TopoNode &)> &fn) const
{
    if (root_ == kNoNode)
        return;
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        const TopoNode &n = node(id);
        fn(n);
        for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
            stack.push_back(*it);
    }
}

std::vector<ServerSupplyRef>
PowerTree::suppliesUnder(NodeId id) const
{
    std::vector<ServerSupplyRef> out;
    std::vector<NodeId> stack{id};
    while (!stack.empty()) {
        const TopoNode &n = node(stack.back());
        stack.pop_back();
        if (n.supplyRef)
            out.push_back(*n.supplyRef);
        for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
            stack.push_back(*it);
    }
    return out;
}

std::vector<NodeId>
PowerTree::supplyPorts() const
{
    std::vector<NodeId> out;
    forEach([&out](const TopoNode &n) {
        if (n.kind == NodeKind::SupplyPort)
            out.push_back(n.id);
    });
    return out;
}

std::size_t
PowerTree::validate() const
{
    if (root_ == kNoNode)
        util::fatal("PowerTree %s: no root", name_.c_str());

    std::set<std::pair<std::int32_t, std::int32_t>> seen_refs;
    std::size_t ports = 0;
    forEach([&](const TopoNode &n) {
        if (n.rating != kUnlimited && n.rating <= 0.0) {
            util::fatal("PowerTree %s: node %s has non-positive rating",
                        name_.c_str(), n.name.c_str());
        }
        if (n.derate <= 0.0 || n.derate > 1.0) {
            util::fatal("PowerTree %s: node %s derate %f outside (0,1]",
                        name_.c_str(), n.name.c_str(), n.derate);
        }
        const bool is_port = n.kind == NodeKind::SupplyPort;
        if (is_port != n.supplyRef.has_value()) {
            util::fatal("PowerTree %s: node %s supply-ref/kind mismatch",
                        name_.c_str(), n.name.c_str());
        }
        if (is_port) {
            ++ports;
            if (!n.children.empty()) {
                util::fatal("PowerTree %s: supply port %s has children",
                            name_.c_str(), n.name.c_str());
            }
            auto key = std::make_pair(n.supplyRef->server,
                                      n.supplyRef->supply);
            if (!seen_refs.insert(key).second) {
                util::fatal("PowerTree %s: duplicate supply ref %d.%d",
                            name_.c_str(), n.supplyRef->server,
                            n.supplyRef->supply);
            }
        } else if (n.children.empty()) {
            util::warn("PowerTree %s: interior node %s has no children",
                       name_.c_str(), n.name.c_str());
        }
    });
    return ports;
}

} // namespace capmaestro::topo
