#include "topology/analysis.hh"

namespace capmaestro::topo {

std::vector<SelectivityViolation>
checkSelectivity(const PowerTree &tree)
{
    std::vector<SelectivityViolation> out;
    tree.forEach([&](const TopoNode &parent) {
        if (parent.limit() == kUnlimited)
            return;
        for (const NodeId c : parent.children) {
            const TopoNode &child = tree.node(c);
            if (child.kind == NodeKind::SupplyPort
                || child.limit() == kUnlimited) {
                continue;
            }
            if (child.limit() >= parent.limit()) {
                out.push_back({parent.id, c,
                               child.limit() / parent.limit()});
            }
        }
    });
    return out;
}

std::vector<Oversubscription>
oversubscriptionReport(const PowerTree &tree)
{
    std::vector<Oversubscription> out;
    tree.forEach([&](const TopoNode &n) {
        if (n.kind == NodeKind::SupplyPort || n.children.empty()
            || n.limit() == kUnlimited) {
            return;
        }
        Oversubscription o;
        o.node = n.id;
        o.ownLimit = n.limit();
        bool any_finite = false;
        for (const NodeId c : n.children) {
            const Watts child_limit = tree.node(c).limit();
            if (child_limit != kUnlimited) {
                o.childLimitSum += child_limit;
                any_finite = true;
            }
        }
        if (!any_finite)
            return;
        o.ratio = o.childLimitSum / o.ownLimit;
        out.push_back(o);
    });
    return out;
}

double
provisioningRatio(const PowerTree &tree)
{
    if (tree.root() == kNoNode)
        return 0.0;
    const Watts root_limit = tree.node(tree.root()).limit();
    if (root_limit == kUnlimited || root_limit <= 0.0)
        return 0.0;

    // Leaf-level capacity: for each leaf-parent, its own limit bounds
    // what its leaves can draw; sum those bounds.
    Watts edge_capacity = 0.0;
    tree.forEach([&](const TopoNode &n) {
        bool leaf_parent = false;
        for (const NodeId c : n.children) {
            if (tree.node(c).kind == NodeKind::SupplyPort)
                leaf_parent = true;
        }
        if (leaf_parent && n.limit() != kUnlimited)
            edge_capacity += n.limit();
    });
    return edge_capacity / root_limit;
}

} // namespace capmaestro::topo
