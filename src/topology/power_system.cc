#include "topology/power_system.hh"

#include "util/logging.hh"

namespace capmaestro::topo {

PowerSystem::PowerSystem(int feeds)
{
    if (feeds < 1)
        util::fatal("PowerSystem needs at least one feed");
    feedFailed_.assign(static_cast<std::size_t>(feeds), false);
}

std::size_t
PowerSystem::addTree(std::unique_ptr<PowerTree> tree)
{
    if (!tree)
        util::panic("PowerSystem::addTree: null tree");
    if (tree->feed() < 0 || tree->feed() >= feeds()) {
        util::fatal("PowerSystem: tree %s feed %d out of range",
                    tree->name().c_str(), tree->feed());
    }
    const std::size_t index = trees_.size();
    tree->forEach([&](const TopoNode &n) {
        if (n.supplyRef) {
            auto key = std::make_pair(n.supplyRef->server,
                                      n.supplyRef->supply);
            auto [it, inserted] =
                portIndex_.emplace(key, SupplyPortLocation{index, n.id});
            if (!inserted) {
                util::fatal("PowerSystem: supply %d.%d appears in multiple "
                            "trees", n.supplyRef->server,
                            n.supplyRef->supply);
            }
        }
    });
    trees_.push_back(std::move(tree));
    return index;
}

const PowerTree &
PowerSystem::tree(std::size_t index) const
{
    if (index >= trees_.size())
        util::panic("PowerSystem: bad tree index %zu", index);
    return *trees_[index];
}

PowerTree &
PowerSystem::tree(std::size_t index)
{
    return const_cast<PowerTree &>(
        static_cast<const PowerSystem *>(this)->tree(index));
}

void
PowerSystem::failFeed(int feed)
{
    if (feed < 0 || feed >= feeds())
        util::fatal("PowerSystem::failFeed: bad feed %d", feed);
    feedFailed_[static_cast<std::size_t>(feed)] = true;
}

void
PowerSystem::restoreFeed(int feed)
{
    if (feed < 0 || feed >= feeds())
        util::fatal("PowerSystem::restoreFeed: bad feed %d", feed);
    feedFailed_[static_cast<std::size_t>(feed)] = false;
}

bool
PowerSystem::feedFailed(int feed) const
{
    if (feed < 0 || feed >= feeds())
        util::fatal("PowerSystem::feedFailed: bad feed %d", feed);
    return feedFailed_[static_cast<std::size_t>(feed)];
}

int
PowerSystem::liveFeeds() const
{
    int live = 0;
    for (bool failed : feedFailed_)
        live += failed ? 0 : 1;
    return live;
}

std::map<std::int32_t, SupplyPortLocation>
PowerSystem::livePortsOf(std::int32_t server) const
{
    std::map<std::int32_t, SupplyPortLocation> out;
    // portIndex_ keys are ordered (server, supply) pairs; scan the range.
    auto it = portIndex_.lower_bound({server, 0});
    for (; it != portIndex_.end() && it->first.first == server; ++it) {
        const auto &loc = it->second;
        if (!feedFailed_[static_cast<std::size_t>(
                trees_[loc.tree]->feed())]) {
            out.emplace(it->first.second, loc);
        }
    }
    return out;
}

std::size_t
PowerSystem::validate() const
{
    std::size_t total = 0;
    for (const auto &t : trees_)
        total += t->validate();
    return total;
}

} // namespace capmaestro::topo
