#include "topology/audit.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace capmaestro::topo {

TopologyAuditor::TopologyAuditor(const PowerTree &tree, Watts tolerance)
    : tree_(tree), tolerance_(tolerance)
{
    if (tolerance_ < 0.0)
        util::fatal("TopologyAuditor: negative tolerance");
}

NodeLoadMap
TopologyAuditor::predictLoads(const SupplyLoadMap &loads) const
{
    NodeLoadMap predicted;
    // Post-order accumulation: child loads sum into parents. Walk nodes
    // in reverse id order; ids are assigned parent-before-child, so a
    // reverse sweep sees every child before its parent.
    const auto size = static_cast<NodeId>(tree_.size());
    for (NodeId id = size - 1; id >= 0; --id) {
        const TopoNode &n = tree_.node(id);
        Watts load = 0.0;
        if (n.supplyRef) {
            const auto it = loads.find(
                {n.supplyRef->server, n.supplyRef->supply});
            load = it != loads.end() ? it->second : 0.0;
        }
        for (const NodeId c : n.children)
            load += predicted[c];
        predicted[id] = load;
    }
    return predicted;
}

Watts
TopologyAuditor::totalResidual(const NodeLoadMap &predicted,
                               const NodeLoadMap &measured) const
{
    Watts residual = 0.0;
    for (const auto &[node, value] : measured) {
        const auto it = predicted.find(node);
        const Watts p = it != predicted.end() ? it->second : 0.0;
        const Watts err = std::fabs(value - p);
        if (err > tolerance_)
            residual += err;
    }
    return residual;
}

AuditReport
TopologyAuditor::audit(const SupplyLoadMap &loads,
                       const NodeLoadMap &measured) const
{
    AuditReport report;
    const NodeLoadMap predicted = predictLoads(loads);

    for (const auto &[node, value] : measured) {
        const auto it = predicted.find(node);
        const Watts p = it != predicted.end() ? it->second : 0.0;
        if (std::fabs(value - p) > tolerance_)
            report.discrepancies.push_back({node, p, value});
    }
    if (report.discrepancies.empty())
        return report;

    // Single-move hypothesis search: try re-homing each supply to each
    // other leaf-parent and keep the move with the lowest residual.
    // Complexity O(ports x parents x metered); fine at audit cadence.
    std::vector<NodeId> leaf_parents;
    tree_.forEach([&](const TopoNode &n) {
        for (const NodeId c : n.children) {
            if (tree_.node(c).kind == NodeKind::SupplyPort) {
                leaf_parents.push_back(n.id);
                break;
            }
        }
    });

    const Watts base_residual = totalResidual(predicted, measured);
    Watts best_residual = base_residual;
    MiswiringHypothesis best;

    for (const NodeId port : tree_.supplyPorts()) {
        const TopoNode &leaf = tree_.node(port);
        const NodeId claimed = leaf.parent;
        const auto load_it = loads.find(
            {leaf.supplyRef->server, leaf.supplyRef->supply});
        const Watts load =
            load_it != loads.end() ? load_it->second : 0.0;
        if (load <= tolerance_)
            continue; // an unloaded supply cannot be located electrically

        for (const NodeId candidate : leaf_parents) {
            if (candidate == claimed)
                continue;
            // Moving the supply shifts its load off every ancestor of
            // the claimed parent and onto every ancestor of the
            // candidate. Apply the delta to a copy of the prediction.
            NodeLoadMap adjusted = predicted;
            for (NodeId a = claimed; a != kNoNode;
                 a = tree_.node(a).parent) {
                adjusted[a] -= load;
            }
            for (NodeId a = candidate; a != kNoNode;
                 a = tree_.node(a).parent) {
                adjusted[a] += load;
            }
            const Watts residual = totalResidual(adjusted, measured);
            if (residual < best_residual - 1e-9) {
                best_residual = residual;
                best.supply = *leaf.supplyRef;
                best.claimedParent = claimed;
                best.actualParent = candidate;
                best.residual = residual;
            }
        }
    }

    if (best.actualParent != kNoNode
        && best_residual < 0.5 * base_residual) {
        report.hypothesis = best;
    }
    return report;
}

} // namespace capmaestro::topo
