/**
 * @file
 * Static topology analysis: breaker-coordination (selectivity) checks
 * and oversubscription reporting.
 *
 * Protection coordination requires every downstream breaker to be rated
 * below its upstream device, so faults trip the nearest breaker instead
 * of cascading (paper §2.1 motivates breakers precisely as cascade
 * guards). Oversubscription — the ratio of the children's combined
 * limits to a node's own limit — quantifies how much a level relies on
 * power capping: a ratio of 1 means no oversubscription; the Table 4
 * center runs CDU-level ratios well above 1 by design.
 */

#ifndef CAPMAESTRO_TOPOLOGY_ANALYSIS_HH
#define CAPMAESTRO_TOPOLOGY_ANALYSIS_HH

#include <string>
#include <vector>

#include "topology/power_tree.hh"

namespace capmaestro::topo {

/** A selectivity (coordination) violation. */
struct SelectivityViolation
{
    NodeId parent = kNoNode;
    NodeId child = kNoNode;
    /** child limit / parent limit (>= 1 means miscoordinated). */
    double ratio = 0.0;
};

/**
 * Find parent/child pairs where the child's continuous limit is not
 * strictly below the parent's (both finite): such a child cannot be
 * guaranteed to trip before its parent. Pass-through (unlimited) nodes
 * are skipped.
 */
std::vector<SelectivityViolation>
checkSelectivity(const PowerTree &tree);

/** Oversubscription at one interior node. */
struct Oversubscription
{
    NodeId node = kNoNode;
    Watts ownLimit = 0.0;
    /** Sum of the children's limits (kUnlimited children excluded). */
    Watts childLimitSum = 0.0;
    /** childLimitSum / ownLimit; 0 when the node itself is unlimited. */
    double ratio = 0.0;
};

/**
 * Oversubscription report for every interior node with a finite limit
 * and at least one finite-limit child, in pre-order.
 */
std::vector<Oversubscription>
oversubscriptionReport(const PowerTree &tree);

/**
 * The tree's provisioned-to-deliverable ratio: the sum of leaf-level
 * limits over the root's effective limit. This is the "how many more
 * servers did capping let us connect" number at topology level.
 */
double provisioningRatio(const PowerTree &tree);

} // namespace capmaestro::topo

#endif // CAPMAESTRO_TOPOLOGY_ANALYSIS_HH
