/**
 * @file
 * The per-(feed, phase) power distribution tree.
 *
 * CapMaestro replicates its control tree for each power feed and each phase
 * (paper §4.1); this class is the *physical* model a control tree mirrors.
 * Interior nodes are distribution devices (transformer, RPP, CDU, breaker,
 * contractual point) with a per-phase power rating and a continuous-load
 * derating factor; leaves are server supply ports referencing one power
 * supply of one server.
 */

#ifndef CAPMAESTRO_TOPOLOGY_POWER_TREE_HH
#define CAPMAESTRO_TOPOLOGY_POWER_TREE_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hh"

namespace capmaestro::topo {

/** Index of a node within its PowerTree. */
using NodeId = std::int32_t;

/** Sentinel for "no node". */
constexpr NodeId kNoNode = -1;

/** Rating value meaning "no physical limit at this node". */
constexpr Watts kUnlimited = std::numeric_limits<Watts>::infinity();

/** The kind of physical equipment a tree node models. */
enum class NodeKind {
    Contractual, ///< utility contractual-draw point (budget, not hardware)
    Ats,         ///< automatic transfer switch (usually pass-through)
    Transformer, ///< step-down transformer
    Ups,         ///< uninterruptible power supply (usually pass-through)
    Rpp,         ///< remote power panel (branch circuit breakers)
    Cdu,         ///< cabinet distribution unit (rack PDU), per-phase breaker
    Breaker,     ///< a bare circuit breaker (testbed topologies)
    SupplyPort,  ///< leaf: outlet feeding one server power supply
};

/** Human-readable name of a NodeKind. */
const char *nodeKindName(NodeKind kind);

/** Reference from a supply-port leaf to a server's power supply. */
struct ServerSupplyRef
{
    /** Index of the server in the owning fleet. */
    std::int32_t server = -1;
    /** Index of the supply within the server (0-based). */
    std::int32_t supply = -1;

    bool operator==(const ServerSupplyRef &) const = default;
};

/** One node of a power distribution tree. */
struct TopoNode
{
    NodeId id = kNoNode;
    NodeId parent = kNoNode;
    NodeKind kind = NodeKind::Breaker;
    std::string name;
    /** Device rated power for this phase; kUnlimited for pass-throughs. */
    Watts rating = kUnlimited;
    /** Allowed continuous-load fraction of the rating (NEC-style). */
    Fraction derate = 1.0;
    /** Leaf payload; present iff kind == SupplyPort. */
    std::optional<ServerSupplyRef> supplyRef;
    std::vector<NodeId> children;

    /** Effective continuous power limit (rating x derate). */
    Watts limit() const
    {
        return rating == kUnlimited ? kUnlimited : rating * derate;
    }
};

/**
 * An immutable-shape tree of TopoNodes (nodes are added, never removed).
 *
 * The tree records which feed and phase it belongs to so that diagnostics
 * and control-tree construction can label controllers unambiguously.
 */
class PowerTree
{
  public:
    /**
     * @param feed   feed index (0 = A/X side, 1 = B/Y side, ...)
     * @param phase  phase index (0..2 for three-phase distribution)
     * @param name   label for diagnostics, e.g. "feedA.phase0"
     */
    PowerTree(int feed, int phase, std::string name);

    /** Create the root node. Must be called exactly once, first. */
    NodeId makeRoot(NodeKind kind, const std::string &name, Watts rating,
                    Fraction derate = 1.0);

    /** Add an interior node beneath @p parent. */
    NodeId addChild(NodeId parent, NodeKind kind, const std::string &name,
                    Watts rating, Fraction derate = 1.0);

    /** Add a supply-port leaf beneath @p parent. */
    NodeId addSupplyPort(NodeId parent, const std::string &name,
                         ServerSupplyRef ref,
                         Watts rating = kUnlimited, Fraction derate = 1.0);

    /** Node accessor (checked). */
    const TopoNode &node(NodeId id) const;

    /** Mutable node accessor (checked). */
    TopoNode &node(NodeId id);

    /** Root node id (kNoNode before makeRoot). */
    NodeId root() const { return root_; }

    /** Total number of nodes. */
    std::size_t size() const { return nodes_.size(); }

    /** Feed index this tree belongs to. */
    int feed() const { return feed_; }

    /** Phase index this tree belongs to. */
    int phase() const { return phase_; }

    /** Tree label. */
    const std::string &name() const { return name_; }

    /** Pre-order traversal applying @p fn to every node. */
    void forEach(const std::function<void(const TopoNode &)> &fn) const;

    /** All supply-port refs in the subtree under @p id (pre-order). */
    std::vector<ServerSupplyRef> suppliesUnder(NodeId id) const;

    /** All supply-port node ids (whole tree). */
    std::vector<NodeId> supplyPorts() const;

    /**
     * Validate structural invariants: a root exists, ratings are positive,
     * derates in (0, 1], exactly the SupplyPort nodes carry supply refs,
     * interior nodes have children, and supply refs are unique.
     * Calls fatal() on violation; returns the number of supply ports.
     */
    std::size_t validate() const;

  private:
    int feed_;
    int phase_;
    std::string name_;
    NodeId root_ = kNoNode;
    std::vector<TopoNode> nodes_;

    NodeId allocate(NodeId parent, NodeKind kind, const std::string &name,
                    Watts rating, Fraction derate);
};

} // namespace capmaestro::topo

#endif // CAPMAESTRO_TOPOLOGY_POWER_TREE_HH
