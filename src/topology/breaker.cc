#include "topology/breaker.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/logging.hh"

namespace capmaestro::topo {

namespace {

/**
 * Anchor points (load fraction, min trip seconds) for the inverse-time
 * envelope. 1.60 -> 30 s is the paper's UL 489 reference point; the others
 * form a plausible molded-case long-time/instantaneous characteristic
 * (135 % must trip within the hour region; deep overloads trip in cycles).
 */
constexpr std::array<std::pair<double, double>, 6> kAnchors{{
    {1.05, 7200.0},
    {1.35, 3600.0},
    {1.60, 30.0},
    {2.50, 5.0},
    {6.00, 0.5},
    {12.0, 0.02},
}};

} // namespace

double
minTripTimeSeconds(double load_fraction)
{
    if (load_fraction <= 1.0)
        return kNeverTrips;
    if (load_fraction <= kAnchors.front().first)
        return kAnchors.front().second;
    if (load_fraction >= kAnchors.back().first)
        return kAnchors.back().second;

    for (std::size_t i = 0; i + 1 < kAnchors.size(); ++i) {
        const auto [x0, y0] = kAnchors[i];
        const auto [x1, y1] = kAnchors[i + 1];
        if (load_fraction <= x1) {
            // Log-log interpolation between anchors.
            const double t = (std::log(load_fraction) - std::log(x0))
                             / (std::log(x1) - std::log(x0));
            return std::exp(std::log(y0) + t * (std::log(y1) - std::log(y0)));
        }
    }
    return kAnchors.back().second;
}

TripIntegrator::TripIntegrator(Watts rating, double cool_rate)
    : rating_(rating), coolRate_(cool_rate)
{
    if (rating_ <= 0.0)
        util::fatal("TripIntegrator rating must be positive (got %f)",
                    rating_);
}

bool
TripIntegrator::advance(Watts load, double dt)
{
    if (tripped_)
        return true;
    const double fraction = load / rating_;
    const double trip_time = minTripTimeSeconds(fraction);
    if (trip_time == kNeverTrips) {
        progress_ = std::max(0.0, progress_ - coolRate_ * dt);
    } else {
        progress_ += dt / trip_time;
        if (progress_ >= 1.0) {
            progress_ = 1.0;
            tripped_ = true;
        }
    }
    return tripped_;
}

void
TripIntegrator::reset()
{
    progress_ = 0.0;
    tripped_ = false;
}

} // namespace capmaestro::topo
