/**
 * @file
 * Runtime power-topology validation (paper §7, "Limited Emphasis on
 * Power Infrastructure Topology").
 *
 * Wiring mistakes — a server plugged into the wrong outlet — make the
 * control tree diverge from electrical reality: budgets get enforced
 * against the wrong breakers. The paper calls out the absence of
 * cost-effective tooling for finding such errors without manual cable
 * tracing. This auditor addresses that: given per-supply power readings
 * (which CapMaestro already collects at 1 Hz) and branch-circuit meter
 * readings at interior nodes (RPP/CDU meters are common), it
 *
 *   1. predicts every interior node's load from the claimed topology,
 *   2. flags nodes whose measured load disagrees beyond a tolerance, and
 *   3. searches single-move hypotheses ("supply X is actually on branch
 *      B, not A") that explain the discrepancies, pinpointing the
 *      mis-wired outlet.
 */

#ifndef CAPMAESTRO_TOPOLOGY_AUDIT_HH
#define CAPMAESTRO_TOPOLOGY_AUDIT_HH

#include <map>
#include <optional>
#include <vector>

#include "topology/power_tree.hh"

namespace capmaestro::topo {

/** Measured AC power per supply, keyed by (server, supply). */
using SupplyLoadMap =
    std::map<std::pair<std::int32_t, std::int32_t>, Watts>;

/** Measured AC power at metered interior nodes. */
using NodeLoadMap = std::map<NodeId, Watts>;

/** One disagreement between prediction and measurement. */
struct NodeDiscrepancy
{
    NodeId node = kNoNode;
    Watts predicted = 0.0;
    Watts measured = 0.0;

    Watts error() const { return measured - predicted; }
};

/** A hypothesized wiring fix: move one supply to another parent. */
struct MiswiringHypothesis
{
    /** The supply believed to be mis-wired. */
    ServerSupplyRef supply;
    /** The leaf-parent the topology claims it is under. */
    NodeId claimedParent = kNoNode;
    /** The leaf-parent the measurements indicate it is under. */
    NodeId actualParent = kNoNode;
    /** Residual discrepancy (W, summed) after applying the move. */
    Watts residual = 0.0;
};

/** Result of one audit pass. */
struct AuditReport
{
    /** Nodes whose measured load disagrees with the prediction. */
    std::vector<NodeDiscrepancy> discrepancies;
    /** Best single-move explanation, when one exists. */
    std::optional<MiswiringHypothesis> hypothesis;

    bool clean() const { return discrepancies.empty(); }
};

/** Validates a claimed power topology against live measurements. */
class TopologyAuditor
{
  public:
    /**
     * @param tree       the claimed topology (not owned)
     * @param tolerance  per-node absolute disagreement allowed (W),
     *                   covering meter noise
     */
    explicit TopologyAuditor(const PowerTree &tree, Watts tolerance = 5.0);

    /**
     * Predict every node's load by summing the supply readings over the
     * claimed subtrees. Supplies missing from @p loads count as 0 W.
     */
    NodeLoadMap predictLoads(const SupplyLoadMap &loads) const;

    /**
     * Compare predictions with @p measured (only metered nodes are
     * checked) and, when discrepancies exist, search single-move
     * hypotheses over the supplies that explain them.
     */
    AuditReport audit(const SupplyLoadMap &loads,
                      const NodeLoadMap &measured) const;

  private:
    const PowerTree &tree_;
    Watts tolerance_;

    /** Sum of |measured - predicted| over metered nodes, given a
     *  prediction map. */
    Watts totalResidual(const NodeLoadMap &predicted,
                        const NodeLoadMap &measured) const;
};

} // namespace capmaestro::topo

#endif // CAPMAESTRO_TOPOLOGY_AUDIT_HH
