/**
 * @file
 * Circuit-breaker trip-time modeling (UL 489-style inverse-time envelope).
 *
 * Paper §2.1: breakers covered by UL 489 operate for a minimum of 30 s at
 * 160 % load before tripping; conventional practice limits sustained load to
 * 80 % of the rating (NEC). CapMaestro relies on the capping loop settling
 * well inside that 30 s window. This model provides:
 *
 *  - a minimum trip-time envelope as a function of overload fraction, and
 *  - a thermal-style trip integrator for time-varying load, which
 *    accumulates "trip progress" at rate 1/tripTime(load) per second.
 */

#ifndef CAPMAESTRO_TOPOLOGY_BREAKER_HH
#define CAPMAESTRO_TOPOLOGY_BREAKER_HH

#include <limits>

#include "util/units.hh"

namespace capmaestro::topo {

/** Value used for "never trips". */
constexpr double kNeverTrips = std::numeric_limits<double>::infinity();

/**
 * Minimum time (seconds) a UL 489-style breaker carries @p load_fraction of
 * its rated current before it may trip. Loads at or below 100 % of rating
 * never trip. The envelope is log-log interpolated between anchor points;
 * the 160 % -> 30 s anchor matches the paper and UL 489.
 */
double minTripTimeSeconds(double load_fraction);

/**
 * Thermal trip accumulator for a single breaker under time-varying load.
 *
 * Each advance() adds dt / minTripTimeSeconds(load) of progress; the
 * breaker trips when progress reaches 1. Progress decays toward zero when
 * the load drops back within rating (the element cools).
 */
class TripIntegrator
{
  public:
    /**
     * @param rating      breaker rated power (per phase), > 0
     * @param cool_rate   progress decay per second while within rating
     */
    explicit TripIntegrator(Watts rating, double cool_rate = 1.0 / 120.0);

    /** Advance by @p dt seconds at the given load; returns tripped(). */
    bool advance(Watts load, double dt);

    /** True once the breaker has tripped; latches until reset(). */
    bool tripped() const { return tripped_; }

    /** Accumulated trip progress in [0, 1]. */
    double progress() const { return progress_; }

    /** Reset progress and the tripped latch (breaker re-closed). */
    void reset();

    /** Rated power. */
    Watts rating() const { return rating_; }

  private:
    Watts rating_;
    double coolRate_;
    double progress_ = 0.0;
    bool tripped_ = false;
};

} // namespace capmaestro::topo

#endif // CAPMAESTRO_TOPOLOGY_BREAKER_HH
